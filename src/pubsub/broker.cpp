#include "pubsub/broker.hpp"

#include <algorithm>
#include <functional>

#include "common/codec.hpp"
#include "common/crc32.hpp"
#include "common/fs.hpp"
#include "common/logging.hpp"
#include "fault/failpoint.hpp"

namespace strata::ps {

namespace {
constexpr const char* kOffsetsFile = "group-offsets";

std::uint32_t KeyHash(const std::string& key) {
  return Crc32c(key, 0x9e3779b9);
}
}  // namespace

Broker::Broker(BrokerOptions options) : options_(std::move(options)) {
  const std::size_t shard_count = std::max<std::size_t>(1, options_.shards);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (!options_.data_dir.empty()) {
    if (Status s = strata::fs::CreateDirs(options_.data_dir); !s.ok()) {
      throw std::runtime_error("Broker: " + s.ToString());
    }
    if (Status s = LoadOffsets(); !s.ok() && !s.IsNotFound()) {
      throw std::runtime_error("Broker: " + s.ToString());
    }
  }
}

Broker::~Broker() {
  BindMetrics(nullptr);
  Close();
}

Status Broker::CreateTopic(const std::string& name,
                           const TopicConfig& config) {
  if (config.partitions < 1) {
    return Status::InvalidArgument("topic needs >= 1 partition");
  }
  std::unique_lock lock(mu_);
  if (closed()) return Status::Closed("broker closed");
  if (auto it = topics_.find(name); it != topics_.end()) {
    if (it->second.config.partitions == config.partitions) {
      return Status::Ok();  // idempotent re-create
    }
    return Status::AlreadyExists("topic " + name +
                                 " exists with different partition count");
  }

  Topic topic;
  topic.config = config;
  for (int p = 0; p < config.partitions; ++p) {
    LogOptions log_options;
    if (!options_.data_dir.empty()) {
      log_options.dir =
          options_.data_dir / (name + "-" + std::to_string(p));
    }
    log_options.segment_bytes = options_.segment_bytes;
    log_options.retention_records = config.retention_records;
    log_options.sync_each_append = options_.sync_each_append;
    log_options.sync_on_roll = options_.sync_on_roll;
    log_options.disk_failure_policy = options_.disk_failure_policy;
    auto log = PartitionLog::Open(log_options);
    if (!log.ok()) return log.status();
    // Wake waiters parked on this partition's shard (WaitForAnyData and
    // reactor long-polls) whenever it gets data. Installed before the log
    // is shared; notifying only the owning shard is what keeps appends to
    // disjoint partitions from waking each other's waiters.
    Shard* shard = shards_[ShardOf(name, p)].get();
    log.value()->SetAppendListener([this, shard] { NotifyShard(*shard); });
    topic.logs.push_back(std::move(log).value());
  }
  if (metrics_ != nullptr) {
    topic.produced =
        metrics_->GetCounter("pubsub.topic.produced", {{"topic", name}});
  }
  topics_.emplace(name, std::move(topic));
  return Status::Ok();
}

bool Broker::HasTopic(const std::string& name) const {
  std::shared_lock lock(mu_);
  return topics_.contains(name);
}

Result<int> Broker::PartitionCount(const std::string& name) const {
  std::shared_lock lock(mu_);
  const auto it = topics_.find(name);
  if (it == topics_.end()) return Status::NotFound("topic " + name);
  return it->second.config.partitions;
}

std::vector<std::string> Broker::ListTopics() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) names.push_back(name);
  return names;
}

Result<Broker::TopicStats> Broker::GetTopicStats(
    const std::string& name) const {
  std::vector<const PartitionLog*> logs;
  {
    std::shared_lock lock(mu_);
    const auto it = topics_.find(name);
    if (it == topics_.end()) return Status::NotFound("topic " + name);
    for (const auto& log : it->second.logs) logs.push_back(log.get());
  }
  TopicStats stats;
  stats.partitions = static_cast<int>(logs.size());
  for (const PartitionLog* log : logs) {
    const std::int64_t start = log->StartOffset();
    const std::int64_t end = log->EndOffset();
    stats.offsets.emplace_back(start, end);
    stats.total_records += end;
  }
  return stats;
}

Broker::BrokerStats Broker::Stats() const {
  std::vector<std::pair<std::size_t, const PartitionLog*>> logs;
  BrokerStats stats;
  {
    std::shared_lock lock(mu_);
    stats.topics = topics_.size();
    stats.groups = groups_.size();
    for (const auto& [name, topic] : topics_) {
      for (int p = 0; p < topic.config.partitions; ++p) {
        logs.emplace_back(ShardOf(name, p),
                          topic.logs[static_cast<std::size_t>(p)].get());
      }
    }
  }
  stats.shards.resize(shards_.size());
  for (const auto& [shard, log] : logs) {
    const std::uint64_t errors = log->disk_errors();
    const bool degraded = log->degraded();
    const bool fail_stopped = log->fail_stopped();
    stats.disk_append_errors += errors;
    stats.storage_degraded = stats.storage_degraded || degraded;
    stats.fail_stopped = stats.fail_stopped || fail_stopped;
    BrokerStats::ShardStats& s = stats.shards[shard];
    ++s.partitions;
    s.disk_errors += errors;
    s.degraded = s.degraded || degraded;
    s.fail_stopped = s.fail_stopped || fail_stopped;
  }
  return stats;
}

Result<std::pair<int, std::int64_t>> Broker::Produce(const std::string& topic,
                                                     const Record& record) {
  PartitionLog* log = nullptr;
  obs::Counter* produced = nullptr;
  int partition = 0;
  {
    // Shared lock: concurrent produces to disjoint partitions resolve their
    // logs without serializing on the broker; the append itself is guarded
    // by the partition log's own lock.
    std::shared_lock lock(mu_);
    if (closed()) return Status::Closed("broker closed");
    const auto it = topics_.find(topic);
    if (it == topics_.end()) return Status::NotFound("topic " + topic);
    Topic& t = it->second;
    const int n = t.config.partitions;
    partition =
        record.key.empty()
            ? static_cast<int>(t.round_robin.fetch_add(
                                   1, std::memory_order_relaxed) %
                               static_cast<std::uint64_t>(n))
            : static_cast<int>(KeyHash(record.key) %
                               static_cast<std::uint32_t>(n));
    log = t.logs[static_cast<std::size_t>(partition)].get();
    produced = t.produced;
  }
  auto offset = log->Append(record);
  if (!offset.ok()) {
    // Map storage failure modes onto distinct client-visible codes: a
    // fail-stopped partition rejects everything until the broker is rebuilt
    // (retrying cannot help), which is different from a transient IO error.
    if (offset.status().IsIoError() && log->fail_stopped()) {
      return Status::StorageFailed("partition " + std::to_string(partition) +
                                   " fail-stopped: " +
                                   offset.status().message());
    }
    if (offset.status().IsIoError() && log->degraded()) {
      // Defensive: kDegrade normally absorbs disk errors and keeps acking
      // from memory; only an error raised while already degraded lands here.
      return Status::StorageDegraded("partition " + std::to_string(partition) +
                                     " degraded: " +
                                     offset.status().message());
    }
    return offset.status();
  }
  if (produced != nullptr) produced->Inc();
  return std::make_pair(partition, *offset);
}

Result<PartitionLog*> Broker::GetLog(const std::string& topic,
                                     int partition) const {
  std::shared_lock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("topic " + topic);
  if (partition < 0 || partition >= it->second.config.partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  return it->second.logs[static_cast<std::size_t>(partition)].get();
}

std::size_t Broker::ShardOf(const std::string& topic,
                            int partition) const noexcept {
  const std::uint32_t h =
      Crc32c(topic, 0x517cc1b7) +
      static_cast<std::uint32_t>(partition) * 0x9e3779b9u;
  return h % shards_.size();
}

Broker::WaiterId Broker::AddDataWaiter(std::size_t shard,
                                       std::function<void()> callback) const {
  const WaiterId id = next_waiter_.fetch_add(1, std::memory_order_relaxed);
  Shard& s = *shards_[shard % shards_.size()];
  {
    std::lock_guard lock(s.mu);
    s.waiters.emplace(id, std::move(callback));
  }
  return id;
}

void Broker::RemoveDataWaiter(std::size_t shard, WaiterId id) const {
  Shard& s = *shards_[shard % shards_.size()];
  std::lock_guard lock(s.mu);
  s.waiters.erase(id);
}

void Broker::NotifyPartition(const std::string& topic, int partition) const {
  NotifyShard(*shards_[ShardOf(topic, partition)]);
}

void Broker::NotifyShard(Shard& shard) const {
  // Snapshot the callbacks under the shard lock, invoke them outside it: a
  // callback may re-enter the broker (re-run a fetch, remove its waiter).
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard lock(shard.mu);
    ++shard.epoch;
    callbacks.reserve(shard.waiters.size());
    for (const auto& [id, cb] : shard.waiters) callbacks.push_back(cb);
  }
  shard.cv.notify_all();
  for (const auto& cb : callbacks) cb();
}

bool Broker::WaitForAnyData(
    const std::vector<TopicPartition>& partitions,
    const std::map<TopicPartition, std::int64_t>& positions,
    std::chrono::microseconds timeout) const {
  // Resolve the logs to watch once; topics are never removed, so the
  // pointers stay valid for the broker's lifetime.
  std::vector<std::pair<const PartitionLog*, std::int64_t>> watch;
  std::vector<std::size_t> involved;  // shard indices, deduplicated
  watch.reserve(partitions.size());
  {
    std::shared_lock lock(mu_);
    if (closed()) return true;
    for (const TopicPartition& tp : partitions) {
      const auto tit = topics_.find(tp.topic);
      if (tit == topics_.end()) continue;
      if (tp.partition < 0 || tp.partition >= tit->second.config.partitions) {
        continue;
      }
      std::int64_t position = 0;
      if (const auto pit = positions.find(tp); pit != positions.end()) {
        position = pit->second;
      }
      watch.emplace_back(
          tit->second.logs[static_cast<std::size_t>(tp.partition)].get(),
          position);
      const std::size_t shard = ShardOf(tp.topic, tp.partition);
      if (std::find(involved.begin(), involved.end(), shard) ==
          involved.end()) {
        involved.push_back(shard);
      }
    }
  }

  const auto has_data = [&watch] {
    for (const auto& [log, position] : watch) {
      if (log->EndOffset() > position) return true;
    }
    return false;
  };
  if (has_data()) return true;

  // Park one ephemeral waiter on each involved shard; they funnel into a
  // local signal this thread waits on. Registration happens before the
  // re-check inside wait_for's predicate, so an append racing us is never
  // lost: either the predicate sees its data or the callback fires after.
  struct LocalWait {
    std::mutex mu;
    std::condition_variable cv;
    bool fired = false;
  };
  auto local = std::make_shared<LocalWait>();
  const auto wake = [local] {
    {
      std::lock_guard lock(local->mu);
      local->fired = true;
    }
    local->cv.notify_all();
  };
  std::vector<std::pair<std::size_t, WaiterId>> registrations;
  registrations.reserve(involved.size());
  for (const std::size_t shard : involved) {
    registrations.emplace_back(shard, AddDataWaiter(shard, wake));
  }

  bool result = false;
  {
    std::unique_lock lock(local->mu);
    result = local->cv.wait_for(lock, timeout, [&] {
      if (closed()) return true;
      if (has_data()) return true;
      // Shard-level wake for a position we are already past (or another
      // waiter's partition): swallow it and keep waiting.
      local->fired = false;
      return false;
    });
  }
  for (const auto& [shard, id] : registrations) RemoveDataWaiter(shard, id);
  return result;
}

void Broker::BindMetrics(obs::MetricsRegistry* registry) {
  obs::MetricsRegistry* previous = nullptr;
  obs::MetricsRegistry::CallbackId previous_id = 0;
  {
    std::unique_lock lock(mu_);
    previous = metrics_;
    previous_id = metrics_callback_;
    metrics_ = registry;
    metrics_callback_ = 0;
    for (auto& [name, topic] : topics_) {
      topic.produced =
          registry == nullptr
              ? nullptr
              : registry->GetCounter("pubsub.topic.produced",
                                     {{"topic", name}});
    }
    if (registry != nullptr) {
      metrics_callback_ =
          registry->RegisterCallback([this](obs::MetricsSnapshot* snapshot) {
            std::shared_lock lock(mu_);
            AppendMetricsLocked(snapshot);
          });
    }
  }
  if (previous != nullptr) previous->Unregister(previous_id);
}

void Broker::AppendMetricsLocked(obs::MetricsSnapshot* snapshot) const {
  snapshot->AddGauge("pubsub.broker.topics", {},
                     static_cast<std::int64_t>(topics_.size()));
  snapshot->AddGauge("pubsub.broker.groups", {},
                     static_cast<std::int64_t>(groups_.size()));
  std::uint64_t disk_errors = 0;
  bool degraded = false;
  bool fail_stopped = false;
  for (const auto& [name, topic] : topics_) {
    for (const auto& log : topic.logs) {
      disk_errors += log->disk_errors();
      degraded = degraded || log->degraded();
      fail_stopped = fail_stopped || log->fail_stopped();
    }
  }
  snapshot->AddCounter("pubsub.broker.disk_errors", {}, disk_errors);
  snapshot->AddGauge("pubsub.broker.storage_degraded", {}, degraded ? 1 : 0);
  snapshot->AddGauge("pubsub.broker.fail_stopped", {}, fail_stopped ? 1 : 0);
  for (const auto& [name, topic] : topics_) {
    for (int p = 0; p < topic.config.partitions; ++p) {
      const PartitionLog* log = topic.logs[static_cast<std::size_t>(p)].get();
      const obs::Labels labels{{"topic", name},
                               {"partition", std::to_string(p)}};
      snapshot->AddGauge("pubsub.topic.end_offset", labels, log->EndOffset());
      snapshot->AddGauge("pubsub.topic.start_offset", labels,
                         log->StartOffset());
    }
  }
  for (const auto& [group_name, g] : groups_) {
    const auto tit = topics_.find(g.topic);
    if (tit == topics_.end()) continue;
    for (int p = 0; p < tit->second.config.partitions; ++p) {
      const TopicPartition tp{g.topic, p};
      const PartitionLog* log =
          tit->second.logs[static_cast<std::size_t>(p)].get();
      std::int64_t committed = -1;
      if (const auto oit = g.offsets.find(tp); oit != g.offsets.end()) {
        committed = oit->second;
      }
      const std::int64_t baseline =
          committed >= 0 ? committed : log->StartOffset();
      snapshot->AddGauge("pubsub.group.lag",
                         {{"group", group_name},
                          {"topic", g.topic},
                          {"partition", std::to_string(p)}},
                         log->EndOffset() - baseline);
    }
  }
}

Result<MemberId> Broker::JoinGroup(const std::string& group,
                                   const std::string& topic) {
  std::unique_lock lock(mu_);
  if (closed()) return Status::Closed("broker closed");
  if (!topics_.contains(topic)) return Status::NotFound("topic " + topic);
  Group& g = groups_[group];
  if (g.members.empty()) {
    g.topic = topic;
  } else if (g.topic != topic) {
    return Status::InvalidArgument("group " + group +
                                   " already bound to topic " + g.topic);
  }
  const MemberId member = next_member_++;
  g.members.push_back(member);
  ++g.generation;
  return member;
}

void Broker::LeaveGroup(const std::string& group, MemberId member) {
  std::unique_lock lock(mu_);
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  auto& members = it->second.members;
  const auto pos = std::find(members.begin(), members.end(), member);
  if (pos != members.end()) {
    members.erase(pos);
    ++it->second.generation;
  }
}

std::vector<TopicPartition> Broker::Assignment(
    const std::string& group, MemberId member,
    std::uint64_t* generation) const {
  std::shared_lock lock(mu_);
  *generation = 0;
  std::vector<TopicPartition> assigned;
  const auto git = groups_.find(group);
  if (git == groups_.end()) return assigned;
  const Group& g = git->second;
  *generation = g.generation;

  const auto tit = topics_.find(g.topic);
  if (tit == topics_.end()) return assigned;
  const int partitions = tit->second.config.partitions;

  const auto pos = std::find(g.members.begin(), g.members.end(), member);
  if (pos == g.members.end()) return assigned;
  const auto member_index =
      static_cast<int>(std::distance(g.members.begin(), pos));
  const auto member_count = static_cast<int>(g.members.size());

  for (int p = member_index; p < partitions; p += member_count) {
    assigned.push_back(TopicPartition{g.topic, p});
  }
  return assigned;
}

Status Broker::CommitOffset(const std::string& group,
                            const TopicPartition& tp, std::int64_t offset) {
  std::unique_lock lock(mu_);
  groups_[group].offsets[tp] = offset;
  if (!options_.data_dir.empty()) return PersistOffsetsLocked();
  return Status::Ok();
}

Result<std::int64_t> Broker::CommittedOffset(const std::string& group,
                                             const TopicPartition& tp) const {
  std::shared_lock lock(mu_);
  const auto git = groups_.find(group);
  if (git == groups_.end()) return Status::NotFound("group " + group);
  const auto oit = git->second.offsets.find(tp);
  if (oit == git->second.offsets.end()) {
    return Status::NotFound("no committed offset");
  }
  return oit->second;
}

Result<std::int64_t> Broker::ConsumerLag(const std::string& group,
                                         const TopicPartition& tp) const {
  const PartitionLog* log = nullptr;
  std::int64_t committed = -1;
  {
    std::shared_lock lock(mu_);
    const auto tit = topics_.find(tp.topic);
    if (tit == topics_.end()) return Status::NotFound("topic " + tp.topic);
    if (tp.partition < 0 || tp.partition >= tit->second.config.partitions) {
      return Status::InvalidArgument("partition out of range");
    }
    log = tit->second.logs[static_cast<std::size_t>(tp.partition)].get();
    const auto git = groups_.find(group);
    if (git != groups_.end()) {
      const auto oit = git->second.offsets.find(tp);
      if (oit != git->second.offsets.end()) committed = oit->second;
    }
  }
  const std::int64_t baseline =
      committed >= 0 ? committed : log->StartOffset();
  return log->EndOffset() - baseline;
}

Status Broker::PersistOffsetsLocked() const {
  std::string payload;
  std::uint32_t total = 0;
  std::string body;
  for (const auto& [group, g] : groups_) {
    for (const auto& [tp, offset] : g.offsets) {
      codec::PutLengthPrefixed(&body, group);
      codec::PutLengthPrefixed(&body, tp.topic);
      codec::PutVarint32(&body, static_cast<std::uint32_t>(tp.partition));
      codec::PutVarint64Signed(&body, offset);
      ++total;
    }
  }
  codec::PutVarint32(&payload, total);
  payload.append(body);
  std::string out;
  codec::PutFixed32(&out, MaskCrc(Crc32c(payload)));
  out.append(payload);
  return fault::WriteFileAtomic(options_.data_dir / kOffsetsFile, out,
                                "offsets.write", "offsets.rename");
}

Status Broker::LoadOffsets() {
  const auto path = options_.data_dir / kOffsetsFile;
  if (!std::filesystem::exists(path)) return Status::NotFound("no offsets");
  auto contents = strata::fs::ReadFile(path);
  if (!contents.ok()) return contents.status();
  std::string_view in(contents.value());

  std::uint32_t masked = 0;
  if (!codec::GetFixed32(&in, &masked) || Crc32c(in) != UnmaskCrc(masked)) {
    return Status::Corruption("group offsets file corrupt");
  }
  std::uint32_t total = 0;
  if (!codec::GetVarint32(&in, &total)) {
    return Status::Corruption("group offsets header");
  }
  for (std::uint32_t i = 0; i < total; ++i) {
    std::string_view group;
    std::string_view topic;
    std::uint32_t partition = 0;
    std::int64_t offset = 0;
    if (!codec::GetLengthPrefixed(&in, &group) ||
        !codec::GetLengthPrefixed(&in, &topic) ||
        !codec::GetVarint32(&in, &partition) ||
        !codec::GetVarint64Signed(&in, &offset)) {
      return Status::Corruption("group offsets entry truncated");
    }
    groups_[std::string(group)]
        .offsets[TopicPartition{std::string(topic),
                                static_cast<int>(partition)}] = offset;
  }
  return Status::Ok();
}

void Broker::Close() {
  {
    std::unique_lock lock(mu_);
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    for (auto& [name, topic] : topics_) {
      for (auto& log : topic.logs) log->Close();
    }
  }
  // mu_ is released before signalling so waiter callbacks re-entering the
  // broker cannot deadlock against us.
  for (const auto& shard : shards_) NotifyShard(*shard);
}

}  // namespace strata::ps
