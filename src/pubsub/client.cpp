#include "pubsub/client.hpp"

#include "pubsub/consumer.hpp"
#include "pubsub/producer.hpp"

namespace strata::ps {

Result<std::unique_ptr<ProducerClient>> EmbeddedBrokerClient::NewProducer() {
  return std::unique_ptr<ProducerClient>(std::make_unique<Producer>(broker_));
}

Result<std::unique_ptr<ConsumerClient>> EmbeddedBrokerClient::NewConsumer(
    const std::string& topic, ConsumerOptions options) {
  auto consumer = Consumer::Create(broker_, topic, std::move(options));
  if (!consumer.ok()) return consumer.status();
  return std::unique_ptr<ConsumerClient>(std::move(consumer).value());
}

}  // namespace strata::ps
