// Poll-based consumer with consumer-group semantics: on construction the
// consumer joins its group and is assigned a share of the topic's partitions
// (round-robin by join order). Poll() fetches from assigned partitions,
// resuming from committed offsets (or the log start for a fresh group).
// Rebalances are picked up lazily at the next Poll via the assignment
// generation counter.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "pubsub/broker.hpp"
#include "pubsub/client.hpp"

namespace strata::ps {

// ConsumerOptions lives in pubsub/client.hpp: it is part of the
// transport-neutral client surface shared with net::RemoteConsumer.

class Consumer final : public ConsumerClient {
 public:
  /// Joins the group; fails if the topic does not exist.
  [[nodiscard]] static Result<std::unique_ptr<Consumer>> Create(
      Broker* broker, const std::string& topic, ConsumerOptions options = {});

  ~Consumer() override;
  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Fetch available records from assigned partitions, blocking up to
  /// `timeout` (measured on the monotonic clock) when none are available.
  /// A non-zero timeout that fully elapses with no data returns
  /// Status::Timeout — distinct from an Ok empty batch, which only a
  /// zero-timeout probe produces — and a broker shutdown while blocked
  /// returns Status::Closed, so long-polling callers (e.g. a networked
  /// fetch) can tell a retryable deadline from a drained partition or a
  /// dead broker.
  [[nodiscard]] Result<std::vector<ConsumedRecord>> Poll(
      std::chrono::microseconds timeout) override;

  /// Commit consumed positions (no-op when auto_commit already did).
  [[nodiscard]] Status Commit() override;

  /// Force positions of all assigned partitions to the current log end
  /// (skip backlog).
  [[nodiscard]] Status SeekToEnd() override;

  /// Reposition one assigned partition (see ConsumerClient::Seek). Unlike
  /// Poll — which silently heals positions that fell below the retention
  /// horizon — an explicit seek to a truncated or future offset is a caller
  /// error and returns Status::OutOfRange.
  [[nodiscard]] Status Seek(const TopicPartition& tp,
                            std::int64_t offset) override;
  using ConsumerClient::Seek;

  [[nodiscard]] const std::vector<TopicPartition>& assignment()
      const noexcept override {
    return assigned_;
  }

 private:
  Consumer(Broker* broker, std::string topic, ConsumerOptions options,
           MemberId member)
      : broker_(broker),
        topic_(std::move(topic)),
        options_(std::move(options)),
        member_(member) {}

  void RefreshAssignment();

  Broker* broker_;
  std::string topic_;
  ConsumerOptions options_;
  MemberId member_;
  std::uint64_t generation_ = 0;
  std::vector<TopicPartition> assigned_;
  std::map<TopicPartition, std::int64_t> positions_;
  std::map<TopicPartition, std::int64_t> uncommitted_;
};

}  // namespace strata::ps
