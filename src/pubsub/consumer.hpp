// Poll-based consumer with consumer-group semantics: on construction the
// consumer joins its group and is assigned a share of the topic's partitions
// (round-robin by join order). Poll() fetches from assigned partitions,
// resuming from committed offsets (or the log start for a fresh group).
// Rebalances are picked up lazily at the next Poll via the assignment
// generation counter.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "pubsub/broker.hpp"

namespace strata::ps {

struct ConsumerOptions {
  std::string group = "default";
  /// Start position for partitions with no committed offset.
  enum class AutoOffsetReset { kEarliest, kLatest } reset =
      AutoOffsetReset::kEarliest;
  /// Commit after every Poll automatically.
  bool auto_commit = true;
  std::size_t max_poll_records = 256;
};

class Consumer {
 public:
  /// Joins the group; fails if the topic does not exist.
  [[nodiscard]] static Result<std::unique_ptr<Consumer>> Create(
      Broker* broker, const std::string& topic, ConsumerOptions options = {});

  ~Consumer();
  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Fetch available records from assigned partitions, blocking up to
  /// `timeout` when none are available. An empty result means timeout.
  [[nodiscard]] Result<std::vector<ConsumedRecord>> Poll(
      std::chrono::microseconds timeout);

  /// Commit consumed positions (no-op when auto_commit already did).
  [[nodiscard]] Status Commit();

  /// Force positions of all assigned partitions to the current log end
  /// (skip backlog).
  [[nodiscard]] Status SeekToEnd();

  [[nodiscard]] const std::vector<TopicPartition>& assignment() const noexcept {
    return assigned_;
  }

 private:
  Consumer(Broker* broker, std::string topic, ConsumerOptions options,
           MemberId member)
      : broker_(broker),
        topic_(std::move(topic)),
        options_(std::move(options)),
        member_(member) {}

  void RefreshAssignment();

  Broker* broker_;
  std::string topic_;
  ConsumerOptions options_;
  MemberId member_;
  std::uint64_t generation_ = 0;
  std::vector<TopicPartition> assigned_;
  std::map<TopicPartition, std::int64_t> positions_;
  std::map<TopicPartition, std::int64_t> uncommitted_;
};

}  // namespace strata::ps
