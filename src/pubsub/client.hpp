// Transport-neutral client interfaces over the pub/sub layer.
//
// STRATA's connectors program against these instead of a concrete Broker so
// the same pipeline code runs against the in-process broker (embedded
// deployment) or a BrokerServer reached over TCP (networked deployment, see
// strata::net). Producer and Consumer implement the interfaces directly;
// EmbeddedBrokerClient is the in-process factory, net::RemoteBroker the
// remote one.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "pubsub/broker.hpp"

namespace strata::ps {

struct ConsumerOptions {
  std::string group = "default";
  /// Start position for partitions with no committed offset.
  enum class AutoOffsetReset { kEarliest, kLatest } reset =
      AutoOffsetReset::kEarliest;
  /// Commit after every Poll automatically.
  bool auto_commit = true;
  std::size_t max_poll_records = 256;
};

/// Synchronous-ack producer handle (mirrors Producer::Send).
class ProducerClient {
 public:
  virtual ~ProducerClient() = default;

  /// Returns (partition, offset) of the appended record.
  [[nodiscard]] virtual Result<std::pair<int, std::int64_t>> Send(
      const std::string& topic, Record record) = 0;

  [[nodiscard]] Result<std::pair<int, std::int64_t>> Send(
      const std::string& topic, std::string key, std::string value,
      Timestamp timestamp) {
    Record record;
    record.key = std::move(key);
    record.value = std::move(value);
    record.timestamp = timestamp;
    return Send(topic, std::move(record));
  }
};

/// Group-member consumer handle (mirrors Consumer's API and its Poll
/// deadline contract: Status::Timeout when a non-zero timeout elapses with
/// no data, so callers can tell a retryable deadline from an empty probe).
class ConsumerClient {
 public:
  virtual ~ConsumerClient() = default;

  [[nodiscard]] virtual Result<std::vector<ConsumedRecord>> Poll(
      std::chrono::microseconds timeout) = 0;
  [[nodiscard]] virtual Status Commit() = 0;
  [[nodiscard]] virtual Status SeekToEnd() = 0;
  /// Reposition one assigned partition so the next Poll fetches from
  /// `offset` (checkpoint replay). Validated against the log's current
  /// bounds: an offset below the retention-truncated start or above the end
  /// returns Status::OutOfRange — a clean error, never a silent heal or a
  /// spin. The seek is a client-side position change only; it is not
  /// committed (Commit after the next Poll advances the group offset).
  [[nodiscard]] virtual Status Seek(const TopicPartition& tp,
                                    std::int64_t offset) = 0;
  [[nodiscard]] Status Seek(const std::string& topic, int partition,
                            std::int64_t offset) {
    return Seek(TopicPartition{topic, partition}, offset);
  }
  [[nodiscard]] virtual const std::vector<TopicPartition>& assignment()
      const noexcept = 0;
};

/// Factory + admin surface shared by embedded and remote transports.
class BrokerClient {
 public:
  virtual ~BrokerClient() = default;

  [[nodiscard]] virtual Status CreateTopic(const std::string& name,
                                           const TopicConfig& config) = 0;
  [[nodiscard]] virtual Result<std::unique_ptr<ProducerClient>> NewProducer() = 0;
  [[nodiscard]] virtual Result<std::unique_ptr<ConsumerClient>> NewConsumer(
      const std::string& topic, ConsumerOptions options) = 0;
};

/// In-process transport: thin forwarding onto a Broker the caller owns.
class EmbeddedBrokerClient final : public BrokerClient {
 public:
  explicit EmbeddedBrokerClient(Broker* broker) : broker_(broker) {}

  [[nodiscard]] Status CreateTopic(const std::string& name,
                                   const TopicConfig& config) override {
    return broker_->CreateTopic(name, config);
  }
  [[nodiscard]] Result<std::unique_ptr<ProducerClient>> NewProducer() override;
  [[nodiscard]] Result<std::unique_ptr<ConsumerClient>> NewConsumer(
      const std::string& topic, ConsumerOptions options) override;

 private:
  Broker* broker_;
};

}  // namespace strata::ps
