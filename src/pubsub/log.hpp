// Append-only partition log. Records live in memory for serving; when a
// data directory is configured they are also appended to segment files
//
//   <dir>/<topic>-<partition>/<base_offset>.seg
//
// where each entry is: masked_crc32c(4) | length(4) | encoded record.
// Segments roll at segment_bytes. On open, existing segments are replayed to
// rebuild the in-memory log (same recovery contract as the WAL).
#pragma once

#include <condition_variable>
#include <deque>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "pubsub/record.hpp"

namespace strata::ps {

/// What a persistent log does when the disk stops accepting appends.
enum class DiskFailurePolicy {
  /// Sticky error: every subsequent append fails until the log is reopened.
  /// Nothing is silently acknowledged that the disk did not take.
  kFailStop,
  /// Keep serving and accepting appends from memory only; a sticky
  /// `degraded` flag is raised so operators can see durability was lost.
  kDegrade,
};

struct LogOptions {
  /// Empty = in-memory only (no persistence).
  std::filesystem::path dir;
  std::size_t segment_bytes = 8u << 20;
  /// Oldest in-memory records are dropped beyond this count (0 = unbounded).
  /// Retention only trims memory, not segments on disk.
  std::size_t retention_records = 0;
  /// fsync the segment after every append (durability vs throughput) —
  /// mirrors kvstore DbOptions::sync_writes.
  bool sync_each_append = false;
  /// fsync a full segment before rolling to the next one, and the open
  /// segment on Close(). Bounds data-at-risk to the active segment.
  bool sync_on_roll = true;
  /// Applies only when `dir` is set; see DiskFailurePolicy.
  DiskFailurePolicy disk_failure_policy = DiskFailurePolicy::kFailStop;
};

class PartitionLog {
 public:
  [[nodiscard]] static Result<std::unique_ptr<PartitionLog>> Open(
      const LogOptions& options);

  ~PartitionLog();
  PartitionLog(const PartitionLog&) = delete;
  PartitionLog& operator=(const PartitionLog&) = delete;

  /// Append one record; returns its assigned offset.
  [[nodiscard]] Result<std::int64_t> Append(const Record& record);

  /// Read up to max_records starting at `offset`. Returns immediately with
  /// whatever is available (possibly empty). Offsets below the retention
  /// horizon return InvalidArgument.
  [[nodiscard]] Status ReadFrom(std::int64_t offset, std::size_t max_records,
                                std::vector<Record>* out,
                                std::int64_t* next_offset) const;

  /// Block until at least one record at/after `offset` exists, the timeout
  /// elapses, or the log is closed.
  [[nodiscard]] bool WaitForData(std::int64_t offset,
                                 std::chrono::microseconds timeout) const;

  /// Offset that will be assigned to the next append.
  [[nodiscard]] std::int64_t EndOffset() const;
  /// Oldest offset still readable from memory.
  [[nodiscard]] std::int64_t StartOffset() const;

  /// Discard every record at/after `offset` (replication uses this when a
  /// freshly promoted leader's log is shorter than ours: the divergent tail
  /// was never quorum-committed). No-op when offset >= EndOffset(). On a
  /// persistent log the segments are rewritten to the surviving prefix when
  /// that prefix is fully in memory; when retention already dropped part of
  /// it the log degrades (sticky) to memory-only rather than persist a log
  /// with a hole.
  [[nodiscard]] Status TruncateTo(std::int64_t offset);

  /// Sticky: the log hit a disk failure under DiskFailurePolicy::kDegrade and
  /// now serves from memory only.
  [[nodiscard]] bool degraded() const;
  /// Sticky: the log hit a disk failure under DiskFailurePolicy::kFailStop
  /// and refuses further appends.
  [[nodiscard]] bool fail_stopped() const;
  /// Segment append/roll/sync failures observed (counts in both policies).
  [[nodiscard]] std::uint64_t disk_errors() const;

  /// Invoked after every successful append, outside the log's lock. The
  /// broker uses this to wake consumers waiting across *all* of their
  /// assigned partitions. Set before the log is shared between threads.
  void SetAppendListener(std::function<void()> listener) {
    append_listener_ = std::move(listener);
  }

  void Close();

 private:
  explicit PartitionLog(LogOptions options) : options_(std::move(options)) {}

  [[nodiscard]] Status LoadSegments();
  [[nodiscard]] Status RollSegmentLocked();  // REQUIRES mu_
  /// REQUIRES mu_. Frame `record` and append it to the active segment,
  /// rolling/syncing per options. Any failure is a disk error.
  [[nodiscard]] Status AppendToSegmentLocked(const Record& record);
  /// REQUIRES mu_. Record a disk failure and apply the configured policy.
  /// Returns Ok when degrading (append proceeds in memory), the error when
  /// fail-stopping.
  [[nodiscard]] Status HandleDiskErrorLocked(Status error);

  LogOptions options_;
  mutable std::mutex mu_;
  mutable std::condition_variable data_cv_;
  std::deque<Record> records_;      // records_[i] has offset base_ + i
  std::int64_t base_ = 0;           // offset of records_.front()
  std::int64_t next_offset_ = 0;
  bool closed_ = false;

  std::FILE* segment_ = nullptr;    // active segment file (may be null)
  std::size_t segment_written_ = 0;
  bool degraded_ = false;           // sticky (kDegrade)
  bool fail_stopped_ = false;       // sticky (kFailStop)
  Status fail_stop_error_ = Status::Ok();
  std::uint64_t disk_errors_ = 0;
  std::function<void()> append_listener_;
};

}  // namespace strata::ps
