// Record model of the pub/sub layer (the Kafka substitute used by STRATA's
// Raw Data Connector and Event Connector).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace strata::ps {

/// A produced record before offset assignment.
struct Record {
  std::string key;    // empty = no key (round-robin partitioning)
  std::string value;  // serialized payload
  Timestamp timestamp = 0;
};

/// A record as stored/consumed: offset and partition assigned by the broker.
struct ConsumedRecord {
  std::string topic;
  int partition = 0;
  std::int64_t offset = 0;
  std::string key;
  std::string value;
  Timestamp timestamp = 0;
};

/// Serialization used for segment persistence.
void EncodeRecord(const Record& record, std::string* out);
[[nodiscard]] Status DecodeRecord(std::string_view* in, Record* out);

}  // namespace strata::ps
