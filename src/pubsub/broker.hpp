// Embedded pub/sub broker: topics with hash-partitioned append-only logs,
// consumer groups with round-robin partition assignment and committed
// offsets. One Broker instance is shared by all producers/consumers in a
// process (STRATA runs it in-process; the API mirrors a networked broker so
// a remote implementation could be substituted).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "pubsub/log.hpp"

namespace strata::ps {

struct TopicConfig {
  int partitions = 1;
  std::size_t retention_records = 0;  // 0 = unbounded
};

struct BrokerOptions {
  /// Empty = fully in-memory; otherwise topic logs and group offsets are
  /// persisted under this directory.
  std::filesystem::path data_dir;
  std::size_t segment_bytes = 8u << 20;
  /// fsync every segment append (see LogOptions::sync_each_append).
  bool sync_each_append = false;
  /// fsync segments on roll/close (see LogOptions::sync_on_roll).
  bool sync_on_roll = true;
  /// What partition logs do when the disk stops accepting appends:
  /// fail-stop (sticky produce errors) or degrade to memory-only serving
  /// with a sticky health flag. Surfaced via Stats() and Strata::Health().
  DiskFailurePolicy disk_failure_policy = DiskFailurePolicy::kFailStop;
  /// Data-plane shards: every (topic, partition) hashes onto one shard,
  /// each with its own lock, data-arrival signal, and waiter list, so
  /// produce/fetch on disjoint partitions never contend. Clamped to >= 1.
  std::size_t shards = 8;
};

/// Identifies a consumer group member.
using MemberId = std::uint64_t;

struct TopicPartition {
  std::string topic;
  int partition = 0;

  friend auto operator<=>(const TopicPartition&,
                          const TopicPartition&) = default;
};

class Broker {
 public:
  explicit Broker(BrokerOptions options = {});
  ~Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Idempotent when the existing topic has the same partition count.
  [[nodiscard]] Status CreateTopic(const std::string& name,
                                   const TopicConfig& config = {});
  [[nodiscard]] bool HasTopic(const std::string& name) const;
  [[nodiscard]] Result<int> PartitionCount(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> ListTopics() const;

  struct TopicStats {
    int partitions = 0;
    /// Sum of end offsets: total records ever appended.
    std::int64_t total_records = 0;
    /// Per-partition [start, end) offsets.
    std::vector<std::pair<std::int64_t, std::int64_t>> offsets;
  };
  [[nodiscard]] Result<TopicStats> GetTopicStats(const std::string& name) const;

  /// Broker-wide health/storage summary (sticky flags aggregate across all
  /// partition logs; they never clear until the broker is recreated).
  struct BrokerStats {
    std::size_t topics = 0;
    std::size_t groups = 0;
    /// Segment append/roll/sync failures across all partition logs.
    std::uint64_t disk_append_errors = 0;
    /// Some partition degraded to memory-only (DiskFailurePolicy::kDegrade).
    bool storage_degraded = false;
    /// Some partition fail-stopped (DiskFailurePolicy::kFailStop).
    bool fail_stopped = false;
    /// Per-shard storage health: which data-plane shards carry a degraded or
    /// fail-stopped partition (health endpoints surface this so operators
    /// can see *where* durability was lost, not just that it was).
    struct ShardStats {
      std::size_t partitions = 0;
      std::uint64_t disk_errors = 0;
      bool degraded = false;
      bool fail_stopped = false;
    };
    std::vector<ShardStats> shards;
  };
  [[nodiscard]] BrokerStats Stats() const;

  /// Append a record; partition chosen by key hash (or round-robin when the
  /// key is empty). Returns (partition, offset).
  [[nodiscard]] Result<std::pair<int, std::int64_t>> Produce(
      const std::string& topic, const Record& record);

  /// Direct partition access for consumers/tests.
  [[nodiscard]] Result<PartitionLog*> GetLog(const std::string& topic,
                                             int partition) const;

  /// Block until any of `partitions` has a record at/after its entry in
  /// `positions` (missing entries read as 0), the timeout elapses, or the
  /// broker closes. Returns true when data is available somewhere. Unlike
  /// PartitionLog::WaitForData this wakes on appends to *any* partition, so
  /// a consumer never waits out its timeout on one partition while another
  /// one has data. Internally parks one ephemeral waiter on each involved
  /// shard, so waits on disjoint partitions never contend on one signal.
  [[nodiscard]] bool WaitForAnyData(
      const std::vector<TopicPartition>& partitions,
      const std::map<TopicPartition, std::int64_t>& positions,
      std::chrono::microseconds timeout) const;

  // --- Data-plane shards -----------------------------------------------------

  /// Shard owning (topic, partition)'s data signal. Stable for the broker's
  /// lifetime; in [0, shard_count()).
  [[nodiscard]] std::size_t ShardOf(const std::string& topic,
                                    int partition) const noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  using WaiterId = std::uint64_t;
  /// Register a callback invoked (outside any broker lock) after every
  /// append to a partition owned by `shard`, and once on Close(). Callbacks
  /// must be cheap and non-blocking — the net reactor uses them to park
  /// long-poll fetches without a blocked thread. A callback may still be in
  /// flight when RemoveDataWaiter returns; keep captured state alive via
  /// shared ownership.
  WaiterId AddDataWaiter(std::size_t shard, std::function<void()> callback) const;
  void RemoveDataWaiter(std::size_t shard, WaiterId id) const;

  /// Wake waiters parked on (topic, partition)'s shard without appending.
  /// Replication uses this when the high watermark advances: records that
  /// were already in the log become consumer-visible, so parked long-poll
  /// fetches must re-check. No-op for unknown topics.
  void NotifyPartition(const std::string& topic, int partition) const;

  /// Expose broker metrics on `registry`: per-topic produce counters
  /// (pubsub.topic.produced{topic}), per-partition start/end offsets, and
  /// per-group consumer lag (pubsub.group.lag{group,topic,partition}).
  /// Rebinding replaces the previous registration; nullptr unbinds. The
  /// callback is unregistered on destruction, so the registry must outlive
  /// the broker.
  void BindMetrics(obs::MetricsRegistry* registry);

  // --- Consumer groups -----------------------------------------------------

  /// Register a member; triggers a rebalance. Returns the member id.
  [[nodiscard]] Result<MemberId> JoinGroup(const std::string& group,
                                           const std::string& topic);
  void LeaveGroup(const std::string& group, MemberId member);

  /// Partitions currently assigned to a member (changes on rebalance).
  /// The returned generation lets the member detect staleness.
  [[nodiscard]] std::vector<TopicPartition> Assignment(
      const std::string& group, MemberId member, std::uint64_t* generation) const;

  [[nodiscard]] Status CommitOffset(const std::string& group,
                                    const TopicPartition& tp,
                                    std::int64_t offset);

  /// Records the group has not yet committed in this partition (end offset
  /// minus committed offset; an uncommitted group lags from the log start).
  [[nodiscard]] Result<std::int64_t> ConsumerLag(const std::string& group,
                                                 const TopicPartition& tp) const;
  /// NotFound when the group never committed for this partition.
  [[nodiscard]] Result<std::int64_t> CommittedOffset(
      const std::string& group, const TopicPartition& tp) const;

  /// Close all logs; unblocks any waiting consumers.
  void Close();

  /// True once Close() ran (consumers use this to turn a wait wake-up into
  /// Status::Closed instead of spinning).
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  struct Topic {
    TopicConfig config;
    std::vector<std::unique_ptr<PartitionLog>> logs;
    /// Atomic so keyless produces pick partitions under the shared
    /// (read-side) metadata lock without a data race.
    std::atomic<std::uint64_t> round_robin{0};
    /// Registry-owned; non-null only while metrics are bound.
    obs::Counter* produced = nullptr;

    Topic() = default;
    /// Moved only inside CreateTopic, before the topic is shared.
    Topic(Topic&& other) noexcept
        : config(other.config),
          logs(std::move(other.logs)),
          round_robin(other.round_robin.load(std::memory_order_relaxed)),
          produced(other.produced) {}
  };

  /// One data-plane shard: the arrival signal for every (topic, partition)
  /// hashing here. Appends bump the epoch, wake the cv, and invoke the
  /// registered waiter callbacks (outside the shard lock).
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t epoch = 0;                              // guarded by mu
    std::map<WaiterId, std::function<void()>> waiters;    // guarded by mu
  };

  struct Group {
    std::string topic;
    std::vector<MemberId> members;  // join order
    std::uint64_t generation = 0;
    std::map<TopicPartition, std::int64_t> offsets;
  };

  [[nodiscard]] Status PersistOffsetsLocked() const;  // REQUIRES mu_
  [[nodiscard]] Status LoadOffsets();

  void AppendMetricsLocked(obs::MetricsSnapshot* snapshot) const;  // REQUIRES mu_

  /// Bump the shard's epoch, wake blocked waiters, and invoke registered
  /// waiter callbacks (outside the shard lock).
  void NotifyShard(Shard& shard) const;

  BrokerOptions options_;
  /// Control-plane lock over the topic/group maps: shared for lookups
  /// (Produce/GetLog resolve logs under a shared lock, so disjoint
  /// partitions never serialize), exclusive for topic/group mutation.
  mutable std::shared_mutex mu_;
  std::map<std::string, Topic> topics_;
  std::map<std::string, Group> groups_;
  MemberId next_member_ = 1;
  std::atomic<bool> closed_{false};

  /// Data-plane shards (fixed size; see BrokerOptions::shards). Append
  /// listeners notify only the owning shard, so waiters on disjoint
  /// partitions never share a signal.
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<WaiterId> next_waiter_{1};

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CallbackId metrics_callback_ = 0;
};

}  // namespace strata::ps
