// Embedded pub/sub broker: topics with hash-partitioned append-only logs,
// consumer groups with round-robin partition assignment and committed
// offsets. One Broker instance is shared by all producers/consumers in a
// process (STRATA runs it in-process; the API mirrors a networked broker so
// a remote implementation could be substituted).
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "pubsub/log.hpp"

namespace strata::ps {

struct TopicConfig {
  int partitions = 1;
  std::size_t retention_records = 0;  // 0 = unbounded
};

struct BrokerOptions {
  /// Empty = fully in-memory; otherwise topic logs and group offsets are
  /// persisted under this directory.
  std::filesystem::path data_dir;
  std::size_t segment_bytes = 8u << 20;
  /// fsync every segment append (see LogOptions::sync_each_append).
  bool sync_each_append = false;
  /// fsync segments on roll/close (see LogOptions::sync_on_roll).
  bool sync_on_roll = true;
  /// What partition logs do when the disk stops accepting appends:
  /// fail-stop (sticky produce errors) or degrade to memory-only serving
  /// with a sticky health flag. Surfaced via Stats() and Strata::Health().
  DiskFailurePolicy disk_failure_policy = DiskFailurePolicy::kFailStop;
};

/// Identifies a consumer group member.
using MemberId = std::uint64_t;

struct TopicPartition {
  std::string topic;
  int partition = 0;

  friend auto operator<=>(const TopicPartition&,
                          const TopicPartition&) = default;
};

class Broker {
 public:
  explicit Broker(BrokerOptions options = {});
  ~Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Idempotent when the existing topic has the same partition count.
  [[nodiscard]] Status CreateTopic(const std::string& name,
                                   const TopicConfig& config = {});
  [[nodiscard]] bool HasTopic(const std::string& name) const;
  [[nodiscard]] Result<int> PartitionCount(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> ListTopics() const;

  struct TopicStats {
    int partitions = 0;
    /// Sum of end offsets: total records ever appended.
    std::int64_t total_records = 0;
    /// Per-partition [start, end) offsets.
    std::vector<std::pair<std::int64_t, std::int64_t>> offsets;
  };
  [[nodiscard]] Result<TopicStats> GetTopicStats(const std::string& name) const;

  /// Broker-wide health/storage summary (sticky flags aggregate across all
  /// partition logs; they never clear until the broker is recreated).
  struct BrokerStats {
    std::size_t topics = 0;
    std::size_t groups = 0;
    /// Segment append/roll/sync failures across all partition logs.
    std::uint64_t disk_append_errors = 0;
    /// Some partition degraded to memory-only (DiskFailurePolicy::kDegrade).
    bool storage_degraded = false;
    /// Some partition fail-stopped (DiskFailurePolicy::kFailStop).
    bool fail_stopped = false;
  };
  [[nodiscard]] BrokerStats Stats() const;

  /// Append a record; partition chosen by key hash (or round-robin when the
  /// key is empty). Returns (partition, offset).
  [[nodiscard]] Result<std::pair<int, std::int64_t>> Produce(
      const std::string& topic, const Record& record);

  /// Direct partition access for consumers/tests.
  [[nodiscard]] Result<PartitionLog*> GetLog(const std::string& topic,
                                             int partition) const;

  /// Block until any of `partitions` has a record at/after its entry in
  /// `positions` (missing entries read as 0), the timeout elapses, or the
  /// broker closes. Returns true when data is available somewhere. Unlike
  /// PartitionLog::WaitForData this wakes on appends to *any* partition, so
  /// a consumer never waits out its timeout on one partition while another
  /// one has data.
  [[nodiscard]] bool WaitForAnyData(
      const std::vector<TopicPartition>& partitions,
      const std::map<TopicPartition, std::int64_t>& positions,
      std::chrono::microseconds timeout) const;

  /// Expose broker metrics on `registry`: per-topic produce counters
  /// (pubsub.topic.produced{topic}), per-partition start/end offsets, and
  /// per-group consumer lag (pubsub.group.lag{group,topic,partition}).
  /// Rebinding replaces the previous registration; nullptr unbinds. The
  /// callback is unregistered on destruction, so the registry must outlive
  /// the broker.
  void BindMetrics(obs::MetricsRegistry* registry);

  // --- Consumer groups -----------------------------------------------------

  /// Register a member; triggers a rebalance. Returns the member id.
  [[nodiscard]] Result<MemberId> JoinGroup(const std::string& group,
                                           const std::string& topic);
  void LeaveGroup(const std::string& group, MemberId member);

  /// Partitions currently assigned to a member (changes on rebalance).
  /// The returned generation lets the member detect staleness.
  [[nodiscard]] std::vector<TopicPartition> Assignment(
      const std::string& group, MemberId member, std::uint64_t* generation) const;

  [[nodiscard]] Status CommitOffset(const std::string& group,
                                    const TopicPartition& tp,
                                    std::int64_t offset);

  /// Records the group has not yet committed in this partition (end offset
  /// minus committed offset; an uncommitted group lags from the log start).
  [[nodiscard]] Result<std::int64_t> ConsumerLag(const std::string& group,
                                                 const TopicPartition& tp) const;
  /// NotFound when the group never committed for this partition.
  [[nodiscard]] Result<std::int64_t> CommittedOffset(
      const std::string& group, const TopicPartition& tp) const;

  /// Close all logs; unblocks any waiting consumers.
  void Close();

  /// True once Close() ran (consumers use this to turn a wait wake-up into
  /// Status::Closed instead of spinning).
  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  struct Topic {
    TopicConfig config;
    std::vector<std::unique_ptr<PartitionLog>> logs;
    std::uint64_t round_robin = 0;
    /// Registry-owned; non-null only while metrics are bound.
    obs::Counter* produced = nullptr;
  };

  struct Group {
    std::string topic;
    std::vector<MemberId> members;  // join order
    std::uint64_t generation = 0;
    std::map<TopicPartition, std::int64_t> offsets;
  };

  [[nodiscard]] Status PersistOffsetsLocked() const;  // REQUIRES mu_
  [[nodiscard]] Status LoadOffsets();

  void AppendMetricsLocked(obs::MetricsSnapshot* snapshot) const;  // REQUIRES mu_

  BrokerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Topic> topics_;
  std::map<std::string, Group> groups_;
  MemberId next_member_ = 1;
  bool closed_ = false;

  /// Broker-wide data arrival signal: every partition log's append listener
  /// bumps the epoch, waking WaitForAnyData waiters.
  mutable std::mutex data_mu_;
  mutable std::condition_variable data_cv_;
  std::uint64_t data_epoch_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CallbackId metrics_callback_ = 0;
};

}  // namespace strata::ps
