#include "pubsub/consumer.hpp"

#include <algorithm>

namespace strata::ps {

Result<std::unique_ptr<Consumer>> Consumer::Create(Broker* broker,
                                                   const std::string& topic,
                                                   ConsumerOptions options) {
  auto member = broker->JoinGroup(options.group, topic);
  if (!member.ok()) return member.status();
  std::unique_ptr<Consumer> consumer(
      new Consumer(broker, topic, std::move(options), *member));
  consumer->RefreshAssignment();
  return consumer;
}

Consumer::~Consumer() { broker_->LeaveGroup(options_.group, member_); }

void Consumer::RefreshAssignment() {
  std::uint64_t generation = 0;
  auto assigned = broker_->Assignment(options_.group, member_, &generation);
  if (generation == generation_ && !assigned_.empty()) return;
  generation_ = generation;
  assigned_ = std::move(assigned);

  // Drop uncommitted progress for revoked partitions: after a rebalance they
  // belong to another member, and committing our stale offsets would clobber
  // the new owner's progress.
  for (auto it = uncommitted_.begin(); it != uncommitted_.end();) {
    const bool still_assigned =
        std::find(assigned_.begin(), assigned_.end(), it->first) !=
        assigned_.end();
    it = still_assigned ? std::next(it) : uncommitted_.erase(it);
  }

  // (Re-)establish positions for newly assigned partitions.
  std::map<TopicPartition, std::int64_t> positions;
  for (const TopicPartition& tp : assigned_) {
    if (const auto it = positions_.find(tp); it != positions_.end()) {
      positions[tp] = it->second;  // keep in-flight position
      continue;
    }
    auto committed = broker_->CommittedOffset(options_.group, tp);
    if (committed.ok()) {
      positions[tp] = *committed;
      continue;
    }
    auto log = broker_->GetLog(tp.topic, tp.partition);
    if (!log.ok()) continue;
    positions[tp] = options_.reset == ConsumerOptions::AutoOffsetReset::kLatest
                        ? (*log)->EndOffset()
                        : (*log)->StartOffset();
  }
  positions_ = std::move(positions);
}

Result<std::vector<ConsumedRecord>> Consumer::Poll(
    std::chrono::microseconds timeout) {
  // Deadline on the monotonic clock: wall-clock jumps must not stretch or
  // shrink a long-poll (RemoteConsumer turns this timeout into its retry
  // cadence, so the distinction matters).
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  RefreshAssignment();

  std::vector<ConsumedRecord> out;
  auto fetch_available = [&]() -> Status {
    for (const TopicPartition& tp : assigned_) {
      if (out.size() >= options_.max_poll_records) break;
      auto log = broker_->GetLog(tp.topic, tp.partition);
      if (!log.ok()) return log.status();

      std::int64_t& position = positions_[tp];
      // Heal positions that fell below the retention horizon.
      position = std::max(position, (*log)->StartOffset());

      std::vector<Record> records;
      std::int64_t next = position;
      STRATA_RETURN_IF_ERROR((*log)->ReadFrom(
          position, options_.max_poll_records - out.size(), &records, &next));
      std::int64_t offset = position;
      for (Record& record : records) {
        ConsumedRecord consumed;
        consumed.topic = tp.topic;
        consumed.partition = tp.partition;
        consumed.offset = offset++;
        consumed.key = std::move(record.key);
        consumed.value = std::move(record.value);
        consumed.timestamp = record.timestamp;
        out.push_back(std::move(consumed));
      }
      position = next;
      uncommitted_[tp] = next;
    }
    return Status::Ok();
  };

  STRATA_RETURN_IF_ERROR(fetch_available());
  while (out.empty() && !assigned_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    // Block until *any* assigned partition has new data, then refetch all.
    // Waiting on a single partition's log would sleep through the timeout
    // while records pile up in the others.
    (void)broker_->WaitForAnyData(
        assigned_, positions_,
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now));
    if (broker_->closed()) return Status::Closed("broker closed");
    RefreshAssignment();  // a rebalance may have happened while we slept
    STRATA_RETURN_IF_ERROR(fetch_available());
  }

  if (options_.auto_commit && !out.empty()) STRATA_RETURN_IF_ERROR(Commit());
  if (out.empty() && timeout.count() > 0) {
    // Deadline exceeded is not the same observation as "no data": a
    // zero-timeout probe legitimately returns an empty Ok batch, but a
    // blocking poll that saw nothing for its whole window reports Timeout so
    // retry loops and remote fetches can act on it.
    return Status::Timeout("Poll: no data before deadline");
  }
  return out;
}

Status Consumer::Commit() {
  for (const auto& [tp, offset] : uncommitted_) {
    STRATA_RETURN_IF_ERROR(broker_->CommitOffset(options_.group, tp, offset));
  }
  uncommitted_.clear();
  return Status::Ok();
}

Status Consumer::Seek(const TopicPartition& tp, std::int64_t offset) {
  RefreshAssignment();
  if (std::find(assigned_.begin(), assigned_.end(), tp) == assigned_.end()) {
    return Status::InvalidArgument("Seek: partition not assigned: " +
                                   tp.topic + "/" +
                                   std::to_string(tp.partition));
  }
  auto log = broker_->GetLog(tp.topic, tp.partition);
  if (!log.ok()) return log.status();
  const std::int64_t start = (*log)->StartOffset();
  const std::int64_t end = (*log)->EndOffset();
  if (offset < start) {
    return Status::OutOfRange(
        "Seek: offset " + std::to_string(offset) + " below retention start " +
        std::to_string(start) + " for " + tp.topic + "/" +
        std::to_string(tp.partition));
  }
  if (offset > end) {
    return Status::OutOfRange("Seek: offset " + std::to_string(offset) +
                              " past log end " + std::to_string(end) +
                              " for " + tp.topic + "/" +
                              std::to_string(tp.partition));
  }
  positions_[tp] = offset;
  // The seek itself is not progress: nothing to commit until data is
  // consumed from the new position.
  uncommitted_.erase(tp);
  return Status::Ok();
}

Status Consumer::SeekToEnd() {
  RefreshAssignment();
  for (const TopicPartition& tp : assigned_) {
    auto log = broker_->GetLog(tp.topic, tp.partition);
    if (!log.ok()) return log.status();
    positions_[tp] = (*log)->EndOffset();
    uncommitted_[tp] = positions_[tp];
  }
  return Commit();
}

}  // namespace strata::ps
