#include "kvstore/version.hpp"

#include <cstdio>

#include "common/codec.hpp"
#include "common/crc32.hpp"
#include "common/fs.hpp"
#include "fault/failpoint.hpp"

namespace strata::kv {

std::string WalFileName(std::uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08llu.wal",
                static_cast<unsigned long long>(number));
  return buf;
}

Status VersionState::Save(const std::filesystem::path& manifest_path) const {
  std::string payload;
  codec::PutFixed64(&payload, next_file_number);
  codec::PutFixed64(&payload, last_sequence);
  codec::PutFixed64(&payload, log_number);
  codec::PutVarint32(&payload, static_cast<std::uint32_t>(files.size()));
  for (const FileMeta& f : files) {
    codec::PutFixed64(&payload, f.file_number);
    codec::PutFixed64(&payload, f.file_size);
    codec::PutFixed64(&payload, f.entry_count);
    codec::PutLengthPrefixed(&payload, f.smallest);
    codec::PutLengthPrefixed(&payload, f.largest);
  }
  std::string out;
  codec::PutFixed32(&out, MaskCrc(Crc32c(payload)));
  out.append(payload);
  return fault::WriteFileAtomic(manifest_path, out, "version.rewrite",
                                "version.rename");
}

Result<VersionState> VersionState::Load(
    const std::filesystem::path& manifest_path) {
  auto contents = strata::fs::ReadFile(manifest_path);
  if (!contents.ok()) return contents.status();
  std::string_view in(contents.value());

  std::uint32_t masked = 0;
  if (!codec::GetFixed32(&in, &masked)) {
    return Status::Corruption("manifest too small");
  }
  if (Crc32c(in) != UnmaskCrc(masked)) {
    return Status::Corruption("manifest checksum mismatch");
  }

  VersionState state;
  std::uint32_t count = 0;
  if (!codec::GetFixed64(&in, &state.next_file_number) ||
      !codec::GetFixed64(&in, &state.last_sequence) ||
      !codec::GetFixed64(&in, &state.log_number) ||
      !codec::GetVarint32(&in, &count)) {
    return Status::Corruption("manifest header truncated");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    FileMeta meta;
    std::string_view smallest;
    std::string_view largest;
    if (!codec::GetFixed64(&in, &meta.file_number) ||
        !codec::GetFixed64(&in, &meta.file_size) ||
        !codec::GetFixed64(&in, &meta.entry_count) ||
        !codec::GetLengthPrefixed(&in, &smallest) ||
        !codec::GetLengthPrefixed(&in, &largest)) {
      return Status::Corruption("manifest file entry truncated");
    }
    meta.smallest.assign(smallest.data(), smallest.size());
    meta.largest.assign(largest.data(), largest.size());
    state.files.push_back(std::move(meta));
  }
  return state;
}

}  // namespace strata::kv
