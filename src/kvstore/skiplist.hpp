// Skiplist with single-writer / concurrent-reader semantics, the memtable
// index structure (same concurrency contract as LevelDB's): Insert must be
// externally serialized (the DB write mutex does this); readers may traverse
// concurrently with inserts without locks because next-pointers are
// published with release stores and nodes are never removed.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace strata::kv {

template <typename Key, typename Comparator>
class SkipList {
 public:
  explicit SkipList(Comparator cmp = Comparator())
      : cmp_(cmp), head_(NewNode(Key(), kMaxHeight)), rng_(0x5eed) {
    max_height_.store(1, std::memory_order_relaxed);
    for (int i = 0; i < kMaxHeight; ++i) {
      head_->SetNext(i, nullptr);
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  ~SkipList() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->Next(0);
      DeleteNode(node);
      node = next;
    }
  }

  /// REQUIRES: external synchronization among writers; key not already
  /// present (the memtable guarantees uniqueness via sequence numbers).
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* next = FindGreaterOrEqual(key, prev);
    assert(next == nullptr || !Equal(key, next->key));
    (void)next;

    const int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; ++i) prev[i] = head_;
      max_height_.store(height, std::memory_order_relaxed);
    }

    Node* node = NewNode(key, height);
    for (int i = 0; i < height; ++i) {
      node->NoBarrierSetNext(i, prev[i]->Next(i));
      prev[i]->SetNext(i, node);  // release: publishes the node
    }
    ++size_;
  }

  [[nodiscard]] bool Contains(const Key& key) const {
    const Node* node = FindGreaterOrEqual(key, nullptr);
    return node != nullptr && Equal(key, node->key);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Forward iterator over the list. Valid concurrently with inserts.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    [[nodiscard]] bool Valid() const noexcept { return node_ != nullptr; }
    [[nodiscard]] const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    const Key key;

    [[nodiscard]] Node* Next(int level) const {
      return next_[level].load(std::memory_order_acquire);
    }
    void SetNext(int level, Node* node) {
      next_[level].store(node, std::memory_order_release);
    }
    void NoBarrierSetNext(int level, Node* node) {
      next_[level].store(node, std::memory_order_relaxed);
    }

    // Over-allocated: next_[height] atomics follow the node in memory.
    std::atomic<Node*> next_[1];
  };

  static Node* NewNode(const Key& key, int height) {
    // One allocation holding the node plus (height-1) extra atomic slots.
    const std::size_t bytes =
        sizeof(Node) + sizeof(std::atomic<Node*>) * static_cast<std::size_t>(height - 1);
    void* mem = ::operator new(bytes);
    Node* node = new (mem) Node(key);
    for (int i = 0; i < height; ++i) {
      new (&node->next_[i]) std::atomic<Node*>(nullptr);
    }
    return node;
  }

  static void DeleteNode(Node* node) {
    node->~Node();
    ::operator delete(node);
  }

  [[nodiscard]] int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight &&
           rng_.UniformInt(0, kBranching - 1) == 0) {
      ++height;
    }
    return height;
  }

  [[nodiscard]] bool Equal(const Key& a, const Key& b) const {
    return cmp_.Compare(a, b) == 0;
  }

  /// First node whose key >= target; fills prev[] when non-null.
  Node* FindGreaterOrEqual(const Key& target, Node** prev) const {
    Node* node = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = node->Next(level);
      if (next != nullptr && cmp_.Compare(next->key, target) < 0) {
        node = next;
      } else {
        if (prev != nullptr) prev[level] = node;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Comparator cmp_;
  Node* head_;
  std::atomic<int> max_height_;
  Rng rng_;
  std::size_t size_ = 0;
};

}  // namespace strata::kv
