#include "kvstore/db.hpp"

#include <algorithm>

#include "common/fs.hpp"
#include "common/logging.hpp"

namespace strata::kv {

namespace {
constexpr const char* kManifestName = "MANIFEST";

/// Sorted list of "<number>.wal" files in dir.
std::vector<std::uint64_t> ListWalNumbers(const std::filesystem::path& dir) {
  std::vector<std::uint64_t> numbers;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == 12 && name.ends_with(".wal")) {
      numbers.push_back(std::strtoull(name.c_str(), nullptr, 10));
    }
  }
  std::sort(numbers.begin(), numbers.end());
  return numbers;
}
}  // namespace

// ---------------------------------------------------------------- DbIterator

DbIterator::DbIterator(std::unique_ptr<Iterator> internal,
                       SequenceNumber snapshot,
                       std::vector<std::shared_ptr<const void>> pins)
    : internal_(std::move(internal)),
      snapshot_(snapshot),
      pins_(std::move(pins)) {}

void DbIterator::SeekToFirst() {
  internal_->SeekToFirst();
  FindNextUserEntry(/*skipping_current_key=*/false);
}

void DbIterator::Seek(std::string_view user_key) {
  internal_->Seek(MakeInternalKey(user_key, snapshot_, EntryType::kPut));
  FindNextUserEntry(/*skipping_current_key=*/false);
}

void DbIterator::Next() {
  if (!valid_) return;
  FindNextUserEntry(/*skipping_current_key=*/true);
}

void DbIterator::FindNextUserEntry(bool skipping_current_key) {
  // `key_` holds the last emitted user key when skipping_current_key.
  valid_ = false;
  while (internal_->Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(internal_->key(), &parsed)) {
      internal_->Next();
      continue;
    }
    if (parsed.sequence > snapshot_) {  // newer than our view
      internal_->Next();
      continue;
    }
    if (skipping_current_key && parsed.user_key == key_) {
      internal_->Next();
      continue;
    }
    // First visible version of a new user key.
    if (parsed.type == EntryType::kDelete) {
      // Hide this key entirely; skip its older versions too.
      key_.assign(parsed.user_key.data(), parsed.user_key.size());
      skipping_current_key = true;
      internal_->Next();
      continue;
    }
    key_.assign(parsed.user_key.data(), parsed.user_key.size());
    value_.assign(internal_->value().data(), internal_->value().size());
    valid_ = true;
    return;
  }
}

// ------------------------------------------------------------------------ DB

DB::DB(std::filesystem::path dir, DbOptions options)
    : dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<DB>> DB::Open(const std::filesystem::path& dir,
                                     const DbOptions& options) {
  STRATA_RETURN_IF_ERROR(strata::fs::CreateDirs(dir));
  std::unique_ptr<DB> db(new DB(dir, options));
  STRATA_RETURN_IF_ERROR(db->Recover());
  db->background_ = std::thread([raw = db.get()] { raw->BackgroundLoop(); });
  return db;
}

DB::~DB() {
  BindMetrics(nullptr);
  {
    std::unique_lock lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  if (background_.joinable()) background_.join();
  // Persist counters so LastSequence survives a clean close even when the
  // memtable was empty.
  std::unique_lock lock(mu_);
  version_.log_number = wal_number_;
  if (Status s = version_.Save(FilePath(kManifestName)); !s.ok()) {
    LOG_WARN << "manifest save on close failed: " << s.ToString();
  }
}

Status DB::Recover() {
  std::unique_lock lock(mu_);

  if (std::filesystem::exists(FilePath(kManifestName))) {
    auto loaded = VersionState::Load(FilePath(kManifestName));
    if (!loaded.ok()) return loaded.status();
    version_ = std::move(loaded).value();
    for (const FileMeta& meta : version_.files) {
      auto table = Table::Open(FilePath(TableFileName(meta.file_number)));
      if (!table.ok()) return table.status();
      tables_[meta.file_number] = std::move(table).value();
    }
  }

  mem_ = std::make_shared<MemTable>();

  // Replay WALs not yet flushed into tables.
  for (const std::uint64_t number : ListWalNumbers(dir_)) {
    if (number < version_.log_number) {
      std::error_code ec;
      std::filesystem::remove(FilePath(WalFileName(number)), ec);  // stale
      continue;
    }
    STRATA_RETURN_IF_ERROR(ReplayWal(number));
    version_.next_file_number =
        std::max(version_.next_file_number, number + 1);
  }

  // Start a fresh WAL for this incarnation.
  wal_number_ = version_.next_file_number++;
  auto wal = WalWriter::Open(FilePath(WalFileName(wal_number_)));
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();

  // Note: recovered memtable entries still have their WAL files on disk
  // (only removed after flush), so durability is preserved.
  return Status::Ok();
}

Status DB::ReplayWal(std::uint64_t number) {
  auto reader = WalReader::Open(FilePath(WalFileName(number)));
  if (!reader.ok()) return reader.status();

  std::string payload;
  while (true) {
    Status s = reader->ReadRecord(&payload);
    if (s.IsNotFound()) break;  // EOF or torn tail: stop replay
    if (s.IsCorruption()) {
      // A fully-present record failed its CRC mid-log. Everything after it
      // is unparseable, so the choice is refuse-open (strict) or truncate
      // the log here — loudly, since acknowledged data may be lost.
      if (options_.strict_wal_recovery) {
        return Status::Corruption("WAL " + WalFileName(number) + ": " +
                                  s.message() + " (strict_wal_recovery)");
      }
      LOG_WARN << "kvstore recovery: dropping tail of " << WalFileName(number)
               << ": " << s.ToString();
      ++stats_.wal_corruptions;
      break;
    }
    STRATA_RETURN_IF_ERROR(s);

    WriteBatch batch;
    SequenceNumber first_seq = 0;
    STRATA_RETURN_IF_ERROR(WriteBatch::Parse(payload, &batch, &first_seq));
    SequenceNumber seq = first_seq;
    for (const WriteBatch::Op& op : batch.ops()) {
      mem_->Add(seq, op.type, op.key, op.value);
      ++seq;
    }
    version_.last_sequence = std::max(version_.last_sequence, seq - 1);
  }
  return Status::Ok();
}

Status DB::Put(std::string_view key, std::string_view value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(batch);
}

Status DB::Delete(std::string_view key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Status DB::Write(const WriteBatch& batch) {
  if (batch.empty()) return Status::Ok();
  std::unique_lock lock(mu_);
  if (background_error_set_) return background_error_;
  STRATA_RETURN_IF_ERROR(MakeRoomForWrite(lock));

  const SequenceNumber first_seq = version_.last_sequence + 1;
  STRATA_RETURN_IF_ERROR(wal_->Append(batch.Serialize(first_seq)));
  if (options_.sync_writes) {
    STRATA_RETURN_IF_ERROR(wal_->Sync());
    ++stats_.wal_syncs;
  }

  SequenceNumber seq = first_seq;
  for (const WriteBatch::Op& op : batch.ops()) {
    mem_->Add(seq, op.type, op.key, op.value);
    if (op.type == EntryType::kPut) {
      ++stats_.puts;
    } else {
      ++stats_.deletes;
    }
    ++seq;
  }
  version_.last_sequence = seq - 1;
  return Status::Ok();
}

Status DB::MakeRoomForWrite(std::unique_lock<std::mutex>& lock) {
  while (true) {
    if (background_error_set_) return background_error_;
    if (mem_->ApproximateBytes() < options_.write_buffer_bytes) {
      return Status::Ok();
    }
    if (imm_ != nullptr) {
      // A flush is already pending; apply back-pressure.
      done_cv_.wait(lock);
      continue;
    }
    STRATA_RETURN_IF_ERROR(SwitchMemTable());
    work_cv_.notify_all();
    return Status::Ok();
  }
}

Status DB::SwitchMemTable() {
  imm_ = std::move(mem_);
  mem_ = std::make_shared<MemTable>();
  const std::uint64_t new_wal = version_.next_file_number++;
  auto wal = WalWriter::Open(FilePath(WalFileName(new_wal)));
  if (!wal.ok()) return wal.status();
  // The old WAL stays on disk until the immutable memtable is flushed.
  wal_ = std::move(wal).value();
  wal_number_ = new_wal;
  return Status::Ok();
}

Result<std::string> DB::Get(std::string_view key) {
  SequenceNumber snapshot;
  {
    std::unique_lock lock(mu_);
    snapshot = version_.last_sequence;
  }
  return Get(key, snapshot);
}

Result<std::string> DB::Get(std::string_view key, SequenceNumber snapshot) {
  std::shared_ptr<MemTable> mem;
  std::shared_ptr<MemTable> imm;
  std::vector<std::shared_ptr<Table>> tables;
  {
    std::unique_lock lock(mu_);
    ++stats_.gets;
    mem = mem_;
    imm = imm_;
    tables.reserve(tables_.size());
    // Newest table first (highest file number).
    for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
      tables.push_back(it->second);
    }
  }

  std::string value;
  bool deleted = false;
  if (mem->Get(key, snapshot, &value, &deleted)) {
    if (deleted) return Status::NotFound();
    std::unique_lock lock(mu_);
    ++stats_.get_hits;
    return value;
  }
  if (imm && imm->Get(key, snapshot, &value, &deleted)) {
    if (deleted) return Status::NotFound();
    std::unique_lock lock(mu_);
    ++stats_.get_hits;
    return value;
  }
  // Accumulate filter accounting locally and fold it into stats_ once, so
  // the table walk doesn't bounce on mu_ per table.
  std::uint64_t bloom_skips = 0;
  std::uint64_t table_reads = 0;
  const auto settle = [&](bool hit) {
    std::unique_lock lock(mu_);
    stats_.bloom_skips += bloom_skips;
    stats_.table_reads += table_reads;
    if (hit) ++stats_.get_hits;
  };
  for (const auto& table : tables) {
    if (!table->MayContain(key)) {
      ++bloom_skips;
      continue;
    }
    ++table_reads;
    Status error;
    if (table->Get(key, snapshot, &value, &deleted, &error)) {
      if (!error.ok()) return error;
      if (deleted) {
        settle(/*hit=*/false);
        return Status::NotFound();
      }
      settle(/*hit=*/true);
      return value;
    }
    if (!error.ok()) return error;
  }
  settle(/*hit=*/false);
  return Status::NotFound();
}

SequenceNumber DB::GetSnapshot() {
  std::unique_lock lock(mu_);
  snapshots_.insert(version_.last_sequence);
  return version_.last_sequence;
}

void DB::ReleaseSnapshot(SequenceNumber snapshot) {
  std::unique_lock lock(mu_);
  const auto it = snapshots_.find(snapshot);
  if (it != snapshots_.end()) snapshots_.erase(it);
}

SequenceNumber DB::SmallestLiveSnapshot() const {
  return snapshots_.empty() ? version_.last_sequence : *snapshots_.begin();
}

std::unique_ptr<DbIterator> DB::NewIterator() {
  SequenceNumber snapshot;
  {
    std::unique_lock lock(mu_);
    snapshot = version_.last_sequence;
  }
  return NewIterator(snapshot);
}

std::unique_ptr<DbIterator> DB::NewIterator(SequenceNumber snapshot) {
  std::vector<std::unique_ptr<Iterator>> children;
  std::vector<std::shared_ptr<const void>> pins;
  {
    std::unique_lock lock(mu_);
    children.push_back(mem_->NewIterator());
    pins.push_back(mem_);
    if (imm_) {
      children.push_back(imm_->NewIterator());
      pins.push_back(imm_);
    }
    for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
      children.push_back(it->second->NewIterator());
      pins.push_back(it->second);
    }
  }
  return std::make_unique<DbIterator>(
      std::make_unique<MergingIterator>(std::move(children)), snapshot,
      std::move(pins));
}

Status DB::Flush() {
  std::unique_lock lock(mu_);
  if (mem_->entry_count() == 0 && imm_ == nullptr) return Status::Ok();
  if (mem_->entry_count() > 0) {
    while (imm_ != nullptr && !background_error_set_) done_cv_.wait(lock);
    if (background_error_set_) return background_error_;
    STRATA_RETURN_IF_ERROR(SwitchMemTable());
    work_cv_.notify_all();
  }
  while (imm_ != nullptr && !background_error_set_) done_cv_.wait(lock);
  return background_error_set_ ? background_error_ : Status::Ok();
}

Status DB::CompactAll() {
  STRATA_RETURN_IF_ERROR(Flush());
  std::unique_lock lock(mu_);
  compact_requested_ = true;
  work_cv_.notify_all();
  while (compact_requested_ && !background_error_set_) done_cv_.wait(lock);
  return background_error_set_ ? background_error_ : Status::Ok();
}

DbStats DB::stats() const {
  std::unique_lock lock(mu_);
  DbStats s = stats_;
  s.live_tables = tables_.size();
  s.memtable_bytes = mem_ ? mem_->ApproximateBytes() : 0;
  return s;
}

void DB::BindMetrics(obs::MetricsRegistry* registry) {
  if (metrics_ != nullptr) metrics_->Unregister(metrics_callback_);
  metrics_ = registry;
  metrics_callback_ = 0;
  if (registry == nullptr) return;
  metrics_callback_ =
      registry->RegisterCallback([this](obs::MetricsSnapshot* snapshot) {
        const DbStats s = stats();
        snapshot->AddCounter("kv.puts", {}, s.puts);
        snapshot->AddCounter("kv.deletes", {}, s.deletes);
        snapshot->AddCounter("kv.gets", {}, s.gets);
        snapshot->AddCounter("kv.get_hits", {}, s.get_hits);
        snapshot->AddCounter("kv.flushes", {}, s.flushes);
        snapshot->AddCounter("kv.compactions", {}, s.compactions);
        snapshot->AddCounter("kv.bloom_skips", {}, s.bloom_skips);
        snapshot->AddCounter("kv.table_reads", {}, s.table_reads);
        snapshot->AddCounter("kv.wal_syncs", {}, s.wal_syncs);
        snapshot->AddCounter("kv.wal_corruptions", {}, s.wal_corruptions);
        snapshot->AddGauge("kv.live_tables", {},
                           static_cast<std::int64_t>(s.live_tables));
        snapshot->AddGauge("kv.memtable_bytes", {},
                           static_cast<std::int64_t>(s.memtable_bytes));
      });
}

SequenceNumber DB::LastSequence() const {
  std::unique_lock lock(mu_);
  return version_.last_sequence;
}

Status DB::BackgroundError() const {
  std::unique_lock lock(mu_);
  return background_error_set_ ? background_error_ : Status::Ok();
}

void DB::BackgroundLoop() {
  std::unique_lock lock(mu_);
  while (!shutting_down_) {
    const bool flush_needed = imm_ != nullptr;
    const bool compact_needed =
        compact_requested_ ||
        static_cast<int>(tables_.size()) >= options_.compaction_trigger;
    if (!flush_needed && !compact_needed) {
      work_cv_.wait(lock);
      continue;
    }
    lock.unlock();
    Status s;
    if (flush_needed) {
      s = FlushImmutable();
    } else {
      s = RunCompaction();
    }
    lock.lock();
    if (!s.ok() && !background_error_set_) {
      background_error_set_ = true;
      background_error_ = s;
      LOG_ERROR << "kvstore background error: " << s.ToString();
    }
    done_cv_.notify_all();
  }
  // Final flush on shutdown so close is durable without replay cost.
  if (imm_ != nullptr || mem_->entry_count() > 0) {
    if (imm_ == nullptr) {
      if (Status s = SwitchMemTable(); !s.ok()) {
        LOG_WARN << "shutdown memtable switch failed: " << s.ToString();
        return;
      }
    }
    lock.unlock();
    if (Status s = FlushImmutable(); !s.ok()) {
      LOG_WARN << "shutdown flush failed: " << s.ToString();
    }
    lock.lock();
  }
}

Status DB::FlushImmutable() {
  std::shared_ptr<MemTable> imm;
  std::uint64_t file_number;
  std::uint64_t current_wal;
  {
    std::unique_lock lock(mu_);
    imm = imm_;
    if (!imm) return Status::Ok();
    file_number = version_.next_file_number++;
    current_wal = wal_number_;
  }

  TableBuilder builder(options_.block_size);
  auto it = imm->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    builder.Add(it->key(), it->value());
  }
  FileMeta meta;
  meta.file_number = file_number;
  STRATA_RETURN_IF_ERROR(
      builder.Finish(FilePath(TableFileName(file_number)), &meta));
  meta.file_number = file_number;

  auto table = Table::Open(FilePath(TableFileName(file_number)));
  if (!table.ok()) return table.status();

  {
    std::unique_lock lock(mu_);
    version_.files.push_back(meta);
    version_.log_number = current_wal;  // older WALs now redundant
    STRATA_RETURN_IF_ERROR(version_.Save(FilePath(kManifestName)));
    tables_[file_number] = std::move(table).value();
    imm_.reset();
    ++stats_.flushes;
  }

  // Delete WALs that are fully covered by flushed tables.
  for (const std::uint64_t number : ListWalNumbers(dir_)) {
    if (number < current_wal) {
      std::error_code ec;
      std::filesystem::remove(FilePath(WalFileName(number)), ec);
    }
  }
  return Status::Ok();
}

Status DB::RunCompaction() {
  std::vector<std::shared_ptr<Table>> inputs;
  std::vector<std::uint64_t> input_numbers;
  std::uint64_t file_number;
  SequenceNumber smallest_snapshot;
  {
    std::unique_lock lock(mu_);
    if (tables_.size() < 2) {
      compact_requested_ = false;
      return Status::Ok();
    }
    for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
      inputs.push_back(it->second);  // newest first, matching merge priority
      input_numbers.push_back(it->first);
    }
    file_number = version_.next_file_number++;
    smallest_snapshot = SmallestLiveSnapshot();
  }

  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(inputs.size());
  for (const auto& table : inputs) children.push_back(table->NewIterator());
  MergingIterator merged(std::move(children));

  // LevelDB-style version dropping: an entry is obsolete when a newer entry
  // for the same user key already exists at or below the smallest snapshot.
  // Tombstones at or below the smallest snapshot are dropped entirely (this
  // merge produces the bottom of the tree).
  TableBuilder builder(options_.block_size);
  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_seq_for_key = kMaxSequenceNumber;

  for (merged.SeekToFirst(); merged.Valid(); merged.Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(merged.key(), &parsed)) {
      return Status::Corruption("compaction: unparsable internal key");
    }
    if (!has_current_user_key || parsed.user_key != current_user_key) {
      current_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_current_user_key = true;
      last_seq_for_key = kMaxSequenceNumber;
    }
    bool drop = false;
    if (last_seq_for_key <= smallest_snapshot) {
      drop = true;  // hidden by a newer entry visible to every snapshot
    } else if (parsed.type == EntryType::kDelete &&
               parsed.sequence <= smallest_snapshot) {
      drop = true;  // tombstone no longer needed at the bottom
    }
    last_seq_for_key = parsed.sequence;
    if (!drop) builder.Add(merged.key(), merged.value());
  }
  STRATA_RETURN_IF_ERROR(merged.status());

  FileMeta meta;
  meta.file_number = file_number;
  const bool output_empty = builder.entry_count() == 0;
  if (!output_empty) {
    STRATA_RETURN_IF_ERROR(
        builder.Finish(FilePath(TableFileName(file_number)), &meta));
    meta.file_number = file_number;
  }

  std::shared_ptr<Table> table;
  if (!output_empty) {
    auto opened = Table::Open(FilePath(TableFileName(file_number)));
    if (!opened.ok()) return opened.status();
    table = std::move(opened).value();
  }

  {
    std::unique_lock lock(mu_);
    std::erase_if(version_.files, [&](const FileMeta& f) {
      return std::find(input_numbers.begin(), input_numbers.end(),
                       f.file_number) != input_numbers.end();
    });
    if (!output_empty) version_.files.push_back(meta);
    STRATA_RETURN_IF_ERROR(version_.Save(FilePath(kManifestName)));
    for (const std::uint64_t number : input_numbers) tables_.erase(number);
    if (!output_empty) tables_[file_number] = table;
    ++stats_.compactions;
    compact_requested_ = false;
  }

  for (const std::uint64_t number : input_numbers) {
    std::error_code ec;
    std::filesystem::remove(FilePath(TableFileName(number)), ec);
  }
  return Status::Ok();
}

}  // namespace strata::kv
