// The LSM key-value store facade (STRATA's RocksDB substitute).
//
// Write path: mutations are grouped into WriteBatches, assigned contiguous
// sequence numbers under the write mutex, appended to the WAL, then applied
// to the active memtable. When the memtable exceeds
// Options::write_buffer_bytes it becomes immutable and a background thread
// flushes it to an SSTable. When the number of tables reaches
// Options::compaction_trigger the background thread merges all tables into
// one, dropping versions hidden below the oldest live snapshot and
// tombstones not needed by any snapshot (size-tiered full merge).
//
// Read path: active memtable → immutable memtable → tables newest-first,
// with key-range and bloom-filter pruning per table.
//
// Crash recovery: load MANIFEST (atomic-rename versioned), reopen live
// tables, replay WAL files numbered >= manifest.log_number.
#pragma once

#include <condition_variable>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "kvstore/format.hpp"
#include "obs/metrics.hpp"
#include "kvstore/iterator.hpp"
#include "kvstore/memtable.hpp"
#include "kvstore/sstable.hpp"
#include "kvstore/version.hpp"
#include "kvstore/wal.hpp"

namespace strata::kv {

struct DbOptions {
  /// Memtable size that triggers a flush.
  std::size_t write_buffer_bytes = 4u << 20;
  /// Number of live tables that triggers a full merge compaction.
  int compaction_trigger = 8;
  /// fsync the WAL on every write (durability vs throughput).
  bool sync_writes = false;
  /// SSTable data block size.
  std::size_t block_size = 4096;
  /// Refuse to open when a WAL record fails its CRC mid-log (true), instead
  /// of the default warn-and-truncate recovery. A torn tail (record running
  /// past EOF) is always tolerated — that is the normal crash artifact.
  bool strict_wal_recovery = false;
};

struct DbStats {
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  /// Table lookups pruned by the bloom filter without touching blocks.
  std::uint64_t bloom_skips = 0;
  /// Table lookups that got past the bloom filter into block reads.
  std::uint64_t table_reads = 0;
  /// WAL fsyncs issued (only grows when DbOptions::sync_writes is set).
  std::uint64_t wal_syncs = 0;
  /// Mid-log WAL corruption events tolerated during recovery (each one
  /// truncated the damaged log at the corrupt record).
  std::uint64_t wal_corruptions = 0;
  std::size_t live_tables = 0;
  /// Approximate bytes in the active memtable at sampling time.
  std::size_t memtable_bytes = 0;
};

/// User-facing iterator over (user key, value), visibility applied.
class DbIterator {
 public:
  DbIterator(std::unique_ptr<Iterator> internal, SequenceNumber snapshot,
             std::vector<std::shared_ptr<const void>> pins);

  [[nodiscard]] bool Valid() const noexcept { return valid_; }
  void SeekToFirst();
  void Seek(std::string_view user_key);
  void Next();

  [[nodiscard]] std::string_view key() const noexcept { return key_; }
  [[nodiscard]] std::string_view value() const noexcept { return value_; }
  [[nodiscard]] Status status() const { return internal_->status(); }

 private:
  /// Move internal_ forward until it rests on the newest visible, non-deleted
  /// version of a user key not yet emitted.
  void FindNextUserEntry(bool skipping_current_key);

  std::unique_ptr<Iterator> internal_;
  SequenceNumber snapshot_;
  std::vector<std::shared_ptr<const void>> pins_;  // memtables + tables
  std::string key_;
  std::string value_;
  bool valid_ = false;
};

class DB {
 public:
  [[nodiscard]] static Result<std::unique_ptr<DB>> Open(
      const std::filesystem::path& dir, const DbOptions& options = {});

  ~DB();
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  [[nodiscard]] Status Put(std::string_view key, std::string_view value);
  [[nodiscard]] Status Delete(std::string_view key);
  [[nodiscard]] Status Write(const WriteBatch& batch);

  /// NotFound when absent or deleted.
  [[nodiscard]] Result<std::string> Get(std::string_view key);
  [[nodiscard]] Result<std::string> Get(std::string_view key,
                                        SequenceNumber snapshot);

  /// Pin a read view. Must be released to allow garbage collection of old
  /// versions during compaction.
  [[nodiscard]] SequenceNumber GetSnapshot();
  void ReleaseSnapshot(SequenceNumber snapshot);

  [[nodiscard]] std::unique_ptr<DbIterator> NewIterator();
  [[nodiscard]] std::unique_ptr<DbIterator> NewIterator(
      SequenceNumber snapshot);

  /// Block until the active memtable is flushed to a table.
  [[nodiscard]] Status Flush();
  /// Block until all tables are merged into one.
  [[nodiscard]] Status CompactAll();

  [[nodiscard]] DbStats stats() const;
  [[nodiscard]] SequenceNumber LastSequence() const;

  /// Sticky error from the background flush/compaction thread (Ok when
  /// healthy). Once set, writes fail with it until the DB is reopened;
  /// Strata::Health() surfaces it.
  [[nodiscard]] Status BackgroundError() const;

  /// Expose kv.* counters/gauges on `registry` (one callback; values come
  /// from stats()). Rebinding replaces the previous registration; nullptr
  /// unbinds. Unregistered on destruction — the registry must outlive the DB.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  explicit DB(std::filesystem::path dir, DbOptions options);

  [[nodiscard]] Status Recover();
  [[nodiscard]] Status ReplayWal(std::uint64_t number);

  /// REQUIRES mu_. Wait/rotate so the active memtable has room.
  [[nodiscard]] Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock);
  /// REQUIRES mu_ held by caller via lock; rotates memtable + WAL.
  [[nodiscard]] Status SwitchMemTable();

  void BackgroundLoop();
  [[nodiscard]] Status FlushImmutable();   // called on background thread
  [[nodiscard]] Status RunCompaction();    // called on background thread
  [[nodiscard]] SequenceNumber SmallestLiveSnapshot() const;  // REQUIRES mu_

  [[nodiscard]] std::filesystem::path FilePath(const std::string& name) const {
    return dir_ / name;
  }

  const std::filesystem::path dir_;
  const DbOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals the background thread
  std::condition_variable done_cv_;   // signals waiters (flush/compact done)

  std::shared_ptr<MemTable> mem_;
  std::shared_ptr<MemTable> imm_;  // nullptr when no flush pending
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t wal_number_ = 0;

  VersionState version_;
  /// Open table readers by file_number (mirrors version_.files).
  std::map<std::uint64_t, std::shared_ptr<Table>> tables_;

  std::multiset<SequenceNumber> snapshots_;

  bool shutting_down_ = false;
  bool compact_requested_ = false;
  bool background_error_set_ = false;
  Status background_error_;
  std::thread background_;

  DbStats stats_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::CallbackId metrics_callback_ = 0;
};

}  // namespace strata::kv
