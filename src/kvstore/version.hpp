// Durable version state of the store: the set of live table files plus the
// counters needed for recovery. Rewritten atomically (write-temp + rename)
// on every flush/compaction — simpler than a log-structured manifest and
// adequate at this scale, while keeping the same crash-safety contract.
#pragma once

#include <filesystem>
#include <vector>

#include "common/status.hpp"
#include "kvstore/sstable.hpp"

namespace strata::kv {

struct VersionState {
  std::uint64_t next_file_number = 1;
  SequenceNumber last_sequence = 0;
  /// WAL files numbered below this have been flushed into tables.
  std::uint64_t log_number = 0;
  /// Live tables, any order (readers sort newest-first by file_number).
  std::vector<FileMeta> files;

  [[nodiscard]] Status Save(const std::filesystem::path& manifest_path) const;
  [[nodiscard]] static Result<VersionState> Load(
      const std::filesystem::path& manifest_path);
};

[[nodiscard]] std::string WalFileName(std::uint64_t number);

}  // namespace strata::kv
