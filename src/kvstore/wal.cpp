#include "kvstore/wal.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/codec.hpp"
#include "common/crc32.hpp"
#include "common/fs.hpp"
#include "fault/failpoint.hpp"

namespace strata::kv {

void WriteBatch::Put(std::string_view key, std::string_view value) {
  ops_.push_back(Op{EntryType::kPut, std::string(key), std::string(value)});
}

void WriteBatch::Delete(std::string_view key) {
  ops_.push_back(Op{EntryType::kDelete, std::string(key), {}});
}

void WriteBatch::Clear() { ops_.clear(); }

std::size_t WriteBatch::ApproximateBytes() const noexcept {
  std::size_t total = 0;
  for (const Op& op : ops_) total += op.key.size() + op.value.size() + 16;
  return total;
}

std::string WriteBatch::Serialize(SequenceNumber first_sequence) const {
  std::string out;
  codec::PutFixed64(&out, first_sequence);
  codec::PutVarint32(&out, static_cast<std::uint32_t>(ops_.size()));
  for (const Op& op : ops_) {
    out.push_back(static_cast<char>(op.type));
    codec::PutLengthPrefixed(&out, op.key);
    if (op.type == EntryType::kPut) {
      codec::PutLengthPrefixed(&out, op.value);
    }
  }
  return out;
}

Status WriteBatch::Parse(std::string_view data, WriteBatch* out,
                         SequenceNumber* first_sequence) {
  out->Clear();
  std::uint64_t seq = 0;
  if (!codec::GetFixed64(&data, &seq)) {
    return Status::Corruption("WriteBatch: missing sequence");
  }
  *first_sequence = seq;
  std::uint32_t count = 0;
  if (!codec::GetVarint32(&data, &count)) {
    return Status::Corruption("WriteBatch: missing count");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (data.empty()) return Status::Corruption("WriteBatch: truncated op");
    const auto type_byte = static_cast<std::uint8_t>(data.front());
    data.remove_prefix(1);
    if (type_byte > static_cast<std::uint8_t>(EntryType::kPut)) {
      return Status::Corruption("WriteBatch: bad op type");
    }
    const auto type = static_cast<EntryType>(type_byte);
    std::string_view key;
    if (!codec::GetLengthPrefixed(&data, &key)) {
      return Status::Corruption("WriteBatch: truncated key");
    }
    std::string_view value;
    if (type == EntryType::kPut &&
        !codec::GetLengthPrefixed(&data, &value)) {
      return Status::Corruption("WriteBatch: truncated value");
    }
    if (type == EntryType::kPut) {
      out->Put(key, value);
    } else {
      out->Delete(key);
    }
  }
  if (!data.empty()) return Status::Corruption("WriteBatch: trailing bytes");
  return Status::Ok();
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::filesystem::path& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("WAL open failed: " + path.string() + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(file, path));
}

Status WalWriter::Append(std::string_view payload) {
  std::string framed;
  framed.reserve(8 + payload.size());
  codec::PutFixed32(&framed, MaskCrc(Crc32c(payload)));
  codec::PutFixed32(&framed, static_cast<std::uint32_t>(payload.size()));
  framed.append(payload);

  // Failpoint "wal.append": error drops the record, torn-write(n) persists
  // only the first n bytes — either way the injected error is returned after
  // the (partial) bytes are flushed, so recovery sees a real torn tail.
  std::size_t limit = framed.size();
  Status injected = Status::Ok();
  if (fault::AnyActive()) injected = fault::InjectWrite("wal.append", &limit);

  if (std::fwrite(framed.data(), 1, limit, file_) != limit) {
    return Status::IoError("WAL append failed: " + path_.string());
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("WAL flush failed: " + path_.string());
  }
  return injected;
}

Status WalWriter::Sync() {
  STRATA_FAILPOINT("wal.sync");
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Status::IoError("WAL fsync failed: " + path_.string());
  }
  return Status::Ok();
}

Result<WalReader> WalReader::Open(const std::filesystem::path& path) {
  auto contents = strata::fs::ReadFile(path);
  if (!contents.ok()) return contents.status();
  return WalReader(std::move(contents).value());
}

Status WalReader::ReadRecord(std::string* payload) {
  if (offset_ >= contents_.size()) return Status::NotFound("WAL EOF");
  std::string_view in(contents_.data() + offset_, contents_.size() - offset_);
  std::uint32_t masked_crc = 0;
  std::uint32_t length = 0;
  if (!codec::GetFixed32(&in, &masked_crc) ||
      !codec::GetFixed32(&in, &length) || in.size() < length) {
    // The record extends past EOF: only a crash mid-append produces this, so
    // it is the expected torn tail, not corruption.
    return Status::NotFound("WAL torn tail");
  }
  const std::string_view body = in.substr(0, length);
  if (Crc32c(body) != UnmaskCrc(masked_crc)) {
    // The full record is on disk but its checksum fails: bit rot or a torn
    // overwrite. Unlike a torn tail this may hide acknowledged data, so it
    // surfaces as Corruption and the caller decides (warn-and-truncate by
    // default, refuse with DbOptions::strict_wal_recovery).
    return Status::Corruption("WAL corrupt record at offset " +
                              std::to_string(offset_));
  }
  payload->assign(body.data(), body.size());
  offset_ += 8 + length;
  return Status::Ok();
}

}  // namespace strata::kv
