#include "kvstore/sstable.hpp"

#include <algorithm>

#include "common/codec.hpp"
#include "common/crc32.hpp"
#include "common/fs.hpp"
#include "fault/failpoint.hpp"
#include "kvstore/bloom.hpp"

namespace strata::kv {

std::string TableFileName(std::uint64_t file_number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08llu.sst",
                static_cast<unsigned long long>(file_number));
  return buf;
}

void TableBuilder::Add(std::string_view internal_key, std::string_view value) {
  if (count_ == 0) smallest_.assign(internal_key.data(), internal_key.size());
  largest_.assign(internal_key.data(), internal_key.size());
  last_block_key_.assign(internal_key.data(), internal_key.size());

  codec::PutLengthPrefixed(&block_, internal_key);
  codec::PutLengthPrefixed(&block_, value);
  key_hashes_.push_back(BloomHash(ExtractUserKey(internal_key)));
  ++count_;

  if (block_.size() >= block_size_) FlushBlock();
}

void TableBuilder::FlushBlock() {
  if (block_.empty()) return;
  const std::uint64_t offset = block_start_;
  const auto size = static_cast<std::uint32_t>(block_.size());

  codec::PutFixed32(&block_, MaskCrc(Crc32c({block_.data(), size})));
  file_.append(block_);
  block_start_ += block_.size();
  block_.clear();

  codec::PutLengthPrefixed(&index_, last_block_key_);
  codec::PutFixed64(&index_, offset);
  codec::PutFixed32(&index_, size);
}

Status TableBuilder::Finish(const std::filesystem::path& path,
                            FileMeta* meta) {
  FlushBlock();

  // Filter block: rebuild a bloom from collected user-key hashes. The
  // builder stores hashes directly to avoid retaining keys.
  BloomFilterBuilder bloom(10);
  std::string filter;
  {
    // BloomFilterBuilder works from keys; we already hold hashes, so build
    // the bit array directly with the same layout.
    std::size_t bits = key_hashes_.size() * 10;
    bits = std::max<std::size_t>(bits, 64);
    const std::size_t bytes = (bits + 7) / 8;
    bits = bytes * 8;
    filter.assign(bytes, '\0');
    constexpr int kProbes = 6;  // floor(10 * 0.69)
    for (std::uint32_t h : key_hashes_) {
      const std::uint32_t delta = (h >> 17) | (h << 15);
      for (int probe = 0; probe < kProbes; ++probe) {
        const std::size_t bit = h % bits;
        filter[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(filter[bit / 8]) | (1u << (bit % 8)));
        h += delta;
      }
    }
    filter.push_back(static_cast<char>(kProbes));
  }

  const std::uint64_t filter_off = file_.size();
  file_.append(filter);
  const std::uint64_t index_off = file_.size();
  file_.append(index_);

  codec::PutFixed64(&file_, filter_off);
  codec::PutFixed32(&file_, static_cast<std::uint32_t>(filter.size()));
  codec::PutFixed64(&file_, index_off);
  codec::PutFixed32(&file_, static_cast<std::uint32_t>(index_.size()));
  codec::PutFixed64(&file_, kTableMagic);

  STRATA_RETURN_IF_ERROR(
      fault::WriteFileAtomic(path, file_, "sstable.write", "sstable.rename"));

  meta->file_size = file_.size();
  meta->smallest = smallest_;
  meta->largest = largest_;
  meta->entry_count = count_;
  return Status::Ok();
}

Result<std::shared_ptr<Table>> Table::Open(
    const std::filesystem::path& path) {
  auto contents = strata::fs::ReadFile(path);
  if (!contents.ok()) return contents.status();

  auto table = std::shared_ptr<Table>(new Table());
  table->data_ = std::move(contents).value();
  const std::string& data = table->data_;

  constexpr std::size_t kFooterSize = 8 + 4 + 8 + 4 + 8;
  if (data.size() < kFooterSize) {
    return Status::Corruption("table too small: " + path.string());
  }
  std::string_view footer(data.data() + data.size() - kFooterSize,
                          kFooterSize);
  std::uint64_t filter_off = 0;
  std::uint32_t filter_sz = 0;
  std::uint64_t index_off = 0;
  std::uint32_t index_sz = 0;
  std::uint64_t magic = 0;
  codec::GetFixed64(&footer, &filter_off);
  codec::GetFixed32(&footer, &filter_sz);
  codec::GetFixed64(&footer, &index_off);
  codec::GetFixed32(&footer, &index_sz);
  codec::GetFixed64(&footer, &magic);
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic: " + path.string());
  }
  if (filter_off + filter_sz > data.size() ||
      index_off + index_sz > data.size()) {
    return Status::Corruption("table footer out of range: " + path.string());
  }

  table->filter_ = data.substr(filter_off, filter_sz);

  std::string_view index(data.data() + index_off, index_sz);
  while (!index.empty()) {
    IndexEntry entry;
    std::string_view key;
    if (!codec::GetLengthPrefixed(&index, &key) ||
        !codec::GetFixed64(&index, &entry.offset) ||
        !codec::GetFixed32(&index, &entry.size)) {
      return Status::Corruption("bad index entry: " + path.string());
    }
    entry.last_key.assign(key.data(), key.size());
    table->index_.push_back(std::move(entry));
    table->count_ += 1;  // placeholder; corrected below by summing blocks
  }
  // entry_count is recomputed lazily by iteration consumers; store the
  // number of blocks' worth only if needed. Count precisely:
  table->count_ = 0;
  for (std::size_t b = 0; b < table->index_.size(); ++b) {
    std::string_view block;
    STRATA_RETURN_IF_ERROR(table->ReadBlock(b, &block));
    while (!block.empty()) {
      std::string_view k;
      std::string_view v;
      if (!codec::GetLengthPrefixed(&block, &k) ||
          !codec::GetLengthPrefixed(&block, &v)) {
        return Status::Corruption("bad block entry: " + path.string());
      }
      ++table->count_;
    }
  }
  return table;
}

std::size_t Table::FindBlock(std::string_view target_ikey) const {
  std::size_t lo = 0;
  std::size_t hi = index_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cmp_.Compare(index_[mid].last_key, target_ikey) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status Table::ReadBlock(std::size_t block_index,
                        std::string_view* contents) const {
  const IndexEntry& entry = index_[block_index];
  if (entry.offset + entry.size + 4 > data_.size()) {
    return Status::Corruption("block out of range");
  }
  const std::string_view block(data_.data() + entry.offset, entry.size);
  std::string_view crc_region(data_.data() + entry.offset + entry.size, 4);
  std::uint32_t masked = 0;
  codec::GetFixed32(&crc_region, &masked);
  if (Crc32c(block) != UnmaskCrc(masked)) {
    return Status::Corruption("block checksum mismatch");
  }
  *contents = block;
  return Status::Ok();
}

bool Table::MayContain(std::string_view user_key) const {
  return BloomFilterMayContain(filter_, user_key);
}

bool Table::Get(std::string_view user_key, SequenceNumber snapshot,
                std::string* value, bool* is_deleted, Status* error) const {
  *error = Status::Ok();
  if (!BloomFilterMayContain(filter_, user_key)) return false;

  const std::string lookup = MakeInternalKey(user_key, snapshot, EntryType::kPut);
  const std::size_t block_idx = FindBlock(lookup);
  if (block_idx >= index_.size()) return false;

  std::string_view block;
  if (Status s = ReadBlock(block_idx, &block); !s.ok()) {
    *error = s;
    return false;
  }
  while (!block.empty()) {
    std::string_view ikey;
    std::string_view val;
    if (!codec::GetLengthPrefixed(&block, &ikey) ||
        !codec::GetLengthPrefixed(&block, &val)) {
      *error = Status::Corruption("bad block entry during Get");
      return false;
    }
    if (cmp_.Compare(ikey, lookup) < 0) continue;  // older/smaller, skip
    ParsedInternalKey parsed;
    if (!ParseInternalKey(ikey, &parsed)) {
      *error = Status::Corruption("unparsable internal key");
      return false;
    }
    if (parsed.user_key != user_key) return false;  // passed the key
    if (parsed.type == EntryType::kDelete) {
      *is_deleted = true;
      return true;
    }
    *is_deleted = false;
    value->assign(val.data(), val.size());
    return true;
  }
  return false;
}

class Table::Iter final : public Iterator {
 public:
  explicit Iter(std::shared_ptr<const Table> table)
      : table_(std::move(table)) {}

  [[nodiscard]] bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    block_idx_ = 0;
    LoadBlockAndScanTo({});
  }

  void Seek(std::string_view target) override {
    block_idx_ = table_->FindBlock(target);
    LoadBlockAndScanTo(target);
  }

  void Next() override {
    AdvanceWithinBlock();
    while (!valid_ && status_.ok() && ++block_idx_ < table_->index_.size()) {
      cursor_ = {};
      LoadCurrentBlock();
      AdvanceWithinBlock();
    }
  }

  [[nodiscard]] std::string_view key() const override { return key_; }
  [[nodiscard]] std::string_view value() const override { return value_; }
  [[nodiscard]] Status status() const override { return status_; }

 private:
  void LoadCurrentBlock() {
    if (block_idx_ >= table_->index_.size()) {
      valid_ = false;
      return;
    }
    if (Status s = table_->ReadBlock(block_idx_, &cursor_); !s.ok()) {
      status_ = s;
      valid_ = false;
      cursor_ = {};
    }
  }

  /// Parse the next entry in cursor_ into key_/value_.
  void AdvanceWithinBlock() {
    valid_ = false;
    if (cursor_.empty()) return;
    std::string_view k;
    std::string_view v;
    if (!codec::GetLengthPrefixed(&cursor_, &k) ||
        !codec::GetLengthPrefixed(&cursor_, &v)) {
      status_ = Status::Corruption("bad block entry in iterator");
      return;
    }
    key_ = k;
    value_ = v;
    valid_ = true;
  }

  void LoadBlockAndScanTo(std::string_view target) {
    valid_ = false;
    cursor_ = {};
    if (block_idx_ >= table_->index_.size()) return;
    LoadCurrentBlock();
    AdvanceWithinBlock();
    while (valid_ && !target.empty() &&
           table_->cmp_.Compare(key_, target) < 0) {
      Next();
    }
  }

  std::shared_ptr<const Table> table_;
  std::size_t block_idx_ = 0;
  std::string_view cursor_;
  std::string_view key_;
  std::string_view value_;
  bool valid_ = false;
  Status status_;
};

std::unique_ptr<Iterator> Table::NewIterator() const {
  return std::make_unique<Iter>(shared_from_this());
}

}  // namespace strata::kv
