#include "kvstore/memtable.hpp"

#include "common/codec.hpp"

namespace strata::kv {

namespace {

/// Decode the internal key portion of an encoded entry.
std::string_view EntryInternalKey(const char* entry) noexcept {
  std::string_view in(entry, 10);  // varint32 max 5 bytes; safe upper bound
  std::uint32_t klen = 0;
  codec::GetVarint32(&in, &klen);
  return {in.data(), klen};
}

/// Decode the value portion of an encoded entry.
std::string_view EntryValue(const char* entry) noexcept {
  std::string_view in(entry, 10);
  std::uint32_t klen = 0;
  codec::GetVarint32(&in, &klen);
  const char* vstart = in.data() + klen;
  std::string_view vin(vstart, 10);
  std::uint32_t vlen = 0;
  codec::GetVarint32(&vin, &vlen);
  return {vin.data(), vlen};
}

}  // namespace

int MemTable::EntryComparator::Compare(const char* a,
                                       const char* b) const noexcept {
  return ikcmp.Compare(EntryInternalKey(a), EntryInternalKey(b));
}

void MemTable::Add(SequenceNumber seq, EntryType type,
                   std::string_view user_key, std::string_view value) {
  auto buf = std::make_unique<std::string>();
  buf->reserve(user_key.size() + value.size() + 24);
  codec::PutVarint32(buf.get(),
                     static_cast<std::uint32_t>(user_key.size() + 8));
  AppendInternalKey(buf.get(), user_key, seq, type);
  codec::PutVarint32(buf.get(), static_cast<std::uint32_t>(value.size()));
  buf->append(value.data(), value.size());

  const char* entry = buf->data();
  arena_.push_back(std::move(buf));
  list_.Insert(entry);
  bytes_.fetch_add(arena_.back()->size() + 64, std::memory_order_relaxed);
}

bool MemTable::Get(std::string_view user_key, SequenceNumber seq,
                   std::string* found_value, bool* is_deleted) const {
  const std::string lookup = MakeInternalKey(user_key, seq, EntryType::kPut);
  std::string lookup_entry;
  codec::PutVarint32(&lookup_entry, static_cast<std::uint32_t>(lookup.size()));
  lookup_entry.append(lookup);
  codec::PutVarint32(&lookup_entry, 0);

  List::Iterator it(&list_);
  it.Seek(lookup_entry.data());
  if (!it.Valid()) return false;

  const std::string_view ikey = EntryInternalKey(it.key());
  ParsedInternalKey parsed;
  if (!ParseInternalKey(ikey, &parsed)) return false;
  if (parsed.user_key != user_key) return false;

  if (parsed.type == EntryType::kDelete) {
    *is_deleted = true;
    return true;
  }
  *is_deleted = false;
  const std::string_view v = EntryValue(it.key());
  found_value->assign(v.data(), v.size());
  return true;
}

class MemTable::Iter final : public Iterator {
 public:
  explicit Iter(const List* list) : it_(list) {}

  [[nodiscard]] bool Valid() const override { return it_.Valid(); }
  void SeekToFirst() override { it_.SeekToFirst(); }
  void Seek(std::string_view target) override {
    std::string entry;
    codec::PutVarint32(&entry, static_cast<std::uint32_t>(target.size()));
    entry.append(target);
    codec::PutVarint32(&entry, 0);
    it_.Seek(entry.data());
  }
  void Next() override { it_.Next(); }
  [[nodiscard]] std::string_view key() const override {
    return EntryInternalKey(it_.key());
  }
  [[nodiscard]] std::string_view value() const override {
    return EntryValue(it_.key());
  }
  [[nodiscard]] Status status() const override { return Status::Ok(); }

 private:
  List::Iterator it_;
};

std::unique_ptr<Iterator> MemTable::NewIterator() const {
  return std::make_unique<Iter>(&list_);
}

}  // namespace strata::kv
