#include "kvstore/bloom.hpp"

#include <algorithm>
#include <cmath>

namespace strata::kv {

std::uint32_t BloomHash(std::string_view key) noexcept {
  // Murmur-inspired mixing (same family as LevelDB's bloom hash).
  constexpr std::uint32_t kSeed = 0xbc9f1d34;
  constexpr std::uint32_t kM = 0xc6a4a793;
  const std::size_t n = key.size();
  std::uint32_t h = kSeed ^ (static_cast<std::uint32_t>(n) * kM);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint32_t w = static_cast<std::uint8_t>(key[i]) |
                      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(key[i + 1])) << 8) |
                      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(key[i + 2])) << 16) |
                      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(key[i + 3])) << 24);
    h += w;
    h *= kM;
    h ^= h >> 16;
  }
  switch (n - i) {
    case 3:
      h += static_cast<std::uint32_t>(static_cast<std::uint8_t>(key[i + 2])) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<std::uint32_t>(static_cast<std::uint8_t>(key[i + 1])) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<std::uint8_t>(key[i]);
      h *= kM;
      h ^= h >> 24;
      break;
    default:
      break;
  }
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(std::max(1, bits_per_key)) {
  // k = bits_per_key * ln 2, clamped to [1, 30].
  num_probes_ = static_cast<int>(static_cast<double>(bits_per_key_) * 0.69);
  num_probes_ = std::clamp(num_probes_, 1, 30);
}

void BloomFilterBuilder::AddKey(std::string_view key) {
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() const {
  std::size_t bits = hashes_.size() * static_cast<std::size_t>(bits_per_key_);
  bits = std::max<std::size_t>(bits, 64);
  const std::size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  for (std::uint32_t h : hashes_) {
    const std::uint32_t delta = (h >> 17) | (h << 15);  // double hashing step
    for (int probe = 0; probe < num_probes_; ++probe) {
      const std::size_t bit = h % bits;
      filter[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(filter[bit / 8]) | (1u << (bit % 8)));
      h += delta;
    }
  }
  filter.push_back(static_cast<char>(num_probes_));
  return filter;
}

bool BloomFilterMayContain(std::string_view filter,
                           std::string_view key) noexcept {
  if (filter.size() < 2) return true;
  const int num_probes = static_cast<unsigned char>(filter.back());
  if (num_probes < 1 || num_probes > 30) return true;
  const std::size_t bits = (filter.size() - 1) * 8;

  std::uint32_t h = BloomHash(key);
  const std::uint32_t delta = (h >> 17) | (h << 15);
  for (int probe = 0; probe < num_probes; ++probe) {
    const std::size_t bit = h % bits;
    if ((static_cast<unsigned char>(filter[bit / 8]) & (1u << (bit % 8))) == 0) {
      return false;
    }
    h += delta;
  }
  return true;
}

}  // namespace strata::kv
