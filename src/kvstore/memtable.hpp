// In-memory write buffer: a skiplist of encoded entries. Each entry packs
//
//   varint(internal_key_len) internal_key varint(value_len) value
//
// into one contiguous allocation, ordered by InternalKeyComparator.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "kvstore/format.hpp"
#include "kvstore/iterator.hpp"
#include "kvstore/skiplist.hpp"

namespace strata::kv {

class MemTable {
 public:
  MemTable() = default;
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// REQUIRES: external write serialization (DB mutex).
  void Add(SequenceNumber seq, EntryType type, std::string_view user_key,
           std::string_view value);

  /// Point lookup at snapshot `seq`. Returns:
  ///  - true with *found_value filled and *is_deleted=false for a Put,
  ///  - true with *is_deleted=true for a tombstone,
  ///  - false when the key has no visible version in this memtable.
  [[nodiscard]] bool Get(std::string_view user_key, SequenceNumber seq,
                         std::string* found_value, bool* is_deleted) const;

  [[nodiscard]] std::unique_ptr<Iterator> NewIterator() const;

  [[nodiscard]] std::size_t ApproximateBytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return list_.size();
  }

 private:
  struct EntryComparator {
    InternalKeyComparator ikcmp;
    [[nodiscard]] int Compare(const char* a, const char* b) const noexcept;
  };

  using List = SkipList<const char*, EntryComparator>;

  class Iter;

  List list_{EntryComparator{}};
  std::vector<std::unique_ptr<std::string>> arena_;
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace strata::kv
