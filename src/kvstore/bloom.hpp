// Bloom filter for SSTable point-lookup short-circuiting (double-hashing
// scheme, ~10 bits/key by default → ~1% false positive rate).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace strata::kv {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key = 10);

  void AddKey(std::string_view key);
  /// Serialize the filter for the keys added so far (last byte = #probes).
  [[nodiscard]] std::string Finish() const;
  [[nodiscard]] std::size_t key_count() const noexcept { return hashes_.size(); }

 private:
  int bits_per_key_;
  int num_probes_;
  std::vector<std::uint32_t> hashes_;
};

/// Returns true if the key *may* be present, false if definitely absent.
/// A malformed filter conservatively returns true.
[[nodiscard]] bool BloomFilterMayContain(std::string_view filter,
                                         std::string_view key) noexcept;

/// Hash used by the filter (exposed for tests).
[[nodiscard]] std::uint32_t BloomHash(std::string_view key) noexcept;

}  // namespace strata::kv
