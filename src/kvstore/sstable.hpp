// Sorted String Table: the immutable on-disk unit of the LSM tree.
//
// File layout (offsets from the start):
//
//   data block 0 .. data block N-1   entries: lp(ikey) lp(value); each block
//                                    is followed by fixed32 crc32c
//   filter block                     bloom filter over user keys
//   index block                      per data block:
//                                      lp(last_ikey) fixed64(off) fixed32(sz)
//   footer (32B): fixed64 filter_off fixed32 filter_sz
//                 fixed64 index_off  fixed32 index_sz  fixed64 magic
//
// Readers load the file once into memory (tables here are MBs, not GBs) and
// serve point lookups via index binary search + bloom, and scans via an
// Iterator over blocks.
#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kvstore/format.hpp"
#include "kvstore/iterator.hpp"

namespace strata::kv {

constexpr std::uint64_t kTableMagic = 0x53545241544142ull;  // "STRATATB"

/// Metadata describing a live table file, tracked by the manifest.
struct FileMeta {
  std::uint64_t file_number = 0;
  std::uint64_t file_size = 0;
  std::string smallest;  // internal key
  std::string largest;   // internal key
  std::uint64_t entry_count = 0;
};

[[nodiscard]] std::string TableFileName(std::uint64_t file_number);

/// Streams sorted (internal key, value) entries into an SSTable file.
class TableBuilder {
 public:
  explicit TableBuilder(std::size_t block_size_bytes = 4096)
      : block_size_(block_size_bytes) {}

  /// Keys MUST be added in increasing internal-key order.
  void Add(std::string_view internal_key, std::string_view value);

  /// Finalize and write the file; fills `meta` (except file_number).
  [[nodiscard]] Status Finish(const std::filesystem::path& path,
                              FileMeta* meta);

  [[nodiscard]] std::uint64_t entry_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t PendingBytes() const noexcept {
    return file_.size() + block_.size();
  }

 private:
  void FlushBlock();

  std::size_t block_size_;
  std::string file_;    // accumulated finished blocks
  std::string block_;   // current block under construction
  std::string index_;   // accumulated index entries
  std::string smallest_;
  std::string largest_;
  std::string last_block_key_;
  std::vector<std::uint32_t> key_hashes_;  // user-key bloom input
  std::uint64_t count_ = 0;
  std::uint64_t block_start_ = 0;
};

/// Read-only view of one SSTable. Always held by shared_ptr (iterators keep
/// the table alive).
class Table : public std::enable_shared_from_this<Table> {
 public:
  [[nodiscard]] static Result<std::shared_ptr<Table>> Open(
      const std::filesystem::path& path);

  /// Point lookup semantics mirror MemTable::Get.
  [[nodiscard]] bool Get(std::string_view user_key, SequenceNumber snapshot,
                         std::string* value, bool* is_deleted,
                         Status* error) const;

  /// Bloom-filter pre-check: false means the key is definitely absent and a
  /// Get would only burn block reads. Lets callers count filter pruning.
  [[nodiscard]] bool MayContain(std::string_view user_key) const;

  [[nodiscard]] std::unique_ptr<Iterator> NewIterator() const;

  [[nodiscard]] std::uint64_t entry_count() const noexcept { return count_; }

 private:
  class Iter;

  struct IndexEntry {
    std::string last_key;  // last internal key in the block
    std::uint64_t offset;
    std::uint32_t size;
  };

  Table() = default;

  /// Index of the first block whose last key >= target (== #blocks if none).
  [[nodiscard]] std::size_t FindBlock(std::string_view target_ikey) const;
  [[nodiscard]] Status ReadBlock(std::size_t block_index,
                                 std::string_view* contents) const;

  std::string data_;
  std::vector<IndexEntry> index_;
  std::string filter_;
  std::uint64_t count_ = 0;
  InternalKeyComparator cmp_;
};

}  // namespace strata::kv
