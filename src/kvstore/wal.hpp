// Write-ahead log. Each record is
//
//   masked_crc32c(4) | length(4) | payload(length)
//
// appended to a log file and fsync'd according to Options::sync_writes. On
// recovery the reader replays records until EOF or the first corrupt/partial
// record (a torn tail from a crash is expected and tolerated).
//
// The payload of a record is a serialized WriteBatch:
//
//   fixed64 first_sequence | varint32 count |
//     count * ( type(1) | lp(key) | [lp(value) if Put] )
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kvstore/format.hpp"

namespace strata::kv {

/// A group of mutations applied atomically and persisted in one WAL record.
class WriteBatch {
 public:
  void Put(std::string_view key, std::string_view value);
  void Delete(std::string_view key);
  void Clear();

  [[nodiscard]] std::size_t count() const noexcept { return ops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
  [[nodiscard]] std::size_t ApproximateBytes() const noexcept;

  struct Op {
    EntryType type;
    std::string key;
    std::string value;
  };
  [[nodiscard]] const std::vector<Op>& ops() const noexcept { return ops_; }

  /// Serialize with the sequence number assigned to the first op.
  [[nodiscard]] std::string Serialize(SequenceNumber first_sequence) const;
  /// Parse a serialized batch; fills ops and first_sequence.
  [[nodiscard]] static Status Parse(std::string_view data, WriteBatch* out,
                                    SequenceNumber* first_sequence);

 private:
  std::vector<Op> ops_;
};

class WalWriter {
 public:
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> Open(
      const std::filesystem::path& path);

  [[nodiscard]] Status Append(std::string_view payload);
  [[nodiscard]] Status Sync();
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  WalWriter(std::FILE* file, std::filesystem::path path)
      : file_(file), path_(std::move(path)) {}
  std::FILE* file_;
  std::filesystem::path path_;
};

class WalReader {
 public:
  explicit WalReader(std::string contents) : contents_(std::move(contents)) {}

  [[nodiscard]] static Result<WalReader> Open(
      const std::filesystem::path& path);

  /// Next record payload. NotFound at clean EOF and at a torn tail (a record
  /// running past EOF — the expected crash artifact; recovery stops there).
  /// Corruption when a fully-present record fails its CRC: that can hide
  /// acknowledged data, so it is reported distinctly rather than silently
  /// ending replay.
  [[nodiscard]] Status ReadRecord(std::string* payload);

 private:
  std::string contents_;
  std::size_t offset_ = 0;
};

}  // namespace strata::kv
