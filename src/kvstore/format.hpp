// Internal key format of the LSM store (LevelDB/RocksDB family).
//
// Every mutation is tagged with a monotonically increasing sequence number
// and a type (Put or Delete). An *internal key* is
//
//   user_key | fixed64( sequence << 8 | type )
//
// Internal keys order by (user_key ascending, sequence descending, type
// descending) so that the newest version of a key sorts first and a point
// lookup for (key, snapshot_seq) can seek to the first visible entry.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/codec.hpp"

namespace strata::kv {

using SequenceNumber = std::uint64_t;

/// Sequence numbers use the low 56 bits of the tag word.
constexpr SequenceNumber kMaxSequenceNumber = (1ull << 56) - 1;

enum class EntryType : std::uint8_t {
  kDelete = 0,  // tombstone
  kPut = 1,
};

constexpr std::uint64_t PackTag(SequenceNumber seq, EntryType type) noexcept {
  return (seq << 8) | static_cast<std::uint64_t>(type);
}

struct ParsedInternalKey {
  std::string_view user_key;
  SequenceNumber sequence = 0;
  EntryType type = EntryType::kPut;
};

inline void AppendInternalKey(std::string* dst, std::string_view user_key,
                              SequenceNumber seq, EntryType type) {
  dst->append(user_key.data(), user_key.size());
  codec::PutFixed64(dst, PackTag(seq, type));
}

inline std::string MakeInternalKey(std::string_view user_key,
                                   SequenceNumber seq, EntryType type) {
  std::string out;
  out.reserve(user_key.size() + 8);
  AppendInternalKey(&out, user_key, seq, type);
  return out;
}

/// False when the buffer is too short or the type byte is invalid.
inline bool ParseInternalKey(std::string_view internal_key,
                             ParsedInternalKey* out) noexcept {
  if (internal_key.size() < 8) return false;
  std::string_view tag_region = internal_key.substr(internal_key.size() - 8);
  std::uint64_t tag = 0;
  if (!codec::GetFixed64(&tag_region, &tag)) return false;
  const auto type_byte = static_cast<std::uint8_t>(tag & 0xff);
  if (type_byte > static_cast<std::uint8_t>(EntryType::kPut)) return false;
  out->user_key = internal_key.substr(0, internal_key.size() - 8);
  out->sequence = tag >> 8;
  out->type = static_cast<EntryType>(type_byte);
  return true;
}

inline std::string_view ExtractUserKey(std::string_view internal_key) noexcept {
  return internal_key.substr(0, internal_key.size() - 8);
}

/// Orders internal keys: user key ascending, then tag (sequence|type)
/// descending, so newer versions come first.
struct InternalKeyComparator {
  [[nodiscard]] int Compare(std::string_view a, std::string_view b) const noexcept {
    const std::string_view ua = ExtractUserKey(a);
    const std::string_view ub = ExtractUserKey(b);
    if (const int c = ua.compare(ub); c != 0) return c < 0 ? -1 : 1;
    std::string_view ta = a.substr(a.size() - 8);
    std::string_view tb = b.substr(b.size() - 8);
    std::uint64_t na = 0;
    std::uint64_t nb = 0;
    codec::GetFixed64(&ta, &na);
    codec::GetFixed64(&tb, &nb);
    if (na > nb) return -1;  // higher sequence sorts first
    if (na < nb) return 1;
    return 0;
  }
  [[nodiscard]] bool operator()(std::string_view a,
                                std::string_view b) const noexcept {
    return Compare(a, b) < 0;
  }
};

}  // namespace strata::kv
