// Iterator abstraction over sorted internal-key/value sequences, plus a
// k-way merging iterator combining memtables and SSTables into one sorted
// view (duplicates across children are preserved; the DB layer applies
// sequence-number visibility and tombstone suppression on top).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "kvstore/format.hpp"

namespace strata::kv {

/// Forward iterator over (internal key, value) pairs in internal-key order.
class Iterator {
 public:
  virtual ~Iterator() = default;

  [[nodiscard]] virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Position at the first entry with internal key >= target.
  virtual void Seek(std::string_view target) = 0;
  virtual void Next() = 0;

  /// REQUIRES: Valid(). Views remain valid until the next mutation of the
  /// iterator position.
  [[nodiscard]] virtual std::string_view key() const = 0;
  [[nodiscard]] virtual std::string_view value() const = 0;

  /// Non-ok if the underlying source hit corruption/IO problems.
  [[nodiscard]] virtual Status status() const = 0;
};

/// Merges N child iterators into one sorted stream (ties broken by child
/// index, so newer sources should be listed first).
class MergingIterator final : public Iterator {
 public:
  MergingIterator(std::vector<std::unique_ptr<Iterator>> children,
                  InternalKeyComparator cmp = {})
      : children_(std::move(children)), cmp_(cmp) {}

  [[nodiscard]] bool Valid() const override { return current_ >= 0; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
  }

  void Seek(std::string_view target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
  }

  void Next() override {
    children_[static_cast<std::size_t>(current_)]->Next();
    FindSmallest();
  }

  [[nodiscard]] std::string_view key() const override {
    return children_[static_cast<std::size_t>(current_)]->key();
  }
  [[nodiscard]] std::string_view value() const override {
    return children_[static_cast<std::size_t>(current_)]->value();
  }

  [[nodiscard]] Status status() const override {
    for (const auto& child : children_) {
      if (Status s = child->status(); !s.ok()) return s;
    }
    return Status::Ok();
  }

 private:
  void FindSmallest() {
    current_ = -1;
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (!children_[i]->Valid()) continue;
      if (current_ < 0 ||
          cmp_.Compare(children_[i]->key(),
                       children_[static_cast<std::size_t>(current_)]->key()) < 0) {
        current_ = static_cast<int>(i);
      }
    }
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  InternalKeyComparator cmp_;
  int current_ = -1;
};

}  // namespace strata::kv
