// Status and Result types used across the STRATA substrates.
//
// The storage and transport layers (kvstore, pubsub) report recoverable
// failures (I/O errors, corruption, not-found) through Status / Result<T>
// rather than exceptions, so callers on hot paths can branch without
// unwinding. Programming errors (API misuse, broken invariants) throw.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace strata {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,
  kCorruption,
  kIoError,
  kInvalidArgument,
  kAlreadyExists,
  kClosed,
  kTimeout,
  kResourceExhausted,
  kUnavailable,
  /// The broker addressed is not the leader for the topic (replicated
  /// clusters). Clients should refresh cluster metadata and re-route.
  kNotLeader,
  /// Broker storage degraded to memory-only (DiskFailurePolicy::kDegrade):
  /// the write was accepted but is no longer disk-durable on that replica.
  kStorageDegraded,
  /// Broker storage fail-stopped (DiskFailurePolicy::kFailStop): writes are
  /// rejected until the broker is replaced. Sticky — retrying cannot help.
  kStorageFailed,
  /// A requested position lies outside the valid range — e.g. a consumer
  /// seek to an offset below the log's retention-truncated start or past
  /// its end. Retrying the same position cannot help; the caller must pick
  /// a valid one (SeekToEnd, or the reset policy).
  kOutOfRange,
};

/// Human-readable name of a status code ("Ok", "NotFound", ...).
const char* StatusCodeName(StatusCode code) noexcept;

/// A cheap, copyable success-or-error value. The common case (Ok) carries
/// no message and no allocation.
class Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Closed(std::string m = "closed") {
    return Status(StatusCode::kClosed, std::move(m));
  }
  static Status Timeout(std::string m = "timeout") {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status NotLeader(std::string m) {
    return Status(StatusCode::kNotLeader, std::move(m));
  }
  static Status StorageDegraded(std::string m) {
    return Status(StatusCode::kStorageDegraded, std::move(m));
  }
  static Status StorageFailed(std::string m) {
    return Status(StatusCode::kStorageFailed, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] bool IsNotFound() const noexcept {
    return code_ == StatusCode::kNotFound;
  }
  [[nodiscard]] bool IsCorruption() const noexcept {
    return code_ == StatusCode::kCorruption;
  }
  [[nodiscard]] bool IsIoError() const noexcept {
    return code_ == StatusCode::kIoError;
  }
  [[nodiscard]] bool IsUnavailable() const noexcept {
    return code_ == StatusCode::kUnavailable;
  }
  [[nodiscard]] bool IsClosed() const noexcept {
    return code_ == StatusCode::kClosed;
  }
  [[nodiscard]] bool IsTimeout() const noexcept {
    return code_ == StatusCode::kTimeout;
  }
  [[nodiscard]] bool IsNotLeader() const noexcept {
    return code_ == StatusCode::kNotLeader;
  }
  [[nodiscard]] bool IsStorageDegraded() const noexcept {
    return code_ == StatusCode::kStorageDegraded;
  }
  [[nodiscard]] bool IsStorageFailed() const noexcept {
    return code_ == StatusCode::kStorageFailed;
  }
  [[nodiscard]] bool IsOutOfRange() const noexcept {
    return code_ == StatusCode::kOutOfRange;
  }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string ToString() const;

  /// Throws std::runtime_error if not ok. For call sites where failure is a
  /// programming error or unrecoverable (tests, examples, setup code).
  void OrDie() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of T or an error Status. Never holds an Ok status without
/// a value.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      throw std::logic_error("Result constructed from Ok status without value");
    }
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(rep_);
  }
  [[nodiscard]] Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  [[nodiscard]] const T& value() const& {
    Check();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    Check();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    Check();
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  void Check() const {
    if (!ok()) {
      throw std::runtime_error("Result::value on error: " +
                               std::get<Status>(rep_).ToString());
    }
  }
  std::variant<T, Status> rep_;
};

}  // namespace strata

/// Propagate a non-ok Status from an expression to the caller.
#define STRATA_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::strata::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)
