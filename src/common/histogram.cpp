#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace strata {

std::string BoxplotStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " p25=" << p25 << " p50=" << p50
     << " p75=" << p75 << " p95=" << p95 << " max=" << max << " mean=" << mean;
  return os.str();
}

Histogram::Histogram()
    : buckets_(static_cast<std::size_t>(kChunks) * kSubBuckets, 0) {}

int Histogram::BucketIndex(std::int64_t value) noexcept {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < 2 * kSubBuckets) {
    // Linear region [0, 64): one bucket per value pair.
    return static_cast<int>(v / 2);
  }
  const int log2 = 63 - std::countl_zero(v);
  // chunk c >= 1 covers [kSubBuckets*2^c, kSubBuckets*2^(c+1))
  const int chunk = log2 - 5;  // 2^6=64 lands in chunk 1
  const int clamped = std::min(chunk, kChunks - 1);
  const std::uint64_t base = static_cast<std::uint64_t>(kSubBuckets) << clamped;
  const std::uint64_t width = base / kSubBuckets;  // 2^clamped
  std::uint64_t sub = (v - base) / width;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return clamped * kSubBuckets + static_cast<int>(sub);
}

std::int64_t Histogram::BucketMidpoint(int index) noexcept {
  const int chunk = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (chunk == 0) return sub * 2 + 1;
  const std::uint64_t base = static_cast<std::uint64_t>(kSubBuckets) << chunk;
  const std::uint64_t width = base / kSubBuckets;
  return static_cast<std::int64_t>(base + width * static_cast<std::uint64_t>(sub) +
                                   width / 2);
}

void Histogram::Record(std::int64_t value) noexcept {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[static_cast<std::size_t>(BucketIndex(value))];
}

void Histogram::Merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::Reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

std::int64_t Histogram::min() const noexcept { return count_ ? min_ : 0; }

double Histogram::mean() const noexcept {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::int64_t Histogram::Quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      // Clamp midpoint estimate into the true observed range.
      return std::clamp(BucketMidpoint(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;
}

std::vector<std::uint64_t> Histogram::CumulativeBuckets(
    const std::vector<std::int64_t>& bounds) const {
  std::vector<std::uint64_t> out(bounds.size(), 0);
  // Bucket midpoints ascend with the index, so one walk fills every bound.
  std::size_t b = 0;
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::int64_t midpoint = BucketMidpoint(static_cast<int>(i));
    while (b < bounds.size() && bounds[b] < midpoint) {
      out[b++] = running;
    }
    if (b == bounds.size()) break;
    running += buckets_[i];
  }
  while (b < bounds.size()) out[b++] = running;
  return out;
}

BoxplotStats Histogram::Boxplot() const noexcept {
  BoxplotStats s;
  s.count = count_;
  if (count_ == 0) return s;
  s.min = min();
  s.p25 = Quantile(0.25);
  s.p50 = Quantile(0.50);
  s.p75 = Quantile(0.75);
  s.p95 = Quantile(0.95);
  s.max = max();
  s.mean = mean();
  return s;
}

}  // namespace strata
