// Small filesystem helpers shared by the KV store and pub/sub persistence:
// whole-file read/write, atomic replace via rename, scoped temp dirs.
#pragma once

#include <filesystem>
#include <string>

#include "common/status.hpp"

namespace strata::fs {

[[nodiscard]] Status WriteFile(const std::filesystem::path& path,
                               std::string_view contents);

/// Write to `<path>.tmp` then rename over `path` (atomic on POSIX).
[[nodiscard]] Status WriteFileAtomic(const std::filesystem::path& path,
                                     std::string_view contents);

[[nodiscard]] Result<std::string> ReadFile(const std::filesystem::path& path);

[[nodiscard]] Status CreateDirs(const std::filesystem::path& path);

/// fsync a directory so entries created/renamed inside it survive a power
/// loss (file data durability is separate: fsync the file itself).
[[nodiscard]] Status SyncDir(const std::filesystem::path& path);

/// RAII temp directory under the system temp path; removed on destruction.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& prefix = "strata");
  ~ScopedTempDir();
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace strata::fs
