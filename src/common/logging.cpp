#include "common/logging.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/trace_context.hpp"

namespace strata {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
std::mutex g_write_mu;
}  // namespace

void Logger::Write(LogLevel level, const std::string& message) {
  if (level == LogLevel::kWarn) {
    warnings_.fetch_add(1, std::memory_order_relaxed);
  } else if (level == LogLevel::kError) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard lock(g_write_mu);
  std::fprintf(stderr, "[%lld.%03lld %s] %s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), LevelTag(level),
               message.c_str());
}

namespace internal {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  // Lines logged under an active sampled span carry its trace id, so log
  // output greps straight to the matching spans in /tracez.
  if (const TraceContext& trace = ThreadTraceSlot(); trace.trace_id != 0) {
    os_ << "trace=" << std::hex << trace.trace_id << std::dec << " ";
  }
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  os_ << base << ":" << line << " ";
}

LogLine::~LogLine() { Logger::Instance().Write(level_, os_.str()); }

}  // namespace internal

}  // namespace strata
