// Trace context: the identity a sampled tuple batch carries from an SPE
// source through operator hops, connectors, the broker wire protocol, and
// into KV store() calls, so one trace id reconstructs the batch's full path.
//
// Lives in common (not obs) because the logger tags lines with the active
// trace id and common cannot depend on obs. The span machinery itself —
// Tracer, rings, exporters — is in obs/trace.hpp; this header is only the
// 16-byte POD plus the thread-local "current trace" slot that connects
// nested layers (operator scope -> kv store -> log line) without threading
// a parameter through every call.
//
// Deliberately two words and no more: the context rides on EVERY tuple
// (zeroed in the unsampled common case), so each extra field is paid in
// queue-slot memory traffic by untraced pipelines — growing the tuple from
// 72 to 96 bytes cost ~10% on the batched queue microbenchmark. It is also
// exactly the 16-byte trace block a v2 wire frame carries, so tuple,
// record, and frame agree on what trace identity is. Queue-wait time is
// NOT carried here: collection derives it from the gap between a span's
// start and its parent span's end (obs::Tracer::CollectSpans).
#pragma once

#include <cstdint>

namespace strata {

/// Identity of one sampled trace as it rides on a tuple. trace_id == 0 means
/// "not sampled" — the single branch hot paths pay when tracing is enabled.
struct TraceContext {
  /// Process-unique (statistically: cluster-unique) id minted at the source.
  std::uint64_t trace_id = 0;
  /// Span id of the hop that last emitted this tuple (the parent of the next
  /// hop's span).
  std::uint64_t parent_span = 0;

  [[nodiscard]] bool sampled() const noexcept { return trace_id != 0; }
};

/// The trace context active on this thread (zero when none): set by
/// obs::SpanScope for the duration of a traced batch, read by the logger
/// (trace= line prefix) and by nested layers starting child spans.
inline TraceContext& ThreadTraceSlot() noexcept {
  thread_local TraceContext slot;
  return slot;
}

}  // namespace strata
