// Time representation and clock abstraction.
//
// All timestamps in STRATA are microseconds. Event time (tuple timestamps)
// and processing time (latency measurement) share the representation but are
// never mixed implicitly. A Clock interface lets tests and simulators drive
// time manually.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

namespace strata {

/// Microseconds since an arbitrary epoch.
using Timestamp = std::int64_t;

constexpr Timestamp kMicrosPerMilli = 1000;
constexpr Timestamp kMicrosPerSecond = 1000 * 1000;

constexpr Timestamp MillisToMicros(std::int64_t ms) noexcept {
  return ms * kMicrosPerMilli;
}
constexpr Timestamp SecondsToMicros(double s) noexcept {
  return static_cast<Timestamp>(s * static_cast<double>(kMicrosPerSecond));
}
constexpr double MicrosToSeconds(Timestamp us) noexcept {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}
constexpr double MicrosToMillis(Timestamp us) noexcept {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerMilli);
}

/// Source of processing time. Virtual so tests can substitute ManualClock.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds.
  [[nodiscard]] virtual Timestamp Now() const = 0;
  /// Sleep until Now() >= deadline (best effort).
  virtual void SleepUntil(Timestamp deadline) const = 0;

  /// Process-wide monotonic system clock singleton.
  static const Clock& System();
};

/// Monotonic wall clock backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] Timestamp Now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void SleepUntil(Timestamp deadline) const override {
    const Timestamp now = Now();
    if (deadline > now) {
      std::this_thread::sleep_for(std::chrono::microseconds(deadline - now));
    }
  }
};

/// Test/simulation clock advanced explicitly. SleepUntil returns immediately
/// after advancing the clock, so simulated pipelines run at full speed.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Timestamp start = 0) : now_(start) {}

  [[nodiscard]] Timestamp Now() const override {
    return now_.load(std::memory_order_acquire);
  }
  void SleepUntil(Timestamp deadline) const override {
    Timestamp cur = now_.load(std::memory_order_acquire);
    while (cur < deadline &&
           !now_.compare_exchange_weak(cur, deadline, std::memory_order_acq_rel)) {
    }
  }
  void Advance(Timestamp delta) { now_.fetch_add(delta, std::memory_order_acq_rel); }
  void Set(Timestamp t) { now_.store(t, std::memory_order_release); }

 private:
  mutable std::atomic<Timestamp> now_;
};

}  // namespace strata
