#include "common/value.hpp"

#include <sstream>

#include "common/codec.hpp"

namespace strata {

const char* ValueKindName(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kBlob:
      return "blob";
    case ValueKind::kOpaque:
      return "opaque";
  }
  return "unknown";
}

namespace {
[[noreturn]] void ThrowKindMismatch(ValueKind want, ValueKind got) {
  throw std::runtime_error(std::string("Value: expected ") +
                           ValueKindName(want) + " but holds " +
                           ValueKindName(got));
}
}  // namespace

bool Value::AsBool() const {
  if (const auto* v = std::get_if<bool>(&rep_)) return *v;
  ThrowKindMismatch(ValueKind::kBool, kind());
}

std::int64_t Value::AsInt() const {
  if (const auto* v = std::get_if<std::int64_t>(&rep_)) return *v;
  ThrowKindMismatch(ValueKind::kInt, kind());
}

double Value::AsDouble() const {
  if (const auto* v = std::get_if<double>(&rep_)) return *v;
  if (const auto* i = std::get_if<std::int64_t>(&rep_)) {
    return static_cast<double>(*i);
  }
  ThrowKindMismatch(ValueKind::kDouble, kind());
}

const std::string& Value::AsString() const {
  if (const auto* v = std::get_if<std::string>(&rep_)) return *v;
  ThrowKindMismatch(ValueKind::kString, kind());
}

const Blob& Value::AsBlob() const {
  if (const auto* v = std::get_if<Blob>(&rep_)) return *v;
  ThrowKindMismatch(ValueKind::kBlob, kind());
}

const OpaqueRef& Value::AsOpaqueRef() const {
  if (const auto* v = std::get_if<OpaqueRef>(&rep_)) return *v;
  ThrowKindMismatch(ValueKind::kOpaque, kind());
}

std::size_t Value::ApproxBytes() const noexcept {
  switch (kind()) {
    case ValueKind::kString:
      return sizeof(Value) + std::get<std::string>(rep_).size();
    case ValueKind::kBlob:
      return sizeof(Value) + std::get<Blob>(rep_).size();
    case ValueKind::kOpaque: {
      const auto& ref = std::get<OpaqueRef>(rep_);
      return sizeof(Value) + (ref ? ref->ApproxBytes() : 0);
    }
    default:
      return sizeof(Value);
  }
}

bool operator==(const Value& a, const Value& b) noexcept {
  return a.rep_ == b.rep_;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (kind()) {
    case ValueKind::kNull:
      os << "null";
      break;
    case ValueKind::kBool:
      os << (std::get<bool>(rep_) ? "true" : "false");
      break;
    case ValueKind::kInt:
      os << std::get<std::int64_t>(rep_);
      break;
    case ValueKind::kDouble:
      os << std::get<double>(rep_);
      break;
    case ValueKind::kString:
      os << '"' << std::get<std::string>(rep_) << '"';
      break;
    case ValueKind::kBlob:
      os << "blob[" << std::get<Blob>(rep_).size() << "B]";
      break;
    case ValueKind::kOpaque: {
      const auto& ref = std::get<OpaqueRef>(rep_);
      os << "opaque<" << (ref ? ref->TypeName() : "null") << ">";
      break;
    }
  }
  return os.str();
}

void Payload::Set(std::string_view key, Value value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::string(key), std::move(value));
}

bool Payload::Has(std::string_view key) const noexcept {
  return Find(key) != nullptr;
}

const Value* Payload::Find(std::string_view key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Payload::Get(std::string_view key) const {
  if (const Value* v = Find(key)) return *v;
  throw std::out_of_range("Payload: missing key '" + std::string(key) + "'");
}

bool Payload::Erase(std::string_view key) noexcept {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

Status Payload::MergeDisjoint(const Payload& other) {
  for (const auto& [k, v] : other) {
    if (Has(k)) {
      return Status::InvalidArgument("Payload::MergeDisjoint: duplicate key '" +
                                     k + "'");
    }
  }
  for (const auto& [k, v] : other) entries_.emplace_back(k, v);
  return Status::Ok();
}

Status Payload::MergeCompatible(const Payload& other) {
  for (const auto& [k, v] : other) {
    if (const Value* existing = Find(k);
        existing != nullptr && !(*existing == v)) {
      return Status::InvalidArgument(
          "Payload::MergeCompatible: conflicting values for key '" + k + "'");
    }
  }
  for (const auto& [k, v] : other) {
    if (!Has(k)) entries_.emplace_back(k, v);
  }
  return Status::Ok();
}

std::size_t Payload::ApproxBytes() const noexcept {
  std::size_t total = sizeof(Payload);
  for (const auto& [k, v] : entries_) total += k.size() + v.ApproxBytes();
  return total;
}

std::string Payload::ToString() const {
  std::string out = "[";
  bool first = true;
  for (const auto& [k, v] : entries_) {
    if (!first) out += ", ";
    first = false;
    out += k + ":" + v.ToString();
  }
  out += "]";
  return out;
}

Status EncodeValue(const Value& value, std::string* out) {
  out->push_back(static_cast<char>(value.kind()));
  switch (value.kind()) {
    case ValueKind::kNull:
      return Status::Ok();
    case ValueKind::kBool:
      out->push_back(value.AsBool() ? 1 : 0);
      return Status::Ok();
    case ValueKind::kInt:
      codec::PutVarint64Signed(out, value.AsInt());
      return Status::Ok();
    case ValueKind::kDouble:
      codec::PutDouble(out, value.AsDouble());
      return Status::Ok();
    case ValueKind::kString:
      codec::PutLengthPrefixed(out, value.AsString());
      return Status::Ok();
    case ValueKind::kBlob: {
      const Blob& b = value.AsBlob();
      codec::PutLengthPrefixed(
          out, std::string_view(reinterpret_cast<const char*>(b.data()),
                                b.size()));
      return Status::Ok();
    }
    case ValueKind::kOpaque:
      return Status::InvalidArgument("cannot serialize opaque Value");
  }
  return Status::InvalidArgument("unknown Value kind");
}

Status DecodeValue(std::string_view* in, Value* out) {
  if (in->empty()) return Status::Corruption("DecodeValue: empty input");
  const auto kind = static_cast<ValueKind>(in->front());
  in->remove_prefix(1);
  switch (kind) {
    case ValueKind::kNull:
      *out = Value();
      return Status::Ok();
    case ValueKind::kBool: {
      if (in->empty()) return Status::Corruption("DecodeValue: bool underflow");
      *out = Value(in->front() != 0);
      in->remove_prefix(1);
      return Status::Ok();
    }
    case ValueKind::kInt: {
      std::int64_t v = 0;
      if (!codec::GetVarint64Signed(in, &v)) {
        return Status::Corruption("DecodeValue: int underflow");
      }
      *out = Value(v);
      return Status::Ok();
    }
    case ValueKind::kDouble: {
      double v = 0;
      if (!codec::GetDouble(in, &v)) {
        return Status::Corruption("DecodeValue: double underflow");
      }
      *out = Value(v);
      return Status::Ok();
    }
    case ValueKind::kString: {
      std::string_view s;
      if (!codec::GetLengthPrefixed(in, &s)) {
        return Status::Corruption("DecodeValue: string underflow");
      }
      *out = Value(std::string(s));
      return Status::Ok();
    }
    case ValueKind::kBlob: {
      std::string_view s;
      if (!codec::GetLengthPrefixed(in, &s)) {
        return Status::Corruption("DecodeValue: blob underflow");
      }
      *out = Value(Blob(s.begin(), s.end()));
      return Status::Ok();
    }
    case ValueKind::kOpaque:
      return Status::Corruption("DecodeValue: opaque kind in serialized data");
  }
  return Status::Corruption("DecodeValue: unknown kind byte");
}

Status EncodePayload(const Payload& payload, std::string* out) {
  codec::PutVarint64(out, payload.size());
  for (const auto& [k, v] : payload) {
    codec::PutLengthPrefixed(out, k);
    STRATA_RETURN_IF_ERROR(EncodeValue(v, out));
  }
  return Status::Ok();
}

Status DecodePayload(std::string_view* in, Payload* out) {
  std::uint64_t n = 0;
  if (!codec::GetVarint64(in, &n)) {
    return Status::Corruption("DecodePayload: count underflow");
  }
  Payload result;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string_view key;
    if (!codec::GetLengthPrefixed(in, &key)) {
      return Status::Corruption("DecodePayload: key underflow");
    }
    Value v;
    STRATA_RETURN_IF_ERROR(DecodeValue(in, &v));
    result.Set(key, std::move(v));
  }
  *out = std::move(result);
  return Status::Ok();
}

}  // namespace strata
