// Log-linear histogram for latency recording (HDR-style bucketing: ~2.4%
// relative error) plus exact min/max/mean, and the five-number summary used
// to regenerate the paper's boxplot figures (Figs. 5 and 6).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace strata {

/// Five-number summary + mean/count, the unit the bench harness prints for
/// each boxplot in the paper.
struct BoxplotStats {
  std::int64_t min = 0;
  std::int64_t p25 = 0;
  std::int64_t p50 = 0;
  std::int64_t p75 = 0;
  std::int64_t p95 = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  std::uint64_t count = 0;

  [[nodiscard]] std::string ToString() const;
};

/// Not thread-safe; wrap with ConcurrentHistogram for shared recording.
class Histogram {
 public:
  Histogram();

  /// Record a non-negative sample (negative values clamp to 0).
  void Record(std::int64_t value) noexcept;
  void Merge(const Histogram& other) noexcept;
  void Reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t min() const noexcept;
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;
  /// Total of all recorded samples (exact, not bucket-approximated).
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Cumulative counts for Prometheus exposition: out[i] = number of samples
  /// whose bucket midpoint is <= bounds[i]. `bounds` must be ascending; the
  /// result is then monotone non-decreasing, and samples beyond the last
  /// bound appear only in the implicit +Inf bucket (== count()).
  [[nodiscard]] std::vector<std::uint64_t> CumulativeBuckets(
      const std::vector<std::int64_t>& bounds) const;

  /// Value at quantile q in [0,1], approximated by bucket midpoint.
  [[nodiscard]] std::int64_t Quantile(double q) const noexcept;

  [[nodiscard]] BoxplotStats Boxplot() const noexcept;

 private:
  // Buckets: 64 "chunks" of 32 linear sub-buckets; chunk c covers
  // [2^(c+5), 2^(c+6)) except chunk 0 which is linear [0, 64).
  static constexpr int kSubBuckets = 32;
  static constexpr int kChunks = 58;

  static int BucketIndex(std::int64_t value) noexcept;
  static std::int64_t BucketMidpoint(int index) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

/// Mutex-guarded histogram for recording from many operator threads.
class ConcurrentHistogram {
 public:
  void Record(std::int64_t value) noexcept {
    std::lock_guard lock(mu_);
    hist_.Record(value);
  }
  [[nodiscard]] Histogram Snapshot() const {
    std::lock_guard lock(mu_);
    return hist_;
  }
  void Reset() {
    std::lock_guard lock(mu_);
    hist_.Reset();
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

}  // namespace strata
