// Bounded single-producer/single-consumer ring buffer: the low-contention
// fast path of the SPE data plane. The hot path is wait-free (one relaxed
// load, one seq_cst store, one seq_cst flag load per operation; no mutex);
// a mutex/condvar pair is used only to park whichever side runs dry, with a
// Dekker-style handshake (seq_cst index store then waiting-flag load on one
// side, waiting-flag store then index load on the other) so wake-ups are
// never lost.
//
// Semantics mirror BlockingQueue: Push blocks when full (back-pressure, with
// blocked_us accounting), Pop blocks when empty, Close releases all waiters,
// and consumers drain remaining items after Close. One caveat is inherent to
// the lock-free design: Close() must not race with a concurrent Push on
// another thread, or an in-flight item can be missed by a consumer that has
// already observed closed-and-empty. The SPE satisfies this structurally —
// a stream's single producer operator is the one that closes it.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.hpp"

namespace strata {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity),
        mask_(RoundUpPow2(capacity) - 1),
        slots_(mask_ + 1) {
    if (capacity_ == 0) {
      throw std::invalid_argument("SpscRing capacity must be > 0");
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Blocks until space is available or the ring is closed. Time spent
  /// blocked (back-pressure) is added to `*blocked_us` when provided.
  Status Push(T item, std::int64_t* blocked_us = nullptr) {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Closed("ring closed");
    }
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) {
        if (!WaitForSpace(blocked_us)) return Status::Closed("ring closed");
        head_cache_ = head_.load(std::memory_order_acquire);
      }
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_seq_cst);
    WakeConsumerIfWaiting();
    return Status::Ok();
  }

  /// Pushes every item of `batch` in order, blocking for space as needed
  /// (one index publish + one wake check per contiguous chunk, not per
  /// item). On close mid-way, `*delivered` reports how many made it.
  Status PushAll(std::vector<T>* batch, std::size_t* delivered = nullptr,
                 std::int64_t* blocked_us = nullptr) {
    std::size_t done = 0;
    while (done < batch->size()) {
      if (closed_.load(std::memory_order_acquire)) break;
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
      if (tail - head_cache_ >= capacity_) {
        head_cache_ = head_.load(std::memory_order_acquire);
        if (tail - head_cache_ >= capacity_) {
          if (!WaitForSpace(blocked_us)) break;  // closed while waiting
          head_cache_ = head_.load(std::memory_order_acquire);
        }
      }
      const std::size_t room =
          capacity_ - static_cast<std::size_t>(tail - head_cache_);
      const std::size_t n = std::min(room, batch->size() - done);
      for (std::size_t i = 0; i < n; ++i) {
        slots_[(tail + i) & mask_] = std::move((*batch)[done + i]);
      }
      tail_.store(tail + n, std::memory_order_seq_cst);
      done += n;
      WakeConsumerIfWaiting();
    }
    if (delivered != nullptr) *delivered = done;
    return done == batch->size() ? Status::Ok()
                                 : Status::Closed("ring closed");
  }

  /// Blocks until an item arrives; nullopt once closed AND drained.
  std::optional<T> Pop() {
    while (true) {
      if (auto item = TryPop()) return item;
      if (DrainedLocked()) return std::nullopt;
      WaitForItems(std::nullopt);
    }
  }

  /// Pop with a timeout; nullopt on timeout or closed-and-drained.
  std::optional<T> PopFor(std::chrono::microseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      if (auto item = TryPop()) return item;
      if (DrainedLocked()) return std::nullopt;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return std::nullopt;
      WaitForItems(std::chrono::duration_cast<std::chrono::microseconds>(
          deadline - now));
    }
  }

  std::optional<T> TryPop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return std::nullopt;
    }
    T item = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_seq_cst);
    WakeProducerIfWaiting();
    return item;
  }

  /// Drains up to `max_items` of what is available into `out` (append);
  /// blocks until at least one item or closed-and-drained (returns false).
  bool PopAll(std::vector<T>* out, std::size_t max_items = kNoLimit) {
    while (true) {
      if (TryPopAll(out, max_items) > 0) return true;
      if (DrainedLocked()) return false;
      WaitForItems(std::nullopt);
    }
  }

  /// PopAll with a timeout; false on timeout or closed-and-drained.
  bool PopAllFor(std::chrono::microseconds timeout, std::vector<T>* out,
                 std::size_t max_items = kNoLimit) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      if (TryPopAll(out, max_items) > 0) return true;
      if (DrainedLocked()) return false;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      WaitForItems(std::chrono::duration_cast<std::chrono::microseconds>(
          deadline - now));
    }
  }

  /// Non-blocking drain; returns the number of items appended to `out`.
  std::size_t TryPopAll(std::vector<T>* out, std::size_t max_items = kNoLimit) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    tail_cache_ = tail_.load(std::memory_order_acquire);
    if (head == tail_cache_) return 0;
    const std::size_t n = std::min(
        static_cast<std::size_t>(tail_cache_ - head), max_items);
    out->reserve(out->size() + n);
    for (std::uint64_t i = head; i != head + n; ++i) {
      out->push_back(std::move(slots_[i & mask_]));
    }
    head_.store(head + n, std::memory_order_seq_cst);
    WakeProducerIfWaiting();
    return n;
  }

  /// Close the ring: producers fail immediately; consumers drain remaining
  /// items and then receive nullopt. Must not race with Push (see header).
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_.store(true, std::memory_order_seq_cst);
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  static constexpr std::size_t kNoLimit =
      std::numeric_limits<std::size_t>::max();

 private:
  static std::size_t RoundUpPow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  /// Closed-and-drained check that cannot miss a pre-close publish: the
  /// closed load is ordered before a fresh tail reload.
  bool DrainedLocked() {
    if (!closed_.load(std::memory_order_seq_cst)) return false;
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    tail_cache_ = tail_.load(std::memory_order_seq_cst);
    return head == tail_cache_;
  }

  /// Producer parking. Returns false when the ring closed while waiting.
  bool WaitForSpace(std::int64_t* blocked_us) {
    const auto wait_start = std::chrono::steady_clock::now();
    {
      std::unique_lock lock(mu_);
      producer_waiting_.store(true, std::memory_order_seq_cst);
      not_full_.wait(lock, [&] {
        if (closed_.load(std::memory_order_acquire)) return true;
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        return tail - head_.load(std::memory_order_seq_cst) < capacity_;
      });
      producer_waiting_.store(false, std::memory_order_relaxed);
    }
    if (blocked_us != nullptr) {
      *blocked_us += std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - wait_start)
                         .count();
    }
    return !closed_.load(std::memory_order_acquire);
  }

  /// Consumer parking; wakes on data, close, or timeout.
  void WaitForItems(std::optional<std::chrono::microseconds> timeout) {
    std::unique_lock lock(mu_);
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    auto ready = [&] {
      if (closed_.load(std::memory_order_acquire)) return true;
      const std::uint64_t head = head_.load(std::memory_order_relaxed);
      return tail_.load(std::memory_order_seq_cst) != head;
    };
    if (timeout.has_value()) {
      not_empty_.wait_for(lock, *timeout, ready);
    } else {
      not_empty_.wait(lock, ready);
    }
    consumer_waiting_.store(false, std::memory_order_relaxed);
  }

  void WakeConsumerIfWaiting() {
    if (consumer_waiting_.load(std::memory_order_seq_cst)) {
      {
        std::lock_guard lock(mu_);
      }
      not_empty_.notify_one();
    }
  }

  void WakeProducerIfWaiting() {
    if (producer_waiting_.load(std::memory_order_seq_cst)) {
      {
        std::lock_guard lock(mu_);
      }
      not_full_.notify_one();
    }
  }

  const std::size_t capacity_;  ///< logical capacity (back-pressure bound)
  const std::size_t mask_;      ///< pow2 slot-array mask
  std::vector<T> slots_;

  // Indices are monotonically increasing; size = tail - head.
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer side
  alignas(64) std::uint64_t tail_cache_ = 0;        // consumer-local
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer side
  alignas(64) std::uint64_t head_cache_ = 0;        // producer-local

  // Slow path: parking for whichever side runs dry.
  std::atomic<bool> closed_{false};
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

}  // namespace strata
