// Bounded blocking MPMC queue: the back-pressure primitive between SPE
// operators and inside the pub/sub broker. Push blocks when full (flow
// control propagates upstream, as in Liebre/StreamCloud), Pop blocks when
// empty. Close() releases all waiters: producers see Closed, consumers drain
// remaining items then see Closed.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace strata {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) {
      throw std::invalid_argument("BlockingQueue capacity must be > 0");
    }
  }

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks until space is available or the queue is closed. When the push
  /// has to wait (back-pressure), the time spent blocked is added to
  /// `*blocked_us` (untouched on the fast path, so callers can accumulate).
  Status Push(T item, std::int64_t* blocked_us = nullptr) {
    std::unique_lock lock(mu_);
    if (!closed_ && items_.size() >= capacity_) {
      const auto wait_start = std::chrono::steady_clock::now();
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (blocked_us != nullptr) {
        *blocked_us += std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - wait_start)
                           .count();
      }
    }
    if (closed_) return Status::Closed("queue closed");
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Non-blocking push; ResourceExhausted when full.
  Status TryPush(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return Status::Closed("queue closed");
      if (items_.size() >= capacity_) {
        return Status::ResourceExhausted("queue full");
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Blocks until an item arrives; nullopt once the queue is closed AND
  /// drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Pop with a timeout; nullopt on timeout or closed-and-drained. Use
  /// `closed()` to distinguish if needed.
  std::optional<T> PopFor(std::chrono::microseconds timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: producers fail immediately; consumers drain remaining
  /// items and then receive nullopt.
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace strata
