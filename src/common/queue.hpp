// Bounded blocking MPMC queue: the back-pressure primitive between SPE
// operators and inside the pub/sub broker. Push blocks when full (flow
// control propagates upstream, as in Liebre/StreamCloud), Pop blocks when
// empty. Close() releases all waiters: producers see Closed, consumers drain
// remaining items then see Closed.
//
// Batch APIs (PushAll / PopAll / TryPopAll) move many items under a single
// lock acquisition with one notify per batch, amortizing the per-hop
// synchronization cost that dominates per-core SPE throughput.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace strata {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) {
      throw std::invalid_argument("BlockingQueue capacity must be > 0");
    }
  }

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks until space is available or the queue is closed. When the push
  /// has to wait (back-pressure), the time spent blocked is added to
  /// `*blocked_us` (untouched on the fast path, so callers can accumulate).
  Status Push(T item, std::int64_t* blocked_us = nullptr) {
    std::unique_lock lock(mu_);
    if (!closed_ && items_.size() >= capacity_) {
      const auto wait_start = std::chrono::steady_clock::now();
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (blocked_us != nullptr) {
        *blocked_us += std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - wait_start)
                           .count();
      }
    }
    if (closed_) return Status::Closed("queue closed");
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Non-blocking push; ResourceExhausted when full.
  Status TryPush(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return Status::Closed("queue closed");
      if (items_.size() >= capacity_) {
        return Status::ResourceExhausted("queue full");
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Pushes every item of `batch` in order under one lock acquisition per
  /// contiguous chunk, blocking for space as needed (batches larger than the
  /// capacity are delivered piecewise, waking consumers between chunks). On
  /// close mid-way, `*delivered` reports how many items made it in.
  Status PushAll(std::vector<T>* batch, std::size_t* delivered = nullptr,
                 std::int64_t* blocked_us = nullptr) {
    std::size_t done = 0;
    std::unique_lock lock(mu_);
    while (done < batch->size()) {
      if (!closed_ && items_.size() >= capacity_) {
        // Wake consumers for what we already enqueued before parking.
        if (done > 0) not_empty_.notify_all();
        const auto wait_start = std::chrono::steady_clock::now();
        not_full_.wait(lock,
                       [&] { return closed_ || items_.size() < capacity_; });
        if (blocked_us != nullptr) {
          *blocked_us +=
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - wait_start)
                  .count();
        }
      }
      if (closed_) break;
      const std::size_t room = capacity_ - items_.size();
      const std::size_t n = std::min(room, batch->size() - done);
      for (std::size_t i = 0; i < n; ++i) {
        items_.push_back(std::move((*batch)[done + i]));
      }
      done += n;
    }
    lock.unlock();
    if (delivered != nullptr) *delivered = done;
    if (done > 0) not_empty_.notify_all();
    return done == batch->size() ? Status::Ok()
                                 : Status::Closed("queue closed");
  }

  /// Blocks until an item arrives; nullopt once the queue is closed AND
  /// drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Pop with a timeout; nullopt on timeout or closed-and-drained. Use
  /// `closed()` to distinguish if needed.
  std::optional<T> PopFor(std::chrono::microseconds timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Drains up to `max_items` of what is queued into `out` (append) under
  /// one lock; blocks until at least one item or closed-and-drained
  /// (returns false).
  bool PopAll(std::vector<T>* out, std::size_t max_items = kNoLimit) {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return DrainLocked(&lock, out, max_items);
  }

  /// PopAll with a timeout; false on timeout or closed-and-drained.
  bool PopAllFor(std::chrono::microseconds timeout, std::vector<T>* out,
                 std::size_t max_items = kNoLimit) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return false;
    }
    return DrainLocked(&lock, out, max_items);
  }

  /// Non-blocking drain; returns the number of items appended to `out`.
  std::size_t TryPopAll(std::vector<T>* out, std::size_t max_items = kNoLimit) {
    std::unique_lock lock(mu_);
    if (items_.empty()) return 0;
    const std::size_t n = std::min(items_.size(), max_items);
    (void)DrainLocked(&lock, out, max_items);
    return n;
  }

  /// Close the queue: producers fail immediately; consumers drain remaining
  /// items and then receive nullopt.
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  static constexpr std::size_t kNoLimit =
      std::numeric_limits<std::size_t>::max();

 private:
  /// Moves up to `max_items` queued items into `out`; unlocks, wakes all
  /// producers (many slots freed at once). Returns false when nothing was
  /// drained.
  bool DrainLocked(std::unique_lock<std::mutex>* lock, std::vector<T>* out,
                   std::size_t max_items) {
    if (items_.empty()) return false;  // closed and drained
    const std::size_t n = std::min(items_.size(), max_items);
    out->reserve(out->size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock->unlock();
    not_full_.notify_all();
    return true;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace strata
