// Deterministic seeded RNG wrapper. All simulated data (OT images, defect
// seeding, workload arrival) flows through this so experiments are
// reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

namespace strata {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  /// Uniform in [lo, hi).
  [[nodiscard]] double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  [[nodiscard]] double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  [[nodiscard]] bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }
  [[nodiscard]] std::int64_t Poisson(double mean) {
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }
  /// Exponential inter-arrival gap for a Poisson process of the given rate.
  [[nodiscard]] double ExponentialGap(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Derive an independent child stream (for per-layer / per-specimen
  /// generators that must not perturb each other).
  [[nodiscard]] Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace strata
