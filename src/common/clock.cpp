#include "common/clock.hpp"

namespace strata {

const Clock& Clock::System() {
  static const SystemClock clock;
  return clock;
}

}  // namespace strata
