#include "common/status.hpp"

namespace strata {

const char* StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kClosed:
      return "Closed";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNotLeader:
      return "NotLeader";
    case StatusCode::kStorageDegraded:
      return "StorageDegraded";
    case StatusCode::kStorageFailed:
      return "StorageFailed";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::OrDie() const {
  if (!ok()) throw std::runtime_error(ToString());
}

}  // namespace strata
