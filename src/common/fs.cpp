#include "common/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>

namespace strata::fs {

namespace stdfs = std::filesystem;

Status WriteFile(const stdfs::path& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("open for write failed: " + path.string());
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path.string());
  return Status::Ok();
}

Status WriteFileAtomic(const stdfs::path& path, std::string_view contents) {
  const stdfs::path tmp = path.string() + ".tmp";
  STRATA_RETURN_IF_ERROR(WriteFile(tmp, contents));
  std::error_code ec;
  stdfs::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename failed: " + ec.message());
  return Status::Ok();
}

Result<std::string> ReadFile(const stdfs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("open for read failed: " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path.string());
  return ss.str();
}

Status CreateDirs(const stdfs::path& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) return Status::IoError("create_directories failed: " + ec.message());
  return Status::Ok();
}

Status SyncDir(const stdfs::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("open dir for fsync failed: " + path.string() +
                           ": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync dir failed: " + path.string() + ": " +
                           std::strerror(errno));
  }
  return Status::Ok();
}

ScopedTempDir::ScopedTempDir(const std::string& prefix) {
  static std::mt19937_64 rng(std::random_device{}());
  const stdfs::path base = stdfs::temp_directory_path();
  for (int attempt = 0; attempt < 64; ++attempt) {
    stdfs::path candidate = base / (prefix + "-" + std::to_string(rng()));
    std::error_code ec;
    if (stdfs::create_directory(candidate, ec)) {
      path_ = candidate;
      return;
    }
  }
  throw std::runtime_error("ScopedTempDir: failed to create temp dir");
}

ScopedTempDir::~ScopedTempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    stdfs::remove_all(path_, ec);  // best effort
  }
}

}  // namespace strata::fs
