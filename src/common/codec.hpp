// Little-endian binary encoding primitives (fixed-width and varint), used by
// the KV store's WAL/SSTable formats, pub/sub segment logs, and the tuple
// codec. Decode functions consume from a string_view cursor and return false
// on underflow/overflow instead of throwing, so corruption surfaces as a
// Status at the call site.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace strata::codec {

inline void PutFixed32(std::string* dst, std::uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, std::uint64_t v) {
  PutFixed32(dst, static_cast<std::uint32_t>(v & 0xffffffffu));
  PutFixed32(dst, static_cast<std::uint32_t>(v >> 32));
}

inline bool GetFixed32(std::string_view* in, std::uint32_t* v) {
  if (in->size() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(in->data());
  *v = static_cast<std::uint32_t>(p[0]) |
       (static_cast<std::uint32_t>(p[1]) << 8) |
       (static_cast<std::uint32_t>(p[2]) << 16) |
       (static_cast<std::uint32_t>(p[3]) << 24);
  in->remove_prefix(4);
  return true;
}

inline bool GetFixed64(std::string_view* in, std::uint64_t* v) {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  if (!GetFixed32(in, &lo) || !GetFixed32(in, &hi)) return false;
  *v = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return true;
}

inline void PutVarint64(std::string* dst, std::uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<const char*>(buf), static_cast<std::size_t>(n));
}

inline void PutVarint32(std::string* dst, std::uint32_t v) {
  PutVarint64(dst, v);
}

inline bool GetVarint64(std::string_view* in, std::uint64_t* v) {
  std::uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !in->empty(); shift += 7) {
    const auto byte = static_cast<unsigned char>(in->front());
    in->remove_prefix(1);
    // The 10th byte holds only bit 63: a continuation bit or payload bits
    // above it would overflow silently, so corrupt input is rejected rather
    // than wrapped modulo 2^64.
    if (shift == 63 && (byte & 0xfe) != 0) return false;
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;
}

inline bool GetVarint32(std::string_view* in, std::uint32_t* v) {
  std::uint64_t wide = 0;
  if (!GetVarint64(in, &wide) || wide > UINT32_MAX) return false;
  *v = static_cast<std::uint32_t>(wide);
  return true;
}

/// ZigZag for signed payloads (timestamps can precede the epoch in tests).
inline std::uint64_t ZigZagEncode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t ZigZagDecode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void PutVarint64Signed(std::string* dst, std::int64_t v) {
  PutVarint64(dst, ZigZagEncode(v));
}
inline bool GetVarint64Signed(std::string_view* in, std::int64_t* v) {
  std::uint64_t raw = 0;
  if (!GetVarint64(in, &raw)) return false;
  *v = ZigZagDecode(raw);
  return true;
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

inline bool GetLengthPrefixed(std::string_view* in, std::string_view* out) {
  std::uint64_t len = 0;
  if (!GetVarint64(in, &len) || in->size() < len) return false;
  *out = in->substr(0, len);
  in->remove_prefix(len);
  return true;
}

inline void PutDouble(std::string* dst, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

inline bool GetDouble(std::string_view* in, double* v) {
  std::uint64_t bits = 0;
  if (!GetFixed64(in, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

}  // namespace strata::codec
