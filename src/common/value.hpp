// Dynamic value and payload model shared by the SPE tuples, the pub/sub
// records, and the key-value store.
//
// STRATA tuples carry "an arbitrary number of source-specific key value
// pairs" (paper, Table 1). Payload models that: an ordered sequence of
// (key, Value) pairs. Values are a closed variant of scalar types plus an
// opaque reference type used to pass large in-memory objects (e.g. OT
// images) through a pipeline by pointer instead of by copy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace strata {

/// Base for large objects referenced from a Value without copying.
/// Implementations are immutable once shared.
class OpaqueValue {
 public:
  virtual ~OpaqueValue() = default;
  /// Short type tag, used in diagnostics and equality checks.
  [[nodiscard]] virtual const char* TypeName() const noexcept = 0;
  /// Approximate in-memory footprint, for metrics/back-pressure accounting.
  [[nodiscard]] virtual std::size_t ApproxBytes() const noexcept = 0;
};

using OpaqueRef = std::shared_ptr<const OpaqueValue>;
using Blob = std::vector<std::uint8_t>;

enum class ValueKind : std::uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kBlob,
  kOpaque,
};

const char* ValueKindName(ValueKind kind) noexcept;

/// A single dynamically-typed value.
class Value {
 public:
  Value() = default;
  Value(bool v) : rep_(v) {}                          // NOLINT
  Value(std::int64_t v) : rep_(v) {}                  // NOLINT
  Value(int v) : rep_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(double v) : rep_(v) {}                        // NOLINT
  Value(std::string v) : rep_(std::move(v)) {}        // NOLINT
  Value(const char* v) : rep_(std::string(v)) {}      // NOLINT
  Value(Blob v) : rep_(std::move(v)) {}               // NOLINT
  Value(OpaqueRef v) : rep_(std::move(v)) {}          // NOLINT

  [[nodiscard]] ValueKind kind() const noexcept {
    return static_cast<ValueKind>(rep_.index());
  }
  [[nodiscard]] bool is_null() const noexcept {
    return kind() == ValueKind::kNull;
  }

  // Checked accessors: throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool AsBool() const;
  [[nodiscard]] std::int64_t AsInt() const;
  [[nodiscard]] double AsDouble() const;  // accepts kInt too (widening)
  [[nodiscard]] const std::string& AsString() const;
  [[nodiscard]] const Blob& AsBlob() const;
  [[nodiscard]] const OpaqueRef& AsOpaqueRef() const;

  /// Downcast the opaque reference to a concrete type; throws on mismatch.
  template <typename T>
  [[nodiscard]] std::shared_ptr<const T> AsOpaque() const {
    auto cast = std::dynamic_pointer_cast<const T>(AsOpaqueRef());
    if (!cast) throw std::runtime_error("Value: opaque type mismatch");
    return cast;
  }

  /// Approximate heap footprint (for queue byte accounting).
  [[nodiscard]] std::size_t ApproxBytes() const noexcept;

  /// Structural equality. Opaque values compare by pointer identity.
  friend bool operator==(const Value& a, const Value& b) noexcept;

  [[nodiscard]] std::string ToString() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Blob,
               OpaqueRef>
      rep_;
};

/// Ordered key→Value map with insertion-order iteration and linear lookup
/// (payloads are small: a handful of keys).
class Payload {
 public:
  using Entry = std::pair<std::string, Value>;
  using const_iterator = std::vector<Entry>::const_iterator;

  Payload() = default;
  Payload(std::initializer_list<Entry> entries) : entries_(entries) {}

  /// Insert or overwrite.
  void Set(std::string_view key, Value value);
  [[nodiscard]] bool Has(std::string_view key) const noexcept;
  /// nullptr when absent.
  [[nodiscard]] const Value* Find(std::string_view key) const noexcept;
  /// Throws std::out_of_range when absent.
  [[nodiscard]] const Value& Get(std::string_view key) const;
  /// Removes a key if present; returns whether it was present.
  bool Erase(std::string_view key) noexcept;

  /// Append all entries of `other`. Returns InvalidArgument on a duplicate
  /// key: the paper's fuse() "assumes that, for each set of fused tuples,
  /// each key is unique".
  [[nodiscard]] Status MergeDisjoint(const Payload& other);

  /// Like MergeDisjoint, but duplicate keys carrying EQUAL values are
  /// tolerated (deduplicated). Used by fuse(): group-by sub-attributes
  /// legitimately appear on both fused tuples with the same value; only a
  /// conflicting duplicate violates the uniqueness assumption.
  [[nodiscard]] Status MergeCompatible(const Payload& other);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const_iterator begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }

  [[nodiscard]] std::size_t ApproxBytes() const noexcept;
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Payload& a, const Payload& b) noexcept = default;

 private:
  std::vector<Entry> entries_;
};

/// Binary serialization of scalar Values (used by the KV store and pub/sub
/// persistence). Opaque values are not serializable: returns InvalidArgument.
[[nodiscard]] Status EncodeValue(const Value& value, std::string* out);
[[nodiscard]] Status DecodeValue(std::string_view* in, Value* out);
[[nodiscard]] Status EncodePayload(const Payload& payload, std::string* out);
[[nodiscard]] Status DecodePayload(std::string_view* in, Payload* out);

}  // namespace strata
