// Minimal leveled logger. Thread-safe line-buffered output to stderr; the
// global level gates cheaply before message formatting.
//
// Lines written from a thread with an active sampled trace span are prefixed
// `trace=<hex id>`, so `grep trace=<id>` correlates log output with the spans
// of the same pipeline batch in /tracez or an exported Chrome trace.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace strata {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& Instance();

  void SetLevel(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool Enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void Write(LogLevel level, const std::string& message);

  /// Process-lifetime counts of warn/error lines actually written (level
  /// gating applied). Exported as obs.log.warnings / obs.log.errors.
  [[nodiscard]] std::uint64_t warning_count() const noexcept {
    return warnings_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t error_count() const noexcept {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::atomic<std::uint64_t> warnings_{0};
  std::atomic<std::uint64_t> errors_{0};
};

/// Shorthands for the metrics callback in the Strata facade.
[[nodiscard]] inline std::uint64_t LogWarningCount() noexcept {
  return Logger::Instance().warning_count();
}
[[nodiscard]] inline std::uint64_t LogErrorCount() noexcept {
  return Logger::Instance().error_count();
}

namespace internal {
/// Accumulates one log line and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace internal

}  // namespace strata

#define STRATA_LOG(level)                                       \
  if (!::strata::Logger::Instance().Enabled(level)) {           \
  } else                                                        \
    ::strata::internal::LogLine(level, __FILE__, __LINE__)

#define LOG_DEBUG STRATA_LOG(::strata::LogLevel::kDebug)
#define LOG_INFO STRATA_LOG(::strata::LogLevel::kInfo)
#define LOG_WARN STRATA_LOG(::strata::LogLevel::kWarn)
#define LOG_ERROR STRATA_LOG(::strata::LogLevel::kError)
