#include "common/crc32.hpp"

#include <array>

namespace strata {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected CRC-32C

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

std::uint32_t Crc32c(std::string_view data, std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  for (const char c : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(c)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace strata
