// CRC-32 (Castagnoli polynomial, software table implementation) used to
// checksum WAL records, SSTable blocks, and pub/sub segment entries.
#pragma once

#include <cstdint>
#include <string_view>

namespace strata {

/// CRC-32C of `data`, optionally chained from a previous crc.
[[nodiscard]] std::uint32_t Crc32c(std::string_view data,
                                   std::uint32_t seed = 0) noexcept;

/// Masked CRC (as in LevelDB): protects against CRC-of-CRC patterns when a
/// checksum is itself stored in checksummed data.
[[nodiscard]] constexpr std::uint32_t MaskCrc(std::uint32_t crc) noexcept {
  constexpr std::uint32_t kMaskDelta = 0xa282ead8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

[[nodiscard]] constexpr std::uint32_t UnmaskCrc(std::uint32_t masked) noexcept {
  constexpr std::uint32_t kMaskDelta = 0xa282ead8u;
  const std::uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace strata
