#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace strata::obs {

namespace {

/// "name{k1=v1,k2=v2}" (or just "name" when unlabeled).
std::string FullName(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + v;
  }
  out += "}";
  return out;
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only; dots become underscores.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string PromLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    std::string escaped;
    for (char c : v) {
      if (c == '\\' || c == '"') escaped += '\\';
      if (c == '\n') {
        escaped += "\\n";
        continue;
      }
      escaped += c;
    }
    out += PromName(k) + "=\"" + escaped + "\"";
  }
  out += "}";
  return out;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `le` bounds used for registry-owned histograms, microsecond-scaled (the
/// repo's histograms record latencies in µs). ~2 buckets per decade keeps
/// the exposition small while the log-linear source stays far finer.
const std::vector<std::int64_t> kPrometheusBucketBounds = {
    10,      25,      50,      100,       250,       500,       1'000,
    2'500,   5'000,   10'000,  25'000,    50'000,    100'000,   250'000,
    500'000, 1'000'000, 2'500'000, 5'000'000, 10'000'000};

std::string FormatValue(double value) {
  // Counters/gauges are integral in practice; print them without decimals.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

// ------------------------------------------------------------ MetricsSnapshot

void MetricsSnapshot::AddCounter(std::string name, Labels labels,
                                 std::uint64_t value) {
  samples.push_back(Sample{std::move(name), std::move(labels),
                           Sample::Kind::kCounter,
                           static_cast<double>(value)});
}

void MetricsSnapshot::AddGauge(std::string name, Labels labels,
                               std::int64_t value) {
  samples.push_back(Sample{std::move(name), std::move(labels),
                           Sample::Kind::kGauge, static_cast<double>(value)});
}

void MetricsSnapshot::AddHistogram(std::string name, Labels labels,
                                   BoxplotStats stats) {
  histograms.push_back(
      HistogramSample{std::move(name), std::move(labels), stats});
}

std::optional<double> MetricsSnapshot::Value(std::string_view name,
                                             const Labels& labels) const {
  for (const Sample& s : samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  return std::nullopt;
}

double MetricsSnapshot::Sum(std::string_view name, std::string_view label_key,
                            std::string_view value_prefix,
                            const Labels& where) const {
  double total = 0.0;
  for (const Sample& s : samples) {
    if (s.name != name) continue;
    const auto it = s.labels.find(std::string(label_key));
    if (it == s.labels.end() ||
        it->second.compare(0, value_prefix.size(), value_prefix) != 0) {
      continue;
    }
    bool match = true;
    for (const auto& [k, v] : where) {
      const auto wit = s.labels.find(k);
      if (wit == s.labels.end() || wit->second != v) {
        match = false;
        break;
      }
    }
    if (match) total += s.value;
  }
  return total;
}

std::string MetricsSnapshot::ToText() const {
  std::vector<std::string> lines;
  lines.reserve(samples.size() + histograms.size());
  for (const Sample& s : samples) {
    lines.push_back(FullName(s.name, s.labels) + " = " + FormatValue(s.value));
  }
  for (const HistogramSample& h : histograms) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  " = count=%" PRIu64 " mean=%.1f p50=%" PRId64 " p95=%" PRId64
                  " max=%" PRId64,
                  h.stats.count, h.stats.mean, h.stats.p50, h.stats.p95,
                  h.stats.max);
    lines.push_back(FullName(h.name, h.labels) + buf);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  std::string last_type_line;
  // Group samples by name so each # TYPE header appears once.
  std::vector<const Sample*> ordered;
  ordered.reserve(samples.size());
  for (const Sample& s : samples) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Sample* a, const Sample* b) {
                     return a->name < b->name;
                   });
  for (const Sample* s : ordered) {
    const std::string prom = PromName(s->name);
    const std::string type_line =
        "# TYPE " + prom + " " +
        (s->kind == Sample::Kind::kCounter ? "counter" : "gauge") + "\n";
    if (type_line != last_type_line) {
      out += type_line;
      last_type_line = type_line;
    }
    out += prom + PromLabels(s->labels) + " " + FormatValue(s->value) + "\n";
  }
  for (const HistogramSample& h : histograms) {
    const std::string prom = PromName(h.name);
    if (!h.buckets.empty()) {
      // Full exposition: cumulative `le` buckets ending in the implicit
      // +Inf bucket, which by contract equals _count.
      out += "# TYPE " + prom + " histogram\n";
      for (const auto& [bound, cumulative] : h.buckets) {
        Labels labels = h.labels;
        labels["le"] = FormatValue(static_cast<double>(bound));
        out += prom + "_bucket" + PromLabels(labels) + " " +
               FormatValue(static_cast<double>(cumulative)) + "\n";
      }
      Labels inf_labels = h.labels;
      inf_labels["le"] = "+Inf";
      out += prom + "_bucket" + PromLabels(inf_labels) + " " +
             FormatValue(static_cast<double>(h.stats.count)) + "\n";
      out += prom + "_sum" + PromLabels(h.labels) + " " + FormatValue(h.sum) +
             "\n";
      out += prom + "_count" + PromLabels(h.labels) + " " +
             FormatValue(static_cast<double>(h.stats.count)) + "\n";
      continue;
    }
    // Boxplot-only source (pull callback): quantile summary fallback.
    out += "# TYPE " + prom + " summary\n";
    for (const auto& [q, v] :
         {std::pair<const char*, std::int64_t>{"0.5", h.stats.p50},
          {"0.75", h.stats.p75},
          {"0.95", h.stats.p95}}) {
      Labels labels = h.labels;
      labels["quantile"] = q;
      out += prom + PromLabels(labels) + " " + FormatValue(static_cast<double>(v)) + "\n";
    }
    out += prom + "_count" + PromLabels(h.labels) + " " +
           FormatValue(static_cast<double>(h.stats.count)) + "\n";
    out += prom + "_sum" + PromLabels(h.labels) + " " +
           FormatValue(h.stats.mean * static_cast<double>(h.stats.count)) +
           "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJsonLines() const {
  std::string out;
  auto labels_json = [](const Labels& labels) {
    std::string json = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) json += ",";
      first = false;
      json += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    json += "}";
    return json;
  };
  for (const Sample& s : samples) {
    out += "{\"name\":\"" + JsonEscape(s.name) + "\",\"kind\":\"" +
           (s.kind == Sample::Kind::kCounter ? std::string("counter")
                                             : std::string("gauge")) +
           "\",\"labels\":" + labels_json(s.labels) +
           ",\"value\":" + FormatValue(s.value) + "}\n";
  }
  for (const HistogramSample& h : histograms) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",\"count\":%" PRIu64 ",\"mean\":%g,\"min\":%" PRId64
                  ",\"p25\":%" PRId64 ",\"p50\":%" PRId64 ",\"p75\":%" PRId64
                  ",\"p95\":%" PRId64 ",\"max\":%" PRId64 "}\n",
                  h.stats.count, h.stats.mean, h.stats.min, h.stats.p25,
                  h.stats.p50, h.stats.p75, h.stats.p95, h.stats.max);
    out += "{\"name\":\"" + JsonEscape(h.name) +
           "\",\"kind\":\"histogram\",\"labels\":" + labels_json(h.labels) +
           buf;
  }
  return out;
}

// ------------------------------------------------------------ MetricsRegistry

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  std::lock_guard lock(mu_);
  return &counters_[Key{name, labels}];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  std::lock_guard lock(mu_);
  return &gauges_[Key{name, labels}];
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const Labels& labels) {
  std::lock_guard lock(mu_);
  return &histograms_[Key{name, labels}];
}

MetricsRegistry::CallbackId MetricsRegistry::RegisterCallback(
    std::function<void(MetricsSnapshot*)> fn) {
  std::lock_guard lock(mu_);
  const CallbackId id = next_callback_++;
  callbacks_[id] = std::move(fn);
  return id;
}

void MetricsRegistry::Unregister(CallbackId id) {
  std::lock_guard lock(mu_);
  callbacks_.erase(id);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::vector<std::function<void(MetricsSnapshot*)>> callbacks;
  {
    std::lock_guard lock(mu_);
    for (const auto& [key, counter] : counters_) {
      snapshot.AddCounter(key.name, key.labels, counter.value());
    }
    for (const auto& [key, gauge] : gauges_) {
      snapshot.AddGauge(key.name, key.labels, gauge.value());
    }
    for (const auto& [key, hist] : histograms_) {
      const Histogram h = hist.Snapshot();
      HistogramSample sample{key.name, key.labels, h.Boxplot()};
      const std::vector<std::uint64_t> cumulative =
          h.CumulativeBuckets(kPrometheusBucketBounds);
      sample.buckets.reserve(cumulative.size());
      for (std::size_t i = 0; i < cumulative.size(); ++i) {
        sample.buckets.emplace_back(kPrometheusBucketBounds[i], cumulative[i]);
      }
      sample.sum = h.sum();
      snapshot.histograms.push_back(std::move(sample));
    }
    callbacks.reserve(callbacks_.size());
    for (const auto& [id, fn] : callbacks_) callbacks.push_back(fn);
  }
  // Callbacks run outside the registry lock: they may take component locks
  // (broker, query) that are also held while calling GetCounter.
  for (const auto& fn : callbacks) fn(&snapshot);
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace strata::obs
