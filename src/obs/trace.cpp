#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "common/histogram.hpp"
#include "obs/metrics.hpp"

namespace strata::obs {
namespace {

void CopyTruncated(char* dst, std::size_t cap, const char* src) noexcept {
  std::size_t i = 0;
  for (; src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

// splitmix64 finalizer: turns a sequential counter into well-spread ids so
// trace ids from two processes (seeded differently) collide only by chance.
std::uint64_t Mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint32_t ThisThreadId() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint32_t ThisProcessId() noexcept {
  return static_cast<std::uint32_t>(::getpid());
}

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

std::string HexId(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

void Span::SetName(const char* s) noexcept {
  CopyTruncated(name, sizeof(name), s);
}
void Span::SetCategory(const char* s) noexcept {
  CopyTruncated(category, sizeof(category), s);
}

std::int64_t TraceNowUs() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// SpanRing: per-slot seqlock over atomic words (the Boehm seqlock idiom, so
// the race between a writer overwriting the oldest slot and a reader
// snapshotting it is defined behavior and TSan-clean).
// ---------------------------------------------------------------------------

SpanRing::SpanRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

void SpanRing::Push(const Span& span) noexcept {
  const std::uint64_t index = pushed_.load(std::memory_order_relaxed);
  Slot& slot = slots_[index % capacity_];

  std::uint64_t words[kWordsPerSpan];
  std::memcpy(words, &span, sizeof(span));

  const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);
  // Order the odd seq before the payload words so a reader that observes new
  // payload also observes the write-in-progress marker.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (std::size_t i = 0; i < kWordsPerSpan; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
  pushed_.store(index + 1, std::memory_order_release);
}

void SpanRing::Clear() noexcept {
  cleared_.store(pushed_.load(std::memory_order_acquire),
                 std::memory_order_release);
}

void SpanRing::Snapshot(std::vector<Span>* out) const {
  const std::uint64_t total = pushed_.load(std::memory_order_acquire);
  std::uint64_t first = total > capacity_ ? total - capacity_ : 0;
  first = std::max(first, cleared_.load(std::memory_order_acquire));
  for (std::uint64_t i = first; i < total; ++i) {
    const Slot& slot = slots_[i % capacity_];
    std::uint64_t words[kWordsPerSpan];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before % 2 != 0 || before == 0) continue;  // mid-write or never written
    for (std::size_t w = 0; w < kWordsPerSpan; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;  // torn
    Span span;
    std::memcpy(&span, words, sizeof(span));
    if (span.trace_id != 0) out->push_back(span);
  }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer& Tracer::Instance() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    // Seed id spaces per process so traces from a two-process pipeline do
    // not collide when merged.
    const std::uint64_t seed =
        Mix64(static_cast<std::uint64_t>(TraceNowUs()) ^
              (static_cast<std::uint64_t>(ThisProcessId()) << 32));
    t->next_trace_id_.store(seed | 1, std::memory_order_relaxed);
    t->next_span_id_.store(Mix64(seed) | 1, std::memory_order_relaxed);
    return t;
  }();
  return *tracer;
}

void Tracer::Configure(std::uint32_t sample_every, std::size_t ring_capacity) {
  {
    std::lock_guard lock(mu_);
    ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  }
  sample_every_.store(sample_every, std::memory_order_relaxed);
}

bool Tracer::ConfigureFromEnv() {
  const char* spec = std::getenv("STRATA_TRACE_SAMPLE");
  if (spec == nullptr || *spec == '\0') return false;
  const long value = std::strtol(spec, nullptr, 10);
  Configure(value <= 0 ? 0u : static_cast<std::uint32_t>(value));
  return true;
}

TraceContext Tracer::MaybeStartTrace() noexcept {
  const std::uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return {};
  thread_local std::uint32_t counter = 0;
  if (++counter < every) return {};
  counter = 0;
  traces_started_.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  ctx.trace_id =
      Mix64(next_trace_id_.fetch_add(1, std::memory_order_relaxed));
  if (ctx.trace_id == 0) ctx.trace_id = 1;
  return ctx;
}

std::uint64_t Tracer::NewSpanId() noexcept {
  const std::uint64_t id =
      Mix64(next_span_id_.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

// Thread-local handle that returns the ring to the tracer's free list when
// the thread exits, so short-lived operator threads (one set per query run)
// reuse rings instead of growing the registry without bound.
struct TracerTlsHandle {
  Tracer* tracer = nullptr;
  SpanRing* ring = nullptr;
  ~TracerTlsHandle() {
    if (tracer != nullptr && ring != nullptr) tracer->ReleaseRing(ring);
  }
};

SpanRing* Tracer::ThreadRing() {
  thread_local TracerTlsHandle handle;
  if (handle.ring == nullptr) {
    std::lock_guard lock(mu_);
    if (!free_rings_.empty()) {
      handle.ring = free_rings_.back();
      free_rings_.pop_back();
    } else {
      rings_.push_back(std::make_unique<SpanRing>(ring_capacity_));
      handle.ring = rings_.back().get();
    }
    handle.tracer = this;
  }
  return handle.ring;
}

void Tracer::ReleaseRing(SpanRing* ring) {
  std::lock_guard lock(mu_);
  free_rings_.push_back(ring);
}

void Tracer::Record(const Span& span) noexcept {
  if (span.trace_id == 0) return;
  Span stamped = span;
  if (stamped.tid == 0) stamped.tid = ThisThreadId();
  if (stamped.pid == 0) stamped.pid = ThisProcessId();
  ThreadRing()->Push(stamped);
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Span> Tracer::CollectSpans() const {
  std::vector<Span> out;
  {
    std::lock_guard lock(mu_);
    for (const auto& ring : rings_) ring->Snapshot(&out);
  }
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_us < b.start_us;
  });
  // Queue-wait derivation: the gap between a span's start and its parent
  // span's end is time the batch sat in a stream between hops. Done here —
  // not on the data plane — so tuples carry only the 16-byte identity.
  // Nested scopes (a kv.store inside a still-open sink span) start before
  // their parent ends and correctly derive zero; a parent recorded in
  // another process is simply absent and leaves queue_us at zero.
  std::unordered_map<std::uint64_t, std::int64_t> end_by_span;
  end_by_span.reserve(out.size());
  for (const Span& span : out) {
    end_by_span[span.span_id] = span.start_us + span.dur_us;
  }
  for (Span& span : out) {
    if (span.parent_span == 0 || span.queue_us != 0) continue;
    const auto parent = end_by_span.find(span.parent_span);
    if (parent != end_by_span.end() && span.start_us > parent->second) {
      span.queue_us = span.start_us - parent->second;
    }
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard lock(mu_);
  for (const auto& ring : rings_) ring->Clear();
  traces_started_.store(0, std::memory_order_relaxed);
  spans_recorded_.store(0, std::memory_order_relaxed);
}

void Tracer::BindMetrics(MetricsRegistry* registry) {
  static std::mutex bind_mu;
  static MetricsRegistry* bound = nullptr;
  static MetricsRegistry::CallbackId callback_id = 0;

  std::lock_guard lock(bind_mu);
  if (bound != nullptr) {
    bound->Unregister(callback_id);
    bound = nullptr;
  }
  if (registry == nullptr) return;
  callback_id = registry->RegisterCallback([this](MetricsSnapshot* snap) {
    snap->AddCounter("obs.trace.started", {}, traces_started());
    snap->AddCounter("obs.trace.spans", {}, spans_recorded());
    snap->AddGauge("obs.trace.sample_every", {}, sample_every());
  });
  bound = registry;
}

std::vector<StageStats> Tracer::Summarize(const std::vector<Span>& spans) {
  struct Acc {
    Histogram exec;
    Histogram queue;
    std::int64_t total_exec = 0;
  };
  std::map<std::pair<std::string, std::string>, Acc> stages;
  for (const Span& span : spans) {
    Acc& acc = stages[{span.category, span.name}];
    acc.exec.Record(span.dur_us);
    acc.queue.Record(span.queue_us);
    acc.total_exec += span.dur_us;
  }
  std::vector<StageStats> out;
  out.reserve(stages.size());
  for (const auto& [key, acc] : stages) {
    StageStats s;
    s.category = key.first;
    s.name = key.second;
    s.count = acc.exec.count();
    s.exec_p50_us = acc.exec.Quantile(0.5);
    s.exec_p95_us = acc.exec.Quantile(0.95);
    s.exec_p99_us = acc.exec.Quantile(0.99);
    s.queue_p50_us = acc.queue.Quantile(0.5);
    s.queue_p95_us = acc.queue.Quantile(0.95);
    s.total_exec_us = acc.total_exec;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const StageStats& a, const StageStats& b) {
    return a.total_exec_us > b.total_exec_us;
  });
  return out;
}

std::string Tracer::ToChromeTrace(const std::vector<Span>& spans) {
  std::string out;
  out.reserve(128 + spans.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, span.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(&out, span.category);
    out += "\",\"ph\":\"X\",\"ts\":" + std::to_string(span.start_us);
    out += ",\"dur\":" + std::to_string(span.dur_us < 1 ? 1 : span.dur_us);
    out += ",\"pid\":" + std::to_string(span.pid);
    out += ",\"tid\":" + std::to_string(span.tid);
    out += ",\"args\":{\"trace\":\"" + HexId(span.trace_id) + "\"";
    out += ",\"span\":\"" + HexId(span.span_id) + "\"";
    if (span.parent_span != 0) {
      out += ",\"parent\":\"" + HexId(span.parent_span) + "\"";
    }
    out += ",\"queue_us\":" + std::to_string(span.queue_us);
    out += ",\"batch\":" + std::to_string(span.batch);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string Tracer::ToTracezText(const std::vector<Span>& spans,
                                 std::size_t max_spans) {
  std::ostringstream os;
  os << "spans collected: " << spans.size() << "\n\n";
  os << "per-stage latency (microseconds)\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-14s %-28s %10s %9s %9s %9s %9s %9s\n",
                "category", "name", "count", "exec_p50", "exec_p95",
                "exec_p99", "queue_p50", "queue_p95");
  os << line;
  for (const StageStats& s : Summarize(spans)) {
    std::snprintf(line, sizeof(line),
                  "%-14s %-28s %10llu %9lld %9lld %9lld %9lld %9lld\n",
                  s.category.c_str(), s.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<long long>(s.exec_p50_us),
                  static_cast<long long>(s.exec_p95_us),
                  static_cast<long long>(s.exec_p99_us),
                  static_cast<long long>(s.queue_p50_us),
                  static_cast<long long>(s.queue_p95_us));
    os << line;
  }
  os << "\nrecent spans (newest last)\n";
  const std::size_t begin =
      spans.size() > max_spans ? spans.size() - max_spans : 0;
  for (std::size_t i = begin; i < spans.size(); ++i) {
    const Span& s = spans[i];
    std::snprintf(line, sizeof(line),
                  "trace=%016llx span=%016llx %-12s %-24s start=%lld dur=%lld "
                  "queue=%lld batch=%llu pid=%u tid=%u\n",
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.span_id), s.category,
                  s.name, static_cast<long long>(s.start_us),
                  static_cast<long long>(s.dur_us),
                  static_cast<long long>(s.queue_us),
                  static_cast<unsigned long long>(s.batch), s.pid, s.tid);
    os << line;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// SpanScope
// ---------------------------------------------------------------------------

SpanScope::SpanScope(const char* name, const char* category,
                     const TraceContext& parent, std::uint64_t batch) noexcept {
  if (!parent.sampled()) return;
  Tracer& tracer = Tracer::Instance();
  span_.trace_id = parent.trace_id;
  span_.span_id = tracer.NewSpanId();
  span_.parent_span = parent.parent_span;
  span_.start_us = TraceNowUs();
  span_.batch = batch;
  span_.SetName(name);
  span_.SetCategory(category);
  saved_ = ThreadTraceSlot();
  ThreadTraceSlot() = TraceContext{span_.trace_id, span_.span_id};
  active_ = true;
}

SpanScope::~SpanScope() { Finish(); }

SpanScope::SpanScope(SpanScope&& other) noexcept
    : span_(other.span_), saved_(other.saved_), active_(other.active_) {
  other.active_ = false;
}

SpanScope& SpanScope::operator=(SpanScope&& other) noexcept {
  if (this != &other) {
    Finish();
    span_ = other.span_;
    saved_ = other.saved_;
    active_ = other.active_;
    other.active_ = false;
  }
  return *this;
}

void SpanScope::Finish() noexcept {
  if (!active_) return;
  active_ = false;
  span_.dur_us = TraceNowUs() - span_.start_us;
  ThreadTraceSlot() = saved_;
  Tracer::Instance().Record(span_);
}

TraceContext SpanScope::EmitContext() const noexcept {
  if (!active_) return {};
  return TraceContext{span_.trace_id, span_.span_id};
}

}  // namespace strata::obs
