// Periodic metrics sampler: a background thread that snapshots a registry at
// a fixed period and hands each snapshot to a consumer callback (print a
// status line, append JSON lines, push to a remote store). The bench harness
// and examples use this instead of ad-hoc per-run counters.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace strata::obs {

class PeriodicSampler {
 public:
  using Consumer = std::function<void(const MetricsSnapshot&)>;

  /// Starts sampling immediately; first snapshot after one period.
  PeriodicSampler(const MetricsRegistry* registry,
                  std::chrono::milliseconds period, Consumer consumer);
  ~PeriodicSampler();
  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  /// Stop the thread; delivers one final snapshot before returning so the
  /// consumer always sees the end-of-run totals. Idempotent.
  void Stop();

 private:
  void Loop();

  const MetricsRegistry* registry_;
  const std::chrono::milliseconds period_;
  Consumer consumer_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace strata::obs
