#include "obs/sampler.hpp"

namespace strata::obs {

PeriodicSampler::PeriodicSampler(const MetricsRegistry* registry,
                                 std::chrono::milliseconds period,
                                 Consumer consumer)
    : registry_(registry), period_(period), consumer_(std::move(consumer)) {
  thread_ = std::thread([this] { Loop(); });
}

PeriodicSampler::~PeriodicSampler() { Stop(); }

void PeriodicSampler::Stop() {
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mu_);
  stopped_ = true;
}

void PeriodicSampler::Loop() {
  std::unique_lock lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, period_, [&] { return stop_; })) break;
    lock.unlock();
    consumer_(registry_->Snapshot());
    lock.lock();
  }
  lock.unlock();
  // Final end-of-run snapshot.
  consumer_(registry_->Snapshot());
}

}  // namespace strata::obs
