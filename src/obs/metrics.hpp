// Process-wide observability: a registry of named counters, gauges, and
// log-linear histograms (backed by strata::Histogram), plus pull-style
// snapshot callbacks for values that are cheaper to compute on demand
// (queue depths, consumer lag, memtable size).
//
// Hot-path contract: Counter/Gauge/HistogramMetric handles returned by the
// registry are stable for the registry's lifetime and safe to use from any
// thread. Counter::Inc is a single relaxed fetch_add — cheap enough for
// per-tuple code. Registration (name lookup) takes a mutex and is meant for
// construction time, not per-tuple paths.
//
// Naming scheme (see DESIGN.md): dot-separated `<layer>.<subject>.<metric>`
// (e.g. "spe.operator.tuples_in", "pubsub.group.lag", "kv.memtable_bytes")
// with labels for the instance dimension ({op=...}, {topic=..., partition=...}).
// Exposition formats: human-readable text, Prometheus exposition (dots
// become underscores), and JSON lines for the bench harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.hpp"

namespace strata::obs {

/// Instance dimension of a metric ({op="cell.m0"}, {topic="raw.ot.m0"}).
/// Ordered map so equal label sets compare equal and print deterministically.
using Labels = std::map<std::string, std::string>;

/// Monotonically increasing value. Handle owned by the registry.
class Counter {
 public:
  void Inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value that can move both ways. Handle owned by the registry.
class Gauge {
 public:
  void Set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Sub(std::int64_t delta) noexcept {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-linear distribution (mutex-guarded strata::Histogram).
using HistogramMetric = ConcurrentHistogram;

/// One scalar observation in a snapshot.
struct Sample {
  enum class Kind { kCounter, kGauge };
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  double value = 0.0;
};

/// One distribution observation in a snapshot.
struct HistogramSample {
  std::string name;
  Labels labels;
  BoxplotStats stats;
  /// Cumulative Prometheus buckets: (le bound, samples <= bound), bounds
  /// ascending. Filled for registry-owned histograms; left empty by pull
  /// callbacks that only supply a BoxplotStats — those render as a summary.
  std::vector<std::pair<std::int64_t, std::uint64_t>> buckets;
  /// Exact sum of recorded samples (`_sum`); 0 when buckets is empty.
  double sum = 0.0;
};

/// Consistent point-in-time view of every registered metric.
struct MetricsSnapshot {
  std::vector<Sample> samples;
  std::vector<HistogramSample> histograms;

  void AddCounter(std::string name, Labels labels, std::uint64_t value);
  void AddGauge(std::string name, Labels labels, std::int64_t value);
  /// Append a distribution computed on demand by a pull callback (e.g. a
  /// stream's batch-size histogram); rendered by every exporter alongside
  /// registry-owned histograms.
  void AddHistogram(std::string name, Labels labels, BoxplotStats stats);

  /// Value of the sample matching (name, labels) exactly.
  [[nodiscard]] std::optional<double> Value(std::string_view name,
                                            const Labels& labels = {}) const;
  /// Sum of samples named `name` whose label `label_key` starts with
  /// `value_prefix` and whose other labels all match `where` exactly.
  [[nodiscard]] double Sum(std::string_view name, std::string_view label_key,
                           std::string_view value_prefix,
                           const Labels& where = {}) const;

  /// Aligned human-readable dump (one metric per line, sorted).
  [[nodiscard]] std::string ToText() const;
  /// Prometheus text exposition format v0.0.4.
  [[nodiscard]] std::string ToPrometheus() const;
  /// One JSON object per line (bench harness import format).
  [[nodiscard]] std::string ToJsonLines() const;
};

/// Thread-safe registry. Handles are created on first use and live until the
/// registry is destroyed; re-requesting the same (name, labels) returns the
/// same handle, so concurrent components share counters safely.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter* GetCounter(const std::string& name,
                                    const Labels& labels = {});
  [[nodiscard]] Gauge* GetGauge(const std::string& name,
                                const Labels& labels = {});
  [[nodiscard]] HistogramMetric* GetHistogram(const std::string& name,
                                              const Labels& labels = {});

  /// Pull-style metrics: `fn` is invoked during Snapshot() to append samples
  /// computed on demand (queue depths, consumer lag, ...). Returns a token
  /// for Unregister; the caller must unregister before anything the callback
  /// captures is destroyed.
  using CallbackId = std::uint64_t;
  CallbackId RegisterCallback(std::function<void(MetricsSnapshot*)> fn);
  void Unregister(CallbackId id);

  [[nodiscard]] MetricsSnapshot Snapshot() const;

  /// Process-wide registry for components not wired to a specific one.
  [[nodiscard]] static MetricsRegistry& Default();

 private:
  struct Key {
    std::string name;
    Labels labels;
    auto operator<=>(const Key&) const = default;
  };

  mutable std::mutex mu_;
  // Node-based containers: handle addresses stay valid across insertions.
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, HistogramMetric> histograms_;
  std::map<CallbackId, std::function<void(MetricsSnapshot*)>> callbacks_;
  CallbackId next_callback_ = 1;
};

}  // namespace strata::obs
