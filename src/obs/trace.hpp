// strata::obs tracing: sampled per-batch spans across the whole pipeline.
//
// Design goals, in priority order:
//   1. Near-zero cost when disabled: every instrumentation point is one
//      relaxed atomic load + one predictable branch.
//   2. Lock-free recording: a sampled span is written into a fixed-size
//      per-thread ring of seqlock-protected slots; writers never block and
//      never allocate on the hot path.
//   3. Whole-pipeline reconstruction: spans carry the TraceContext minted at
//      an SPE source, so one trace id stitches source -> operators ->
//      connector produce/fetch -> net frames -> kv store across threads and
//      (on one machine) across processes.
//
// Export: Chrome trace-event JSON (load in Perfetto / chrome://tracing) and
// a human-readable recent-spans table with per-stage latency percentiles
// (served at the admin endpoint's /tracez).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace_context.hpp"

namespace strata::obs {

class MetricsRegistry;

/// One completed unit of traced work. POD with fixed-size strings so a span
/// can be copied in and out of the lock-free ring as plain 8-byte words.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::int64_t start_us = 0;   // monotonic clock, microseconds
  std::int64_t dur_us = 0;     // execute time inside the hop
  std::int64_t queue_us = 0;   // derived at collection: start - parent span end
  std::uint64_t batch = 0;     // tuples covered by this span (0 = n/a)
  std::uint32_t tid = 0;
  std::uint32_t pid = 0;
  char name[48] = {};          // operator / site name, truncated
  char category[16] = {};      // layer: spe.*, pubsub, net, kv

  void SetName(const char* s) noexcept;
  void SetCategory(const char* s) noexcept;
};
static_assert(sizeof(Span) % sizeof(std::uint64_t) == 0,
              "Span must copy as whole 8-byte words");

/// Fixed-capacity ring of spans with a per-slot seqlock. Exactly one thread
/// writes at a time (the owning thread; ownership may move between threads
/// through the Tracer's mutex-guarded free list, which synchronizes the
/// hand-off); any number of threads may snapshot concurrently. Overwrites
/// the oldest span when full — the ring always holds the most recent spans.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// Owner thread only. Wait-free: two fences and ~16 relaxed word stores.
  void Push(const Span& span) noexcept;

  /// Any thread. Copies out every consistent, fully-written span not hidden
  /// by Clear(). Spans being overwritten during the scan are skipped, never
  /// torn.
  void Snapshot(std::vector<Span>* out) const;

  /// Any thread. Hides every span pushed so far from future snapshots
  /// without touching slot storage, so concurrent writers stay safe.
  void Clear() noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kWordsPerSpan = sizeof(Span) / sizeof(std::uint64_t);

  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // odd while a write is in progress
    std::atomic<std::uint64_t> words[kWordsPerSpan];
  };

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  // pushed_ doubles as the write index (slot = pushed_ % capacity); only the
  // owner thread advances it. cleared_ is the snapshot floor set by Clear().
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> cleared_{0};
};

/// Latency summary for one (category, name) stage, derived from a span set.
struct StageStats {
  std::string category;
  std::string name;
  std::uint64_t count = 0;
  std::int64_t exec_p50_us = 0;
  std::int64_t exec_p95_us = 0;
  std::int64_t exec_p99_us = 0;
  std::int64_t queue_p50_us = 0;
  std::int64_t queue_p95_us = 0;
  std::int64_t total_exec_us = 0;
};

/// Process-wide tracer: sampling decisions, span-id minting, the registry of
/// per-thread rings, and exporters. Obtain via Tracer::Instance().
class Tracer {
 public:
  /// The process singleton (intentionally leaked, like the default metrics
  /// registry, so thread-local ring handles may outlive static teardown).
  static Tracer& Instance();

  /// sample_every: a source starts a trace on every Nth batch; 0 disables
  /// tracing entirely (the default). ring_capacity applies to rings created
  /// after the call. Safe to call while the pipeline runs.
  void Configure(std::uint32_t sample_every, std::size_t ring_capacity = 2048);

  /// Applies STRATA_TRACE_SAMPLE from the environment if set (integer,
  /// 0 disables). Returns true when the variable was present.
  bool ConfigureFromEnv();

  /// True when sampling is configured; one relaxed load. Instrumentation
  /// points gate on this before touching anything else.
  bool enabled() const noexcept {
    return sample_every_.load(std::memory_order_relaxed) != 0;
  }
  std::uint32_t sample_every() const noexcept {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Source-side sampling decision: returns a fresh sampled context on every
  /// Nth call per thread, a zero context otherwise (or when disabled).
  TraceContext MaybeStartTrace() noexcept;

  /// Mints a process-unique span id (never 0).
  std::uint64_t NewSpanId() noexcept;

  /// Records a completed span into this thread's ring.
  void Record(const Span& span) noexcept;

  /// Copies every span currently held in any thread's ring, oldest first.
  std::vector<Span> CollectSpans() const;

  /// Hides all spans recorded so far from future CollectSpans() calls and
  /// zeroes the trace counters. Safe to call while threads are recording
  /// (their rings stay valid); a span pushed concurrently with Clear may
  /// land on either side of the cut.
  void Clear();

  std::uint64_t traces_started() const noexcept {
    return traces_started_.load(std::memory_order_relaxed);
  }
  std::uint64_t spans_recorded() const noexcept {
    return spans_recorded_.load(std::memory_order_relaxed);
  }

  /// Exports obs.trace.* counters through `registry` pull callbacks. A second
  /// call rebinds to the new registry (mirrors fault::BindMetrics).
  void BindMetrics(MetricsRegistry* registry);

  /// Per-(category, name) latency percentiles, sorted by total execute time
  /// descending.
  static std::vector<StageStats> Summarize(const std::vector<Span>& spans);

  /// Chrome trace-event JSON ("traceEvents" array of ph:"X" slices, ts/dur in
  /// microseconds). Loadable in Perfetto or chrome://tracing; traces from two
  /// processes on one machine can be concatenated by merging the arrays.
  static std::string ToChromeTrace(const std::vector<Span>& spans);

  /// Human-readable /tracez payload: stage percentile table + the most recent
  /// `max_spans` spans.
  static std::string ToTracezText(const std::vector<Span>& spans,
                                  std::size_t max_spans = 64);

 private:
  Tracer() = default;

  SpanRing* ThreadRing();
  void ReleaseRing(SpanRing* ring);

  std::atomic<std::uint32_t> sample_every_{0};
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::atomic<std::uint64_t> next_span_id_{1};
  std::atomic<std::uint64_t> traces_started_{0};
  std::atomic<std::uint64_t> spans_recorded_{0};

  mutable std::mutex mu_;
  std::size_t ring_capacity_ = 2048;
  std::vector<std::unique_ptr<SpanRing>> rings_;  // never shrinks
  std::vector<SpanRing*> free_rings_;  // rings whose owner thread exited
  MetricsRegistry* bound_registry_ = nullptr;

  friend struct TracerTlsHandle;
};

/// One relaxed load + branch; the canonical gate for instrumentation points.
inline bool TracingEnabled() noexcept { return Tracer::Instance().enabled(); }

/// RAII span covering one hop's processing of a sampled batch. Inactive
/// instances (default-constructed, or built from an unsampled context) cost
/// one branch in the destructor and record nothing.
///
/// While active, the thread's TraceContext slot (common/trace_context.hpp)
/// points at this span, so nested layers — kv store() under a sink, log
/// lines, net frames written downstream — attach to it automatically; the
/// previous slot value is restored on destruction, preserving nesting.
class SpanScope {
 public:
  SpanScope() = default;
  /// Starts a span iff `parent.sampled()`. queue_us stays zero here; the
  /// wait behind this hop is derived at CollectSpans() time from the gap to
  /// the parent span's end.
  SpanScope(const char* name, const char* category, const TraceContext& parent,
            std::uint64_t batch = 0) noexcept;
  ~SpanScope();

  SpanScope(SpanScope&& other) noexcept;
  SpanScope& operator=(SpanScope&& other) noexcept;
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const noexcept { return active_; }

  /// Context for tuples this hop emits: same trace, parent = this span —
  /// which is how the next hop's queue wait becomes derivable at collection.
  TraceContext EmitContext() const noexcept;

  /// Updates the tuple count attributed to this span.
  void SetBatch(std::uint64_t batch) noexcept { span_.batch = batch; }

 private:
  void Finish() noexcept;

  Span span_;
  TraceContext saved_;
  bool active_ = false;
};

/// Monotonic-clock microseconds (same epoch as SystemClock / span fields).
std::int64_t TraceNowUs() noexcept;

}  // namespace strata::obs
