#include "repl/manager.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"
#include "fault/failpoint.hpp"
#include "net/protocol.hpp"
#include "obs/trace.hpp"

namespace strata::repl {

namespace {

/// Server-answered error (crossed the wire in a response frame) — the peer
/// is alive, as opposed to a transport fault. Mirrors the marker added by
/// ClientConnection::RoundTrip.
bool IsServerError(const Status& status) {
  return !status.ok() && status.message().rfind("server: ", 0) == 0;
}

}  // namespace

void ReplicationManager::PendingWakeups::Fire(ps::Broker* broker) {
  for (auto& [done, status] : callbacks) done(status);
  for (const ps::TopicPartition& tp : advanced) {
    broker->NotifyPartition(tp.topic, tp.partition);
  }
}

ReplicationManager::ReplicationManager(ps::Broker* broker,
                                       ReplicaOptions options)
    : broker_(broker), options_(std::move(options)) {
  if (obs::MetricsRegistry* registry = options_.metrics; registry != nullptr) {
    const obs::Labels labels{{"broker", std::to_string(options_.self.id)}};
    fetch_rounds_ = registry->GetCounter("repl.fetch.rounds", labels);
    records_replicated_ = registry->GetCounter("repl.records", labels);
    elections_ = registry->GetCounter("repl.elections", labels);
    promotions_ = registry->GetCounter("repl.promotions", labels);
    truncations_ = registry->GetCounter("repl.truncations", labels);
    metrics_callback_ =
        registry->RegisterCallback([this](obs::MetricsSnapshot* snapshot) {
          for (const TopicView& view : ViewAll()) {
            const obs::Labels topic_labels{
                {"broker", std::to_string(options_.self.id)},
                {"topic", view.topic}};
            snapshot->AddGauge("repl.epoch", topic_labels,
                               static_cast<std::int64_t>(view.epoch));
            snapshot->AddGauge("repl.is_leader", topic_labels,
                               view.is_leader ? 1 : 0);
            for (std::size_t p = 0; p < view.partitions.size(); ++p) {
              obs::Labels part_labels = topic_labels;
              part_labels["partition"] = std::to_string(p);
              snapshot->AddGauge("repl.hw", part_labels,
                                 view.partitions[p].high_watermark);
              snapshot->AddGauge("repl.lag", part_labels,
                                 view.partitions[p].lag);
            }
          }
        });
  }
}

ReplicationManager::~ReplicationManager() {
  Stop();
  if (options_.metrics != nullptr && metrics_callback_ != 0) {
    options_.metrics->Unregister(metrics_callback_);
  }
}

Status ReplicationManager::Start() {
  {
    std::lock_guard lock(stop_mu_);
    if (started_) return Status::InvalidArgument("manager already started");
    started_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void ReplicationManager::Stop() {
  {
    std::lock_guard lock(stop_mu_);
    if (!started_) return;
    started_ = false;
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();

  PendingWakeups pending;
  {
    std::lock_guard lock(mu_);
    for (auto& [id, waiter] : waiters_) {
      pending.callbacks.emplace_back(std::move(waiter.done),
                                     Status::Closed("replication stopping"));
    }
    waiters_.clear();
  }
  pending.Fire(broker_);
}

Status ReplicationManager::AddTopic(const std::string& topic,
                                    const ps::TopicConfig& config,
                                    std::uint32_t leader) {
  const bool known =
      std::any_of(options_.brokers.begin(), options_.brokers.end(),
                  [leader](const BrokerEndpoint& b) { return b.id == leader; });
  if (!known) {
    return Status::InvalidArgument("leader " + std::to_string(leader) +
                                   " is not in the replica set");
  }
  STRATA_RETURN_IF_ERROR(broker_->CreateTopic(topic, config));
  std::lock_guard lock(mu_);
  if (topics_.contains(topic)) return Status::Ok();  // idempotent
  TopicState state;
  state.config = config;
  state.leader = leader;
  state.epoch = 1;
  const auto partitions = static_cast<std::size_t>(config.partitions);
  state.hw.assign(partitions, 0);
  state.leader_end.assign(partitions, 0);
  state.stalled.assign(partitions, false);
  if (leader == options_.self.id) {
    // Records already on disk predate replication; they were acked under
    // the old durability contract, so the initial leader keeps serving
    // them rather than hiding them behind an hw no follower will push.
    for (std::size_t p = 0; p < partitions; ++p) {
      state.hw[p] = LocalEnd(topic, static_cast<std::uint32_t>(p));
    }
  }
  state.last_leader_contact = Clock::now();
  topics_.emplace(topic, std::move(state));
  return Status::Ok();
}

std::int64_t ReplicationManager::LocalEnd(const std::string& topic,
                                          std::uint32_t partition) const {
  auto log = broker_->GetLog(topic, static_cast<int>(partition));
  return log.ok() ? (*log)->EndOffset() : 0;
}

bool ReplicationManager::IsLeader(const std::string& topic) const {
  std::lock_guard lock(mu_);
  const auto it = topics_.find(topic);
  return it != topics_.end() && it->second.leader == options_.self.id;
}

// --- views ------------------------------------------------------------------

namespace {

/// Leader's in-sync replica set: itself plus every follower heard from
/// within the isr timeout.
template <typename TopicStateT>
std::vector<std::uint32_t> IsrOf(const TopicStateT& state, std::uint32_t self,
                                 std::chrono::microseconds isr_timeout,
                                 std::chrono::steady_clock::time_point now) {
  std::vector<std::uint32_t> isr{self};
  for (const auto& [id, follower] : state.followers) {
    if (now - follower.last_contact <= isr_timeout) isr.push_back(id);
  }
  std::sort(isr.begin(), isr.end());
  return isr;
}

}  // namespace

Result<TopicView> ReplicationManager::View(const std::string& topic) const {
  for (TopicView& view : const_cast<ReplicationManager*>(this)->ViewAll()) {
    if (view.topic == topic) return std::move(view);
  }
  return Status::NotFound("topic " + topic + " not replicated");
}

std::vector<TopicView> ReplicationManager::ViewAll() const {
  std::vector<TopicView> views;
  const auto now = Clock::now();
  std::lock_guard lock(mu_);
  for (const auto& [name, state] : topics_) {
    TopicView view;
    view.topic = name;
    view.leader = state.leader;
    view.epoch = state.epoch;
    view.is_leader = state.leader == options_.self.id;
    const auto partitions = static_cast<std::size_t>(state.config.partitions);
    for (std::size_t p = 0; p < partitions; ++p) {
      TopicView::Partition part;
      part.log_end = LocalEnd(name, static_cast<std::uint32_t>(p));
      part.high_watermark = state.hw[p];
      if (view.is_leader) {
        // Most-behind follower's distance from our end; no followers heard
        // from yet = the whole uncommitted window.
        std::int64_t min_acked = part.log_end;
        for (const auto& [id, follower] : state.followers) {
          if (p < follower.acked.size()) {
            min_acked = std::min(min_acked, follower.acked[p]);
          } else {
            min_acked = 0;
          }
        }
        if (state.followers.empty()) min_acked = state.hw[p];
        part.lag = std::max<std::int64_t>(0, part.log_end - min_acked);
      } else {
        part.lag =
            std::max<std::int64_t>(0, state.leader_end[p] - part.log_end);
        part.stalled = p < state.stalled.size() && state.stalled[p];
      }
      view.partitions.push_back(part);
    }
    if (view.is_leader) {
      view.isr = IsrOf(state, options_.self.id, options_.isr_timeout, now);
    }
    views.push_back(std::move(view));
  }
  return views;
}

std::string ReplicationManager::HealthJson() const {
  std::string out = "{\"broker\":" + std::to_string(options_.self.id) +
                    ",\"topics\":[";
  bool first = true;
  for (const TopicView& view : ViewAll()) {
    if (!first) out += ',';
    first = false;
    out += "{\"topic\":\"" + view.topic +
           "\",\"leader\":" + std::to_string(view.leader) +
           ",\"epoch\":" + std::to_string(view.epoch) + ",\"is_leader\":" +
           (view.is_leader ? "true" : "false") + ",\"isr\":[";
    for (std::size_t i = 0; i < view.isr.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(view.isr[i]);
    }
    out += "],\"partitions\":[";
    for (std::size_t p = 0; p < view.partitions.size(); ++p) {
      if (p != 0) out += ',';
      out += "{\"log_end\":" + std::to_string(view.partitions[p].log_end) +
             ",\"high_watermark\":" +
             std::to_string(view.partitions[p].high_watermark) +
             ",\"lag\":" + std::to_string(view.partitions[p].lag) +
             ",\"stalled\":" +
             (view.partitions[p].stalled ? "true" : "false") + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

// --- net::ReplicationHooks --------------------------------------------------

bool ReplicationManager::ManagesTopic(const std::string& topic) const {
  std::lock_guard lock(mu_);
  return topics_.contains(topic);
}

Status ReplicationManager::CheckProduce(const std::string& topic) const {
  std::lock_guard lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::Ok();  // unmanaged: pass through
  if (it->second.leader == options_.self.id) return Status::Ok();
  return Status::NotLeader("topic " + topic + " is led by broker " +
                           std::to_string(it->second.leader) + " (epoch " +
                           std::to_string(it->second.epoch) + ")");
}

std::int64_t ReplicationManager::VisibleEnd(const ps::TopicPartition& tp,
                                            std::int64_t log_end) const {
  std::lock_guard lock(mu_);
  const auto it = topics_.find(tp.topic);
  if (it == topics_.end()) return log_end;
  const auto p = static_cast<std::size_t>(tp.partition);
  if (p >= it->second.hw.size()) return log_end;
  return std::min(log_end, it->second.hw[p]);
}

void ReplicationManager::RecomputeHwLocked(const std::string& topic,
                                           TopicState& state,
                                           std::uint32_t partition,
                                           PendingWakeups* pending) {
  if (state.leader != options_.self.id) return;
  const auto p = static_cast<std::size_t>(partition);
  if (p >= state.hw.size()) return;

  std::vector<std::int64_t> ends;
  ends.reserve(state.followers.size() + 1);
  ends.push_back(LocalEnd(topic, partition));
  for (const auto& [id, follower] : state.followers) {
    ends.push_back(p < follower.acked.size() ? follower.acked[p] : 0);
  }
  if (ends.size() < quorum()) return;  // not enough copies heard from yet
  std::sort(ends.begin(), ends.end(), std::greater<>());
  const std::int64_t candidate = ends[quorum() - 1];
  if (candidate <= state.hw[p]) return;  // hw is monotone

  state.hw[p] = candidate;
  pending->advanced.push_back(
      ps::TopicPartition{topic, static_cast<int>(partition)});
  for (auto it = waiters_.begin(); it != waiters_.end();) {
    CommitWaiter& waiter = it->second;
    if (waiter.topic == topic && waiter.partition == partition &&
        waiter.offset < state.hw[p]) {
      pending->callbacks.emplace_back(std::move(waiter.done), Status::Ok());
      it = waiters_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplicationManager::FailTopicWaitersLocked(const std::string& topic,
                                                const Status& status,
                                                PendingWakeups* pending) {
  for (auto it = waiters_.begin(); it != waiters_.end();) {
    if (it->second.topic == topic) {
      pending->callbacks.emplace_back(std::move(it->second.done), status);
      it = waiters_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplicationManager::TruncateUncommittedLocked(const std::string& topic,
                                                   TopicState& state) {
  for (int p = 0; p < state.config.partitions; ++p) {
    auto log = broker_->GetLog(topic, p);
    if (!log.ok()) continue;
    const std::int64_t end = (*log)->EndOffset();
    const std::int64_t hw = state.hw[static_cast<std::size_t>(p)];
    if (end <= hw) continue;
    LOG_WARN << "repl: truncating " << topic << "/" << p << " from " << end
             << " to hw " << hw << " (uncommitted tail across epoch change)";
    if (truncations_ != nullptr) truncations_->Inc();
    if (Status trunc = (*log)->TruncateTo(hw); !trunc.ok()) {
      LOG_ERROR << "repl: truncate failed: " << trunc.ToString();
    }
  }
}

std::uint64_t ReplicationManager::AddCommitWaiter(
    const ps::TopicPartition& tp, std::int64_t offset,
    std::function<void(Status)> done) {
  PendingWakeups pending;
  std::uint64_t id = 0;
  Status inline_status = Status::Ok();
  bool fire_inline = false;
  {
    std::lock_guard lock(mu_);
    id = next_waiter_++;
    const auto it = topics_.find(tp.topic);
    if (it == topics_.end()) {
      // Unmanaged topic: nothing gates the produce, commit trivially.
      fire_inline = true;
    } else if (it->second.leader != options_.self.id) {
      fire_inline = true;
      inline_status = Status::NotLeader(
          "topic " + tp.topic + " is led by broker " +
          std::to_string(it->second.leader));
    } else {
      // A single-broker "cluster" (quorum 1) commits on the local append
      // alone — only a recompute here will ever notice that.
      RecomputeHwLocked(tp.topic, it->second,
                        static_cast<std::uint32_t>(tp.partition), &pending);
      const auto p = static_cast<std::size_t>(tp.partition);
      if (p < it->second.hw.size() && it->second.hw[p] > offset) {
        fire_inline = true;
      } else {
        waiters_.emplace(
            id, CommitWaiter{tp.topic, static_cast<std::uint32_t>(tp.partition),
                             offset, std::move(done)});
      }
    }
  }
  pending.Fire(broker_);
  if (fire_inline) done(inline_status);
  return id;
}

void ReplicationManager::CancelCommitWaiter(std::uint64_t id) {
  std::lock_guard lock(mu_);
  waiters_.erase(id);
}

Status ReplicationManager::HandleReplicaFetch(
    const net::ReplicaFetchRequest& req, net::ReplicaFetchResponse* resp) {
  STRATA_FAILPOINT("repl.fetch.serve");
  PendingWakeups pending;
  Status status = Status::Ok();
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(req.topic);
    if (it == topics_.end()) {
      status = Status::NotFound("topic " + req.topic + " not replicated");
    } else if (it->second.leader != options_.self.id) {
      status = Status::NotLeader("topic " + req.topic + " is led by broker " +
                                 std::to_string(it->second.leader));
    } else if (req.epoch > it->second.epoch) {
      // The follower has seen a newer epoch than we have: we are a deposed
      // leader that missed the announcement. Refuse; our own fetch loop /
      // election will catch us up.
      status = Status::NotLeader("fetch carries epoch " +
                                 std::to_string(req.epoch) + " > local " +
                                 std::to_string(it->second.epoch));
    } else if (req.epoch < it->second.epoch) {
      // Stale follower (missed the promote announcement): answer with the
      // current epoch and no records or ack credit. The follower adopts the
      // epoch, drops its uncommitted tail, and refetches — serving records
      // or crediting a fetch offset against a possibly-diverged log would
      // let the high watermark advance on copies that do not match ours.
      resp->leader = options_.self.id;
      resp->epoch = it->second.epoch;
    } else {
      TopicState& state = it->second;
      resp->leader = options_.self.id;
      resp->epoch = state.epoch;
      Follower& follower = state.followers[req.follower];
      follower.acked.resize(
          static_cast<std::size_t>(state.config.partitions), 0);
      follower.last_contact = Clock::now();
      for (const auto& entry : req.entries) {
        if (entry.partition >=
            static_cast<std::uint32_t>(state.config.partitions)) {
          continue;
        }
        auto log = broker_->GetLog(req.topic,
                                   static_cast<int>(entry.partition));
        if (!log.ok()) continue;
        net::ReplicaFetchResponse::Entry out;
        out.partition = entry.partition;
        out.base_offset = entry.offset;
        out.high_watermark = state.hw[entry.partition];
        out.log_end = (*log)->EndOffset();
        const auto budget = static_cast<std::size_t>(std::min<std::uint64_t>(
            entry.max_records, options_.max_fetch_records));
        std::int64_t next = entry.offset;
        if (Status read = (*log)->ReadFrom(entry.offset, budget, &out.records,
                                           &next);
            read.ok()) {
          // The fetch offset is a cumulative ack: everything below it is
          // already appended on the follower — but never credit past our
          // own end, or a diverged follower fetching beyond it would
          // advance the high watermark on records we never served.
          follower.acked[entry.partition] =
              std::max(follower.acked[entry.partition],
                       std::min(entry.offset, (*log)->EndOffset()));
          RecomputeHwLocked(req.topic, state, entry.partition, &pending);
        } else {
          // Offset below the retention horizon: the follower cannot copy
          // contiguously from here (and earns no ack credit). Report where
          // our log starts; the follower flags the gap instead of
          // mis-numbering records.
          out.records.clear();
          out.base_offset = (*log)->StartOffset();
        }
        out.high_watermark = state.hw[entry.partition];
        resp->entries.push_back(std::move(out));
      }
    }
  }
  pending.Fire(broker_);
  return status;
}

Status ReplicationManager::HandleReplicaAck(const net::ReplicaAckRequest& req,
                                            net::ReplicaAckResponse* resp) {
  STRATA_FAILPOINT("repl.ack.serve");
  PendingWakeups pending;
  Status status = Status::Ok();
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(req.topic);
    if (it == topics_.end()) {
      status = Status::NotFound("topic " + req.topic + " not replicated");
    } else if (it->second.leader != options_.self.id ||
               req.epoch != it->second.epoch) {
      // A stale-epoch ack (req.epoch below ours) is refused just like a
      // newer one: the follower's log may have diverged during the missed
      // leadership interval, so its end is no ack until it re-fetches
      // under the current epoch.
      status = Status::NotLeader("topic " + req.topic + " is led by broker " +
                                 std::to_string(it->second.leader) +
                                 " (epoch " +
                                 std::to_string(it->second.epoch) + ")");
    } else {
      TopicState& state = it->second;
      Follower& follower = state.followers[req.follower];
      follower.acked.resize(
          static_cast<std::size_t>(state.config.partitions), 0);
      follower.last_contact = Clock::now();
      for (const auto& entry : req.entries) {
        if (entry.partition >=
            static_cast<std::uint32_t>(state.config.partitions)) {
          continue;
        }
        follower.acked[entry.partition] =
            std::max(follower.acked[entry.partition], entry.log_end);
        RecomputeHwLocked(req.topic, state, entry.partition, &pending);
        resp->entries.push_back(net::ReplicaAckResponse::Entry{
            entry.partition, state.hw[entry.partition]});
      }
    }
  }
  pending.Fire(broker_);
  return status;
}

Status ReplicationManager::HandlePromoteLeader(
    const net::PromoteLeaderRequest& req, net::PromoteLeaderResponse* resp) {
  STRATA_FAILPOINT("repl.promote.recv");
  PendingWakeups pending;
  Status status = Status::Ok();
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(req.topic);
    if (it == topics_.end()) {
      status = Status::NotFound("topic " + req.topic + " not replicated");
    } else {
      TopicState& state = it->second;
      if (req.epoch < state.epoch ||
          (req.epoch == state.epoch && req.leader != state.leader)) {
        status = Status::InvalidArgument(
            "stale promote: epoch " + std::to_string(req.epoch) +
            " leader " + std::to_string(req.leader) + " vs local epoch " +
            std::to_string(state.epoch) + " leader " +
            std::to_string(state.leader));
      } else {
        if (req.epoch > state.epoch) {
          const bool was_leader = state.leader == options_.self.id;
          LOG_INFO << "repl: adopting leader " << req.leader << " for "
                   << req.topic << " at epoch " << req.epoch
                   << " (was: " << state.leader << "@" << state.epoch << ")";
          state.leader = req.leader;
          state.epoch = req.epoch;
          state.followers.clear();
          state.last_leader_contact = Clock::now();
          for (const auto& entry : req.entries) {
            if (entry.partition >=
                static_cast<std::uint32_t>(state.config.partitions)) {
              continue;
            }
            state.leader_end[entry.partition] = entry.log_end;
            auto log = broker_->GetLog(req.topic,
                                       static_cast<int>(entry.partition));
            if (!log.ok()) continue;
            const std::int64_t local = (*log)->EndOffset();
            // Our tail past the new leader's end was never committed
            // (hw <= leader end when elections are safe): drop it so the
            // copy stays contiguous with the new leader's numbering. Never
            // cut below our own high watermark though — records at/below
            // it are quorum-acked and possibly consumed; a winner that
            // lacks them must not be able to undo the durability contract.
            const std::int64_t floor =
                std::max(entry.log_end, state.hw[entry.partition]);
            if (local > floor) {
              LOG_WARN << "repl: truncating " << req.topic << "/"
                       << entry.partition << " from " << local << " to "
                       << floor << " (uncommitted tail of epoch "
                       << state.epoch - 1 << ")";
              if (truncations_ != nullptr) truncations_->Inc();
              if (Status trunc = (*log)->TruncateTo(floor); !trunc.ok()) {
                LOG_ERROR << "repl: truncate failed: " << trunc.ToString();
              }
            }
          }
          if (was_leader) {
            FailTopicWaitersLocked(
                req.topic,
                Status::NotLeader("leadership moved to broker " +
                                  std::to_string(req.leader)),
                &pending);
          }
        }
        // Equal epoch + same leader: idempotent re-announce.
        for (const auto& entry : req.entries) {
          if (entry.partition >=
              static_cast<std::uint32_t>(state.config.partitions)) {
            continue;
          }
          resp->entries.push_back(net::PromoteLeaderResponse::Entry{
              entry.partition,
              LocalEnd(req.topic, entry.partition)});
        }
      }
    }
  }
  pending.Fire(broker_);
  return status;
}

Status ReplicationManager::HandleClusterMeta(
    const net::ClusterMetaRequest& req, net::ClusterMetaResponse* resp) {
  resp->self = options_.self.id;
  for (const BrokerEndpoint& broker : options_.brokers) {
    resp->brokers.push_back(
        net::ClusterMetaResponse::BrokerInfo{broker.id, broker.host,
                                             broker.port});
  }
  const auto now = Clock::now();
  std::lock_guard lock(mu_);
  for (const auto& [name, state] : topics_) {
    if (!req.topic.empty() && req.topic != name) continue;
    net::ClusterMetaResponse::Topic topic;
    topic.topic = name;
    topic.leader = state.leader;
    topic.epoch = state.epoch;
    if (state.leader == options_.self.id) {
      topic.isr = IsrOf(state, options_.self.id, options_.isr_timeout, now);
    }
    const auto partitions = static_cast<std::size_t>(state.config.partitions);
    for (std::size_t p = 0; p < partitions; ++p) {
      topic.partitions.push_back(net::ClusterMetaResponse::Partition{
          LocalEnd(name, static_cast<std::uint32_t>(p)), state.hw[p]});
    }
    resp->topics.push_back(std::move(topic));
  }
  return Status::Ok();
}

// --- follower loop ----------------------------------------------------------

net::ClientConnection* ReplicationManager::Peer(std::uint32_t id) {
  if (const auto it = peers_.find(id); it != peers_.end()) {
    return it->second.get();
  }
  for (const BrokerEndpoint& broker : options_.brokers) {
    if (broker.id != id) continue;
    net::RemoteOptions remote;
    remote.host = broker.host;
    remote.port = broker.port;
    remote.connect_timeout = options_.peer_connect_timeout;
    remote.request_timeout = options_.peer_request_timeout;
    remote.max_retries = 0;  // the fetch loop is its own retry machinery
    auto [it, inserted] = peers_.emplace(
        id, std::make_unique<net::ClientConnection>(std::move(remote)));
    return it->second.get();
  }
  return nullptr;
}

void ReplicationManager::Run() {
  while (true) {
    {
      std::unique_lock lock(stop_mu_);
      if (stop_cv_.wait_for(lock, options_.fetch_interval,
                            [this] { return stop_; })) {
        return;
      }
    }
    // Snapshot the follower work under the lock, RPC outside it. Led topics
    // get a watermark recompute instead: local appends (acks=leader, or a
    // quorum of one) advance the hw on this tick rather than waiting for
    // follower traffic that may never come.
    std::vector<std::pair<std::string, std::uint32_t>> to_fetch;
    PendingWakeups tick_pending;
    {
      std::lock_guard lock(mu_);
      for (auto& [name, state] : topics_) {
        if (state.leader != options_.self.id) {
          to_fetch.emplace_back(name, state.leader);
          continue;
        }
        for (int p = 0; p < state.config.partitions; ++p) {
          RecomputeHwLocked(name, state, static_cast<std::uint32_t>(p),
                            &tick_pending);
        }
      }
    }
    tick_pending.Fire(broker_);
    const TraceContext trace = obs::Tracer::Instance().MaybeStartTrace();
    obs::SpanScope span;
    if (trace.sampled()) {
      span = obs::SpanScope("repl.fetch", "repl", trace,
                            static_cast<std::uint64_t>(to_fetch.size()));
    }
    for (const auto& [topic, leader] : to_fetch) {
      const bool contacted = FetchRound(topic, leader);
      bool overdue = false;
      {
        std::lock_guard lock(mu_);
        const auto it = topics_.find(topic);
        if (it == topics_.end() || it->second.leader == options_.self.id) {
          continue;  // promoted (or re-pointed) while we were fetching
        }
        if (contacted) {
          it->second.last_leader_contact = Clock::now();
        } else {
          overdue = Clock::now() - it->second.last_leader_contact >
                    options_.leader_timeout;
        }
      }
      if (overdue) RunElection(topic);
    }
  }
}

bool ReplicationManager::FetchRound(const std::string& topic,
                                    std::uint32_t leader) {
  net::ClientConnection* conn = Peer(leader);
  if (conn == nullptr) return false;
  if (fetch_rounds_ != nullptr) fetch_rounds_->Inc();

  net::ReplicaFetchRequest req;
  req.follower = options_.self.id;
  req.topic = topic;
  int partitions = 0;
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end()) return true;
    req.epoch = it->second.epoch;
    partitions = it->second.config.partitions;
  }
  for (int p = 0; p < partitions; ++p) {
    net::ReplicaFetchRequest::Entry entry;
    entry.partition = static_cast<std::uint32_t>(p);
    entry.offset = LocalEnd(topic, static_cast<std::uint32_t>(p));
    entry.max_records = options_.max_fetch_records;
    req.entries.push_back(entry);
  }

  std::string body;
  net::EncodeReplicaFetchRequest(req, &body);
  std::string response;
  if (Status call = conn->Call(net::ApiKey::kReplicaFetch, body, &response,
                               {}, /*retry=*/false);
      !call.ok()) {
    // A live peer that answers NotLeader (deposed, or ahead of us) is not a
    // heartbeat: without contact the election timer keeps aging, which is
    // exactly right — the metadata sweep will find the real leader.
    if (!IsServerError(call)) conn->Disconnect();
    return false;
  }
  net::ReplicaFetchResponse resp;
  if (!net::DecodeReplicaFetchResponse(response, &resp).ok()) return false;

  // A response carrying a newer epoch means the leader was (re-)promoted
  // while we fetched with a stale one — it answers such fetches with an
  // epoch-only response (no records, no ack credit). Adopt the epoch and
  // drop our uncommitted tail before fetching again: records above the hw
  // may have diverged during the missed leadership interval.
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end()) return true;
    TopicState& state = it->second;
    if (resp.epoch > state.epoch) {
      if (resp.leader == leader && state.leader == leader) {
        LOG_INFO << "repl: " << topic << " adopting epoch " << resp.epoch
                 << " from leader " << leader << " (was epoch " << state.epoch
                 << ")";
        state.epoch = resp.epoch;
        state.last_leader_contact = Clock::now();
        TruncateUncommittedLocked(topic, state);
      }
      return true;  // refetch from the truncated ends next round
    }
  }

  // Append outside mu_: only this thread appends to topics we do not lead
  // (CheckProduce rejects client produces on followers), and holding the
  // manager lock across disk appends would stall the reactor's hooks.
  struct Applied {
    std::uint32_t partition;
    std::int64_t leader_end;
    std::int64_t leader_hw;
    std::int64_t local_end;
    bool stalled = false;
    std::int64_t leader_start = 0;
  };
  std::vector<Applied> applied;
  std::uint64_t replicated = 0;
  for (const auto& entry : resp.entries) {
    auto log = broker_->GetLog(topic, static_cast<int>(entry.partition));
    if (!log.ok()) continue;
    std::int64_t local = (*log)->EndOffset();
    if (entry.base_offset != local) {
      // The leader cannot serve contiguously from our end: its retention
      // horizon moved past it (base_offset > local, whether or not records
      // came back), or a concurrent promotion truncated us mid-round.
      // Apply nothing; the stalled-flag transition is logged and surfaced
      // under mu_ below so the condition is visible even when the leader
      // answers with an empty batch every round.
      Applied gap{entry.partition, entry.log_end, entry.high_watermark,
                  local};
      gap.stalled = entry.base_offset > local;
      gap.leader_start = entry.base_offset;
      applied.push_back(gap);
      continue;
    }
    bool append_failed = false;
    for (const ps::Record& record : entry.records) {
      if (Status fp = fault::Evaluate("repl.follower.append"); !fp.ok()) {
        LOG_WARN << "repl: injected follower append fault: " << fp.ToString();
        append_failed = true;
        break;
      }
      auto offset = (*log)->Append(record);
      if (!offset.ok()) {
        LOG_WARN << "repl: follower append failed on " << topic << "/"
                 << entry.partition << ": " << offset.status().ToString();
        append_failed = true;
        break;
      }
      local = *offset + 1;
      ++replicated;
    }
    applied.push_back(
        Applied{entry.partition, entry.log_end, entry.high_watermark, local});
    if (append_failed) break;
  }
  if (records_replicated_ != nullptr && replicated > 0) {
    records_replicated_->Inc(replicated);
  }

  net::ReplicaAckRequest ack;
  ack.follower = options_.self.id;
  ack.epoch = resp.epoch;
  ack.topic = topic;
  PendingWakeups pending;
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end()) return true;
    TopicState& state = it->second;
    for (const Applied& a : applied) {
      const auto p = static_cast<std::size_t>(a.partition);
      if (p >= state.hw.size()) continue;
      state.leader_end[p] = a.leader_end;
      if (p < state.stalled.size() && state.stalled[p] != a.stalled) {
        state.stalled[p] = a.stalled;
        if (a.stalled) {
          LOG_WARN << "repl: " << topic << "/" << a.partition
                   << " stalled: leader log starts at " << a.leader_start
                   << " but local end is " << a.local_end
                   << " (retention outran replication)";
        } else {
          LOG_INFO << "repl: " << topic << "/" << a.partition
                   << " replication resumed (gap closed)";
        }
      }
      // Never expose past what we physically hold.
      const std::int64_t hw = std::min(a.leader_hw, a.local_end);
      if (hw > state.hw[p]) {
        state.hw[p] = hw;
        pending.advanced.push_back(
            ps::TopicPartition{topic, static_cast<int>(a.partition)});
      }
      ack.entries.push_back(
          net::ReplicaAckRequest::Entry{a.partition, a.local_end});
    }
  }
  pending.Fire(broker_);

  if (ack.entries.empty()) return true;
  body.clear();
  net::EncodeReplicaAckRequest(ack, &body);
  if (!conn->Call(net::ApiKey::kReplicaAck, body, &response, {},
                  /*retry=*/false)
           .ok()) {
    return true;
  }
  net::ReplicaAckResponse ack_resp;
  if (!net::DecodeReplicaAckResponse(response, &ack_resp).ok()) return true;
  // The ack answer can carry a fresher hw than the fetch did (our own ack
  // may have completed the quorum); collected into its own PendingWakeups
  // so the wakeups fired above never fire twice.
  PendingWakeups ack_pending;
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it != topics_.end()) {
      TopicState& state = it->second;
      for (const auto& entry : ack_resp.entries) {
        const auto p = static_cast<std::size_t>(entry.partition);
        if (p >= state.hw.size()) continue;
        const std::int64_t hw = std::min(entry.high_watermark,
                                         LocalEnd(topic, entry.partition));
        if (hw > state.hw[p]) {
          state.hw[p] = hw;
          ack_pending.advanced.push_back(
              ps::TopicPartition{topic, static_cast<int>(entry.partition)});
        }
      }
    }
  }
  ack_pending.Fire(broker_);
  return true;
}

void ReplicationManager::RunElection(const std::string& topic) {
  if (elections_ != nullptr) elections_->Inc();

  net::ClusterMetaRequest req;
  req.topic = topic;
  std::string body;
  net::EncodeClusterMetaRequest(req, &body);

  struct PeerView {
    std::uint32_t id = 0;
    bool has_topic = false;
    std::uint32_t leader = 0;
    std::uint64_t epoch = 0;
    std::vector<std::int64_t> ends;  // per-partition log ends
    std::vector<std::int64_t> hw;    // per-partition high watermarks
  };
  std::vector<PeerView> reachable;
  for (const BrokerEndpoint& broker : options_.brokers) {
    if (broker.id == options_.self.id) continue;
    net::ClientConnection* conn = Peer(broker.id);
    if (conn == nullptr) continue;
    std::string response;
    if (Status call = conn->Call(net::ApiKey::kClusterMeta, body, &response,
                                 {}, /*retry=*/false);
        !call.ok()) {
      if (!IsServerError(call)) conn->Disconnect();
      continue;
    }
    net::ClusterMetaResponse meta;
    if (!net::DecodeClusterMetaResponse(response, &meta).ok()) continue;
    PeerView view;
    view.id = broker.id;
    for (const auto& t : meta.topics) {
      if (t.topic != topic) continue;
      view.has_topic = true;
      view.leader = t.leader;
      view.epoch = t.epoch;
      for (const auto& partition : t.partitions) {
        view.ends.push_back(partition.log_end);
        view.hw.push_back(partition.high_watermark);
      }
    }
    reachable.push_back(view);
  }

  std::uint64_t my_epoch = 0;
  std::uint32_t old_leader = 0;
  std::vector<std::int64_t> my_ends;
  std::vector<std::int64_t> my_hw;
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end() || it->second.leader == options_.self.id) return;
    my_epoch = it->second.epoch;
    old_leader = it->second.leader;
    my_hw = it->second.hw;
    for (int p = 0; p < it->second.config.partitions; ++p) {
      my_ends.push_back(LocalEnd(topic, static_cast<std::uint32_t>(p)));
    }
  }

  // Someone already moved on: adopt the newest leadership we can see.
  std::uint64_t max_epoch = my_epoch;
  const PeerView* newer = nullptr;
  for (const PeerView& view : reachable) {
    if (!view.has_topic) continue;
    max_epoch = std::max(max_epoch, view.epoch);
    if (view.epoch > my_epoch && (newer == nullptr ||
                                  view.epoch > newer->epoch)) {
      newer = &view;
    }
  }
  if (newer != nullptr && newer->leader != old_leader) {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it != topics_.end() && newer->epoch > it->second.epoch) {
      LOG_INFO << "repl: " << topic << " adopting leader " << newer->leader
               << " at epoch " << newer->epoch << " from peer " << newer->id;
      it->second.leader = newer->leader;
      it->second.epoch = newer->epoch;
      it->second.followers.clear();
      it->second.last_leader_contact = Clock::now();
      // We missed the (one-shot) PromoteLeader announcement, so no
      // truncation bound arrived with the news: drop our uncommitted tail
      // here, or the fetch loop would append the new leader's records
      // after diverged ones and the divergence would become permanent.
      TruncateUncommittedLocked(topic, it->second);
    }
    return;
  }

  // A reachable peer still believes the old leader at our epoch — and if
  // the old leader itself answered, it is alive and we just hit a blip.
  for (const PeerView& view : reachable) {
    if (view.id == old_leader) {
      std::lock_guard lock(mu_);
      const auto it = topics_.find(topic);
      if (it != topics_.end()) {
        it->second.last_leader_contact = Clock::now();
      }
      return;
    }
  }

  // Split-brain guard: only elect with a strict majority of the cluster
  // reachable (self included). A minority partition must stall, not fork.
  if (reachable.size() + 1 < quorum()) {
    LOG_WARN << "repl: " << topic << " election blocked: only "
             << reachable.size() + 1 << "/" << options_.brokers.size()
             << " brokers reachable (need " << quorum() << ")";
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it != topics_.end()) {
      it->second.last_leader_contact = Clock::now();  // back off, retry later
    }
    return;
  }

  // Committed floor: the highest high watermark any participant reports,
  // per partition. The hw is only ever advanced by a real quorum, so a
  // safe winner must hold every partition at least to this floor — electing
  // on a total-records score alone could crown a candidate that is ahead
  // overall yet behind the committed offset on one partition, and its
  // promotion would truncate quorum-acked records on a more-caught-up
  // survivor.
  const std::size_t partitions = my_ends.size();
  std::vector<std::int64_t> floor = my_hw;
  floor.resize(partitions, 0);
  for (const PeerView& view : reachable) {
    if (!view.has_topic) continue;
    for (std::size_t p = 0; p < partitions && p < view.hw.size(); ++p) {
      floor[p] = std::max(floor[p], view.hw[p]);
    }
  }
  const auto eligible = [&](const std::vector<std::int64_t>& ends) {
    for (std::size_t p = 0; p < partitions; ++p) {
      if ((p < ends.size() ? ends[p] : 0) < floor[p]) return false;
    }
    return true;
  };
  const auto total = [](const std::vector<std::int64_t>& ends) {
    std::int64_t sum = 0;
    for (const std::int64_t end : ends) sum += end;
    return sum;
  };

  // Deterministic winner among the eligible: most total log, ties to the
  // lowest broker id.
  bool found = false;
  std::uint32_t winner = 0;
  std::int64_t winner_total = 0;
  const auto consider = [&](std::uint32_t id, std::int64_t candidate_total) {
    if (!found || candidate_total > winner_total ||
        (candidate_total == winner_total && id < winner)) {
      found = true;
      winner = id;
      winner_total = candidate_total;
    }
  };
  if (eligible(my_ends)) consider(options_.self.id, total(my_ends));
  for (const PeerView& view : reachable) {
    if (view.has_topic && eligible(view.ends)) consider(view.id,
                                                        total(view.ends));
  }
  if (!found || winner != options_.self.id) {
    if (!found) {
      LOG_WARN << "repl: " << topic << " election blocked: no reachable "
               << "candidate covers the committed floor on every partition";
    } else {
      LOG_INFO << "repl: " << topic << " election defers to broker " << winner
               << " (" << winner_total << " >= " << total(my_ends)
               << " records)";
    }
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it != topics_.end()) {
      it->second.last_leader_contact = Clock::now();  // back off, retry later
    }
    return;
  }
  PromoteSelf(topic, max_epoch + 1);
}

void ReplicationManager::PromoteSelf(const std::string& topic,
                                     std::uint64_t epoch) {
  if (promotions_ != nullptr) promotions_->Inc();
  net::PromoteLeaderRequest req;
  req.leader = options_.self.id;
  req.epoch = epoch;
  req.topic = topic;
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end() || it->second.epoch >= epoch) return;
    TopicState& state = it->second;
    LOG_INFO << "repl: broker " << options_.self.id << " promoting itself to "
             << topic << " leader at epoch " << epoch;
    state.leader = options_.self.id;
    state.epoch = epoch;
    state.followers.clear();
    state.last_leader_contact = Clock::now();
    for (int p = 0; p < state.config.partitions; ++p) {
      req.entries.push_back(net::PromoteLeaderRequest::Entry{
          static_cast<std::uint32_t>(p),
          LocalEnd(topic, static_cast<std::uint32_t>(p))});
    }
  }

  std::string body;
  net::EncodePromoteLeaderRequest(req, &body);
  for (const BrokerEndpoint& broker : options_.brokers) {
    if (broker.id == options_.self.id) continue;
    net::ClientConnection* conn = Peer(broker.id);
    if (conn == nullptr) continue;
    std::string response;
    if (Status call = conn->Call(net::ApiKey::kPromoteLeader, body, &response,
                                 {}, /*retry=*/false);
        !call.ok()) {
      if (!IsServerError(call)) conn->Disconnect();
      LOG_WARN << "repl: promote announce to broker " << broker.id
               << " failed: " << call.ToString();
      continue;
    }
    net::PromoteLeaderResponse resp;
    if (!net::DecodePromoteLeaderResponse(response, &resp).ok()) continue;
    // The peer's post-truncation ends are records it already holds: count
    // them as acks so the high watermark (and any parked quorum produce)
    // does not have to wait a full fetch round.
    PendingWakeups pending;
    {
      std::lock_guard lock(mu_);
      const auto it = topics_.find(topic);
      if (it == topics_.end() || it->second.leader != options_.self.id ||
          it->second.epoch != epoch) {
        return;  // deposed already
      }
      TopicState& state = it->second;
      Follower& follower = state.followers[broker.id];
      follower.acked.resize(
          static_cast<std::size_t>(state.config.partitions), 0);
      follower.last_contact = Clock::now();
      for (const auto& entry : resp.entries) {
        if (entry.partition >=
            static_cast<std::uint32_t>(state.config.partitions)) {
          continue;
        }
        follower.acked[entry.partition] =
            std::max(follower.acked[entry.partition], entry.log_end);
        RecomputeHwLocked(topic, state, entry.partition, &pending);
      }
    }
    pending.Fire(broker_);
  }
}

}  // namespace strata::repl
