// ReplicationManager: leader-based replication of a broker's partition
// logs across a fixed replica set (the tentpole of the repl subsystem; see
// DESIGN.md "Replication & failover").
//
// One manager runs next to each broker. It wears two hats:
//
//   * net::ReplicationHooks for the local BrokerServer — gates produces on
//     leadership (NotLeader re-routes clients), clamps consumer-visible
//     offsets to the quorum-committed high watermark, parks acks=quorum
//     produces on commit waiters, and serves the v4 replication api keys
//     (ReplicaFetch / ReplicaAck / PromoteLeader / ClusterMeta).
//   * an active follower — a background thread pull-replicates every topic
//     this broker does not lead: fetch from the leader at the local log
//     end (the fetch offset is an implicit cumulative ack and the
//     heartbeat), append locally, then explicitly ack so the leader's high
//     watermark advances without waiting a round.
//
// Commit rule (Kafka-style): the high watermark of a partition is the
// quorum-th largest log end among {leader local end} ∪ {follower acked
// ends}, monotonically non-decreasing. A record at offset o is committed
// iff hw > o; consumers never see past the hw, so an uncommitted tail on a
// deposed leader can be truncated away without un-reading anything.
//
// Failover: a follower that cannot reach the leader for leader_timeout
// queries the surviving peers' ClusterMeta. If a quorum of the cluster is
// reachable (split-brain guard) and this broker is the best *eligible*
// candidate, it bumps the epoch, promotes itself, and broadcasts
// PromoteLeader; receivers with longer logs truncate to the new leader's
// ends (never below their own high watermark). Eligibility is per
// partition: a candidate must hold every partition at least to the
// committed floor — the highest high watermark any reachable participant
// reports — so promotion can never truncate quorum-committed records on a
// more-caught-up survivor; among the eligible, most total log wins, ties
// to the lowest id. Epochs are monotonic — stale leaders are refused, and
// a replica that adopts a newer epoch without the PromoteLeader
// announcement in hand (ClusterMeta, or a fetch response carrying a newer
// epoch) first drops its own uncommitted tail: it is the only part of the
// log that can have diverged.
//
// Threading: hook methods run on the server's reactor threads and only
// touch state under mu_ (never block, never RPC). The repl thread owns the
// peer connections exclusively. Commit-waiter callbacks and broker
// notifications always fire *outside* mu_.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/remote.hpp"
#include "net/repl_hooks.hpp"
#include "pubsub/broker.hpp"
#include "repl/cluster.hpp"

namespace strata::repl {

class ReplicationManager final : public net::ReplicationHooks {
 public:
  /// `broker` must outlive the manager. Wire the manager into the broker's
  /// server via BrokerServerOptions::repl, then Start() it.
  ReplicationManager(ps::Broker* broker, ReplicaOptions options);
  ~ReplicationManager() override;
  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  /// Start the follower fetch / failure-detection thread.
  [[nodiscard]] Status Start();
  /// Stop the thread and fail every pending commit waiter with Closed.
  /// Idempotent; called by the destructor.
  void Stop();

  /// Put `topic` under replication with `leader` as its initial leader
  /// (epoch 1). Creates the topic on the local broker. Every broker of the
  /// cluster must call this with the same arguments — topic placement is
  /// static configuration, only leadership moves at runtime.
  [[nodiscard]] Status AddTopic(const std::string& topic,
                                const ps::TopicConfig& config,
                                std::uint32_t leader);

  [[nodiscard]] bool IsLeader(const std::string& topic) const;
  /// NotFound for unmanaged topics.
  [[nodiscard]] Result<TopicView> View(const std::string& topic) const;
  [[nodiscard]] std::vector<TopicView> ViewAll() const;
  /// JSON fragment for /healthz (Strata::SetHealthzAugmenter): broker id
  /// plus per-topic leadership, epoch, and per-partition replication lag.
  [[nodiscard]] std::string HealthJson() const;

  [[nodiscard]] std::uint32_t self_id() const noexcept {
    return options_.self.id;
  }

  // --- net::ReplicationHooks -----------------------------------------------
  [[nodiscard]] bool ManagesTopic(const std::string& topic) const override;
  [[nodiscard]] Status CheckProduce(const std::string& topic) const override;
  [[nodiscard]] std::int64_t VisibleEnd(const ps::TopicPartition& tp,
                                        std::int64_t log_end) const override;
  [[nodiscard]] std::uint64_t AddCommitWaiter(
      const ps::TopicPartition& tp, std::int64_t offset,
      std::function<void(Status)> done) override;
  void CancelCommitWaiter(std::uint64_t id) override;
  [[nodiscard]] Status HandleReplicaFetch(
      const net::ReplicaFetchRequest& req,
      net::ReplicaFetchResponse* resp) override;
  [[nodiscard]] Status HandleReplicaAck(
      const net::ReplicaAckRequest& req,
      net::ReplicaAckResponse* resp) override;
  [[nodiscard]] Status HandlePromoteLeader(
      const net::PromoteLeaderRequest& req,
      net::PromoteLeaderResponse* resp) override;
  [[nodiscard]] Status HandleClusterMeta(
      const net::ClusterMetaRequest& req,
      net::ClusterMetaResponse* resp) override;

 private:
  using Clock = std::chrono::steady_clock;

  /// Leader-side view of one follower.
  struct Follower {
    /// Per-partition acked log ends (fetch offsets and explicit acks).
    std::vector<std::int64_t> acked;
    Clock::time_point last_contact{};
  };

  struct TopicState {
    ps::TopicConfig config;
    std::uint32_t leader = 0;
    std::uint64_t epoch = 1;
    /// Per-partition quorum-committed high watermark (monotone).
    std::vector<std::int64_t> hw;
    /// Follower side: the leader's log end last reported per partition
    /// (drives the lag view while not leading).
    std::vector<std::int64_t> leader_end;
    /// Follower side: per-partition retention-gap flag (the leader's log
    /// starts past our end; see TopicView::Partition::stalled).
    std::vector<bool> stalled;
    /// Leader side only.
    std::map<std::uint32_t, Follower> followers;
    /// Follower side: last successful contact with the leader; elections
    /// start when it ages past leader_timeout.
    Clock::time_point last_leader_contact{};
  };

  struct CommitWaiter {
    std::string topic;
    std::uint32_t partition = 0;
    std::int64_t offset = 0;
    std::function<void(Status)> done;
  };

  /// Deferred side effects collected under mu_, fired after unlock.
  struct PendingWakeups {
    std::vector<std::pair<std::function<void(Status)>, Status>> callbacks;
    std::vector<ps::TopicPartition> advanced;  // hw moved: wake consumers
    void Fire(ps::Broker* broker);
  };

  /// REQUIRES mu_. Recompute the partition's high watermark from the local
  /// end and the followers' acked ends; on advance, collect newly committed
  /// waiters and the consumer wake-up into `pending`.
  void RecomputeHwLocked(const std::string& topic, TopicState& state,
                         std::uint32_t partition, PendingWakeups* pending);
  /// REQUIRES mu_. Fail (and drop) every waiter of `topic` with `status` —
  /// leadership moved or the manager is stopping.
  void FailTopicWaitersLocked(const std::string& topic, const Status& status,
                              PendingWakeups* pending);
  /// REQUIRES mu_. Drop every partition's tail above the quorum-committed
  /// high watermark. Used when adopting a newer leader/epoch without a
  /// PromoteLeader announcement in hand: the uncommitted tail may have
  /// diverged during the missed leadership interval, while everything
  /// at/below the hw is identical on whichever replica won.
  void TruncateUncommittedLocked(const std::string& topic, TopicState& state);
  [[nodiscard]] std::int64_t LocalEnd(const std::string& topic,
                                      std::uint32_t partition) const;
  [[nodiscard]] std::size_t quorum() const noexcept {
    return options_.brokers.size() / 2 + 1;
  }

  /// Repl thread body: fetch rounds, failure detection, elections.
  void Run();
  /// One fetch + ack round against `leader` for `topic`. Returns false on
  /// transport failure (feeds the election timer).
  bool FetchRound(const std::string& topic, std::uint32_t leader);
  /// Leader unreachable past leader_timeout: query the survivors and either
  /// adopt a newer leader or promote self (quorum-guarded).
  void RunElection(const std::string& topic);
  /// Become leader at `epoch` and broadcast PromoteLeader to the peers.
  void PromoteSelf(const std::string& topic, std::uint64_t epoch);
  [[nodiscard]] net::ClientConnection* Peer(std::uint32_t id);

  ps::Broker* broker_;
  ReplicaOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, TopicState> topics_;
  std::map<std::uint64_t, CommitWaiter> waiters_;
  std::uint64_t next_waiter_ = 1;

  /// Peer connections, repl thread only (hook methods never RPC).
  std::map<std::uint32_t, std::unique_ptr<net::ClientConnection>> peers_;

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool started_ = false;

  obs::Counter* fetch_rounds_ = nullptr;
  obs::Counter* records_replicated_ = nullptr;
  obs::Counter* elections_ = nullptr;
  obs::Counter* promotions_ = nullptr;
  obs::Counter* truncations_ = nullptr;
  obs::MetricsRegistry::CallbackId metrics_callback_ = 0;
};

}  // namespace strata::repl
