// Cluster topology types for strata::repl (see DESIGN.md, "Replication &
// failover").
//
// A replicated cluster is a fixed, symmetric set of brokers, each running a
// ps::Broker + net::BrokerServer + repl::ReplicationManager. Leadership is
// per *topic*: one broker leads every partition of a topic (the broker, not
// the client, picks partitions on produce, so finer-grained leadership
// would buy nothing), the others pull-replicate its partition logs.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace strata::repl {

/// One broker of the replica set. Ids must be unique and stable across the
/// cluster (they break election ties, lowest id wins).
struct BrokerEndpoint {
  std::uint32_t id = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ReplicaOptions {
  /// This broker's identity. Must also appear in `brokers`.
  BrokerEndpoint self;
  /// The full replica set, self included. The commit quorum is a strict
  /// majority of this list (size/2 + 1), so a 3-broker cluster commits on 2
  /// copies and survives one failure.
  std::vector<BrokerEndpoint> brokers;

  /// Pause between follower fetch rounds. Fetches double as heartbeats to
  /// the leader, so this also bounds failure-detection granularity.
  std::chrono::microseconds fetch_interval = std::chrono::milliseconds(2);
  /// A follower that cannot reach the leader for this long starts an
  /// election. Must comfortably exceed fetch_interval plus peer timeouts.
  std::chrono::microseconds leader_timeout = std::chrono::milliseconds(300);
  /// A follower whose last fetch/ack is older than this drops out of the
  /// leader's in-sync replica set (reported via ClusterMeta and /healthz;
  /// the commit quorum itself is positional and unaffected).
  std::chrono::microseconds isr_timeout = std::chrono::milliseconds(250);
  /// Records per partition per fetch round.
  std::uint64_t max_fetch_records = 512;

  /// Transport budget for one peer RPC (fetch, ack, promote, meta probe).
  /// Deliberately tight: a dead peer must not stall the whole fetch round.
  std::chrono::microseconds peer_connect_timeout =
      std::chrono::milliseconds(250);
  std::chrono::microseconds peer_request_timeout = std::chrono::seconds(1);

  /// Optional registry for repl.* metrics (fetch rounds, replicated
  /// records, elections, plus per-topic hw/lag/epoch/leader gauges).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Point-in-time view of one replicated topic on one broker (tests and
/// /healthz; the wire equivalent is ClusterMetaResponse::Topic).
struct TopicView {
  std::string topic;
  std::uint32_t leader = 0;
  std::uint64_t epoch = 0;
  bool is_leader = false;
  struct Partition {
    std::int64_t log_end = 0;
    std::int64_t high_watermark = 0;
    /// Replication lag: on the leader, the most-behind follower's distance
    /// from the local end; on a follower, the local distance from the
    /// leader's last reported end.
    std::int64_t lag = 0;
    /// Follower only: the leader's retention horizon moved past our log end,
    /// so the copy can no longer be extended contiguously. Sticky until the
    /// gap closes (leadership moves, or the log is rebuilt); surfaced in
    /// /healthz so an operator sees the sick follower before failover fires.
    bool stalled = false;
  };
  std::vector<Partition> partitions;
  /// Leader only: brokers whose last fetch/ack is within isr_timeout (self
  /// included). Empty on followers.
  std::vector<std::uint32_t> isr;
};

}  // namespace strata::repl
