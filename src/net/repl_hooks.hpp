// Server-side replication hooks (implemented by repl::ReplicationManager).
//
// strata::repl sits above strata::net — it drives ClientConnections to peer
// brokers — yet the BrokerServer must dispatch the v4 replication api keys
// and gate produces/fetches on replication state. This abstract interface
// breaks that cycle: the server calls through it, repl implements it, and a
// server started without hooks (BrokerServerOptions::repl == nullptr)
// behaves exactly like a pre-repl broker.
//
// Threading: every method may be called concurrently from reactor threads.
// Implementations must not block (the reactor serves all connections) and
// must not call back into the invoking ServerConnection; asynchronous
// completion goes through the callback given to AddCommitWaiter, which may
// fire on any thread (including inline, before AddCommitWaiter returns).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.hpp"
#include "net/protocol.hpp"
#include "pubsub/record.hpp"

namespace strata::net {

class ReplicationHooks {
 public:
  virtual ~ReplicationHooks() = default;

  /// True when `topic` is under replication management on this broker.
  [[nodiscard]] virtual bool ManagesTopic(const std::string& topic) const = 0;

  /// Gate a client produce: Ok when this broker leads `topic` (or does not
  /// manage it), NotLeader otherwise. The message names the current leader
  /// id so clients can log something actionable before refreshing metadata.
  [[nodiscard]] virtual Status CheckProduce(const std::string& topic) const = 0;

  /// Clamp a consumer-visible log end to the quorum-committed high
  /// watermark. `log_end` is the partition's local end; unmanaged topics
  /// pass through unchanged.
  [[nodiscard]] virtual std::int64_t VisibleEnd(const ps::TopicPartition& tp,
                                               std::int64_t log_end) const = 0;

  /// Register interest in `tp` reaching a high watermark > `offset` (i.e.
  /// the record appended at `offset` becoming quorum-committed). `done` is
  /// invoked exactly once — with Ok on commit, NotLeader on leadership loss,
  /// Closed on shutdown — unless the waiter is cancelled first. It may fire
  /// on any thread, inline included. Returns the waiter id for cancellation.
  [[nodiscard]] virtual std::uint64_t AddCommitWaiter(
      const ps::TopicPartition& tp, std::int64_t offset,
      std::function<void(Status)> done) = 0;

  /// Drop a pending commit waiter; a no-op when it already fired.
  virtual void CancelCommitWaiter(std::uint64_t id) = 0;

  // v4 api-key handlers, dispatched by ServerConnection.
  [[nodiscard]] virtual Status HandleReplicaFetch(
      const ReplicaFetchRequest& req, ReplicaFetchResponse* resp) = 0;
  [[nodiscard]] virtual Status HandleReplicaAck(const ReplicaAckRequest& req,
                                                ReplicaAckResponse* resp) = 0;
  [[nodiscard]] virtual Status HandlePromoteLeader(
      const PromoteLeaderRequest& req, PromoteLeaderResponse* resp) = 0;
  [[nodiscard]] virtual Status HandleClusterMeta(const ClusterMetaRequest& req,
                                                 ClusterMetaResponse* resp) = 0;
};

}  // namespace strata::net
