#include "net/protocol.hpp"

#include "common/codec.hpp"

namespace strata::net {

namespace {

constexpr std::uint32_t kMaxBatchEntries = 1u << 20;

Status Truncated(const char* what) {
  return Status::Corruption(std::string("protocol: truncated ") + what);
}

bool GetString(std::string_view* in, std::string* out) {
  std::string_view s;
  if (!codec::GetLengthPrefixed(in, &s)) return false;
  out->assign(s.data(), s.size());
  return true;
}

void PutTopicPartition(std::string* out, const ps::TopicPartition& tp) {
  codec::PutLengthPrefixed(out, tp.topic);
  codec::PutVarint32(out, static_cast<std::uint32_t>(tp.partition));
}

bool GetTopicPartition(std::string_view* in, ps::TopicPartition* tp) {
  std::uint32_t partition = 0;
  if (!GetString(in, &tp->topic) || !codec::GetVarint32(in, &partition)) {
    return false;
  }
  tp->partition = static_cast<int>(partition);
  return true;
}

Status ExpectDrained(std::string_view in) {
  if (!in.empty()) return Status::Corruption("protocol: trailing bytes");
  return Status::Ok();
}

}  // namespace

const char* ApiKeyName(ApiKey api) noexcept {
  switch (api) {
    case ApiKey::kCreateTopic:
      return "create_topic";
    case ApiKey::kMetadata:
      return "metadata";
    case ApiKey::kProduce:
      return "produce";
    case ApiKey::kFetch:
      return "fetch";
    case ApiKey::kJoinGroup:
      return "join_group";
    case ApiKey::kLeaveGroup:
      return "leave_group";
    case ApiKey::kHeartbeat:
      return "heartbeat";
    case ApiKey::kCommitOffset:
      return "commit_offset";
    case ApiKey::kOffsetFetch:
      return "offset_fetch";
    case ApiKey::kHello:
      return "hello";
    case ApiKey::kReplicaFetch:
      return "replica_fetch";
    case ApiKey::kReplicaAck:
      return "replica_ack";
    case ApiKey::kPromoteLeader:
      return "promote_leader";
    case ApiKey::kClusterMeta:
      return "cluster_meta";
  }
  return "unknown";
}

// --- envelope ---------------------------------------------------------------

void EncodeRequest(ApiKey api, std::string_view body, std::string* out) {
  out->push_back(static_cast<char>(api));
  out->append(body.data(), body.size());
}

Status DecodeRequest(std::string_view payload, ApiKey* api,
                     std::string_view* body) {
  if (payload.empty()) return Truncated("request");
  const auto key = static_cast<std::uint8_t>(payload.front());
  if (key < static_cast<std::uint8_t>(ApiKey::kCreateTopic) ||
      key > static_cast<std::uint8_t>(ApiKey::kClusterMeta)) {
    return Status::Corruption("protocol: unknown api key " +
                              std::to_string(key));
  }
  *api = static_cast<ApiKey>(key);
  *body = payload.substr(1);
  return Status::Ok();
}

void EncodeResponse(const Status& status, std::string_view body,
                    std::string* out) {
  out->push_back(static_cast<char>(status.code()));
  codec::PutLengthPrefixed(out, status.message());
  if (status.ok()) out->append(body.data(), body.size());
}

Status DecodeResponse(std::string_view payload, std::string_view* body) {
  if (payload.empty()) return Truncated("response");
  const auto code = static_cast<StatusCode>(payload.front());
  payload.remove_prefix(1);
  std::string message;
  if (!GetString(&payload, &message)) return Truncated("response message");
  if (code != StatusCode::kOk) return Status(code, std::move(message));
  *body = payload;
  return Status::Ok();
}

// --- create topic -----------------------------------------------------------

void EncodeCreateTopic(const CreateTopicRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.topic);
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.config.partitions));
  codec::PutVarint64(out, req.config.retention_records);
}

Status DecodeCreateTopic(std::string_view in, CreateTopicRequest* out) {
  std::uint32_t partitions = 0;
  std::uint64_t retention = 0;
  if (!GetString(&in, &out->topic) || !codec::GetVarint32(&in, &partitions) ||
      !codec::GetVarint64(&in, &retention)) {
    return Truncated("create_topic");
  }
  out->config.partitions = static_cast<int>(partitions);
  out->config.retention_records = retention;
  return ExpectDrained(in);
}

// --- metadata ---------------------------------------------------------------

void EncodeMetadataRequest(const MetadataRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.topic);
}

Status DecodeMetadataRequest(std::string_view in, MetadataRequest* out) {
  if (!GetString(&in, &out->topic)) return Truncated("metadata request");
  return ExpectDrained(in);
}

void EncodeMetadataResponse(const MetadataResponse& resp, std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.topics.size()));
  for (const TopicMetadata& topic : resp.topics) {
    codec::PutLengthPrefixed(out, topic.topic);
    codec::PutVarint32(out, static_cast<std::uint32_t>(topic.partitions.size()));
    for (const auto& [start, end] : topic.partitions) {
      codec::PutVarint64Signed(out, start);
      codec::PutVarint64Signed(out, end);
    }
  }
}

Status DecodeMetadataResponse(std::string_view in, MetadataResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("metadata response");
  }
  out->topics.clear();
  out->topics.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TopicMetadata topic;
    std::uint32_t parts = 0;
    if (!GetString(&in, &topic.topic) || !codec::GetVarint32(&in, &parts) ||
        parts > kMaxBatchEntries) {
      return Truncated("metadata topic");
    }
    topic.partitions.reserve(parts);
    for (std::uint32_t p = 0; p < parts; ++p) {
      std::int64_t start = 0;
      std::int64_t end = 0;
      if (!codec::GetVarint64Signed(&in, &start) ||
          !codec::GetVarint64Signed(&in, &end)) {
        return Truncated("metadata offsets");
      }
      topic.partitions.emplace_back(start, end);
    }
    out->topics.push_back(std::move(topic));
  }
  return ExpectDrained(in);
}

// --- produce ----------------------------------------------------------------

void EncodeProduceRequest(const ProduceRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.topic);
  codec::PutLengthPrefixed(out, req.record.key);
  codec::PutLengthPrefixed(out, req.record.value);
  codec::PutVarint64Signed(out, req.record.timestamp);
}

void EncodeProduceRequestV4(const ProduceRequest& req, std::string* out) {
  EncodeProduceRequest(req, out);
  out->push_back(static_cast<char>(req.acks));
}

Status DecodeProduceRequest(std::string_view in, ProduceRequest* out,
                            bool accept_acks) {
  if (!GetString(&in, &out->topic) || !GetString(&in, &out->record.key) ||
      !GetString(&in, &out->record.value) ||
      !codec::GetVarint64Signed(&in, &out->record.timestamp)) {
    return Truncated("produce request");
  }
  out->acks = ProduceAcks::kLeader;
  if (accept_acks && !in.empty()) {
    const auto acks = static_cast<std::uint8_t>(in.front());
    in.remove_prefix(1);
    if (acks > static_cast<std::uint8_t>(ProduceAcks::kQuorum)) {
      return Status::Corruption("protocol: unknown produce acks " +
                                std::to_string(acks));
    }
    out->acks = static_cast<ProduceAcks>(acks);
  }
  return ExpectDrained(in);
}

void EncodeProduceResponse(const ProduceResponse& resp, std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.partition));
  codec::PutVarint64Signed(out, resp.offset);
}

Status DecodeProduceResponse(std::string_view in, ProduceResponse* out) {
  std::uint32_t partition = 0;
  if (!codec::GetVarint32(&in, &partition) ||
      !codec::GetVarint64Signed(&in, &out->offset)) {
    return Truncated("produce response");
  }
  out->partition = static_cast<int>(partition);
  return ExpectDrained(in);
}

// --- fetch ------------------------------------------------------------------

void EncodeFetchRequest(const FetchRequest& req, std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.entries.size()));
  for (const FetchRequest::Entry& entry : req.entries) {
    PutTopicPartition(out, entry.tp);
    codec::PutVarint64Signed(out, entry.offset);
    codec::PutVarint64(out, entry.max_records);
  }
  codec::PutVarint64(out, req.max_wait_us);
}

Status DecodeFetchRequest(std::string_view in, FetchRequest* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("fetch request");
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FetchRequest::Entry entry;
    if (!GetTopicPartition(&in, &entry.tp) ||
        !codec::GetVarint64Signed(&in, &entry.offset) ||
        !codec::GetVarint64(&in, &entry.max_records)) {
      return Truncated("fetch entry");
    }
    out->entries.push_back(std::move(entry));
  }
  if (!codec::GetVarint64(&in, &out->max_wait_us)) {
    return Truncated("fetch wait");
  }
  return ExpectDrained(in);
}

void EncodeFetchResponse(const FetchResponse& resp, std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.entries.size()));
  for (const FetchResponse::Entry& entry : resp.entries) {
    PutTopicPartition(out, entry.tp);
    codec::PutVarint64Signed(out, entry.next_offset);
    codec::PutVarint32(out, static_cast<std::uint32_t>(entry.records.size()));
    for (const ps::ConsumedRecord& record : entry.records) {
      codec::PutVarint64Signed(out, record.offset);
      codec::PutLengthPrefixed(out, record.key);
      codec::PutLengthPrefixed(out, record.value);
      codec::PutVarint64Signed(out, record.timestamp);
    }
  }
}

Status DecodeFetchResponse(std::string_view in, FetchResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("fetch response");
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FetchResponse::Entry entry;
    std::uint32_t records = 0;
    if (!GetTopicPartition(&in, &entry.tp) ||
        !codec::GetVarint64Signed(&in, &entry.next_offset) ||
        !codec::GetVarint32(&in, &records) || records > kMaxBatchEntries) {
      return Truncated("fetch response entry");
    }
    entry.records.reserve(records);
    for (std::uint32_t r = 0; r < records; ++r) {
      ps::ConsumedRecord record;
      record.topic = entry.tp.topic;
      record.partition = entry.tp.partition;
      if (!codec::GetVarint64Signed(&in, &record.offset) ||
          !GetString(&in, &record.key) || !GetString(&in, &record.value) ||
          !codec::GetVarint64Signed(&in, &record.timestamp)) {
        return Truncated("fetch record");
      }
      entry.records.push_back(std::move(record));
    }
    out->entries.push_back(std::move(entry));
  }
  return ExpectDrained(in);
}

// --- groups -----------------------------------------------------------------

void EncodeGroupRequest(const GroupRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.group);
  codec::PutLengthPrefixed(out, req.topic);
  codec::PutVarint64(out, req.member);
}

Status DecodeGroupRequest(std::string_view in, GroupRequest* out) {
  if (!GetString(&in, &out->group) || !GetString(&in, &out->topic) ||
      !codec::GetVarint64(&in, &out->member)) {
    return Truncated("group request");
  }
  return ExpectDrained(in);
}

void EncodeJoinGroupResponse(const JoinGroupResponse& resp, std::string* out) {
  codec::PutVarint64(out, resp.member);
}

Status DecodeJoinGroupResponse(std::string_view in, JoinGroupResponse* out) {
  if (!codec::GetVarint64(&in, &out->member)) {
    return Truncated("join_group response");
  }
  return ExpectDrained(in);
}

void EncodeHeartbeatResponse(const HeartbeatResponse& resp, std::string* out) {
  codec::PutVarint64(out, resp.generation);
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.assignment.size()));
  for (const ps::TopicPartition& tp : resp.assignment) {
    PutTopicPartition(out, tp);
  }
}

Status DecodeHeartbeatResponse(std::string_view in, HeartbeatResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint64(&in, &out->generation) ||
      !codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("heartbeat response");
  }
  out->assignment.clear();
  out->assignment.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ps::TopicPartition tp;
    if (!GetTopicPartition(&in, &tp)) return Truncated("heartbeat assignment");
    out->assignment.push_back(std::move(tp));
  }
  return ExpectDrained(in);
}

// --- offsets ----------------------------------------------------------------

void EncodeCommitOffsetRequest(const CommitOffsetRequest& req,
                               std::string* out) {
  codec::PutLengthPrefixed(out, req.group);
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.offsets.size()));
  for (const auto& [tp, offset] : req.offsets) {
    PutTopicPartition(out, tp);
    codec::PutVarint64Signed(out, offset);
  }
}

Status DecodeCommitOffsetRequest(std::string_view in,
                                 CommitOffsetRequest* out) {
  std::uint32_t n = 0;
  if (!GetString(&in, &out->group) || !codec::GetVarint32(&in, &n) ||
      n > kMaxBatchEntries) {
    return Truncated("commit request");
  }
  out->offsets.clear();
  out->offsets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ps::TopicPartition tp;
    std::int64_t offset = 0;
    if (!GetTopicPartition(&in, &tp) ||
        !codec::GetVarint64Signed(&in, &offset)) {
      return Truncated("commit entry");
    }
    out->offsets.emplace_back(std::move(tp), offset);
  }
  return ExpectDrained(in);
}

void EncodeOffsetFetchRequest(const OffsetFetchRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.group);
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.partitions.size()));
  for (const ps::TopicPartition& tp : req.partitions) {
    PutTopicPartition(out, tp);
  }
}

Status DecodeOffsetFetchRequest(std::string_view in, OffsetFetchRequest* out) {
  std::uint32_t n = 0;
  if (!GetString(&in, &out->group) || !codec::GetVarint32(&in, &n) ||
      n > kMaxBatchEntries) {
    return Truncated("offset_fetch request");
  }
  out->partitions.clear();
  out->partitions.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ps::TopicPartition tp;
    if (!GetTopicPartition(&in, &tp)) return Truncated("offset_fetch entry");
    out->partitions.push_back(std::move(tp));
  }
  return ExpectDrained(in);
}

void EncodeOffsetFetchResponse(const OffsetFetchResponse& resp,
                               std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.offsets.size()));
  for (const std::int64_t offset : resp.offsets) {
    codec::PutVarint64Signed(out, offset);
  }
}

Status DecodeOffsetFetchResponse(std::string_view in,
                                 OffsetFetchResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("offset_fetch response");
  }
  out->offsets.clear();
  out->offsets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::int64_t offset = 0;
    if (!codec::GetVarint64Signed(&in, &offset)) {
      return Truncated("offset_fetch offset");
    }
    out->offsets.push_back(offset);
  }
  return ExpectDrained(in);
}

// --- replication (v4) -------------------------------------------------------

void EncodeReplicaFetchRequest(const ReplicaFetchRequest& req,
                               std::string* out) {
  codec::PutVarint32(out, req.follower);
  codec::PutVarint64(out, req.epoch);
  codec::PutLengthPrefixed(out, req.topic);
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.entries.size()));
  for (const ReplicaFetchRequest::Entry& entry : req.entries) {
    codec::PutVarint32(out, entry.partition);
    codec::PutVarint64Signed(out, entry.offset);
    codec::PutVarint64(out, entry.max_records);
  }
}

Status DecodeReplicaFetchRequest(std::string_view in,
                                 ReplicaFetchRequest* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &out->follower) ||
      !codec::GetVarint64(&in, &out->epoch) || !GetString(&in, &out->topic) ||
      !codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("replica_fetch request");
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ReplicaFetchRequest::Entry entry;
    if (!codec::GetVarint32(&in, &entry.partition) ||
        !codec::GetVarint64Signed(&in, &entry.offset) ||
        !codec::GetVarint64(&in, &entry.max_records)) {
      return Truncated("replica_fetch entry");
    }
    out->entries.push_back(entry);
  }
  return ExpectDrained(in);
}

void EncodeReplicaFetchResponse(const ReplicaFetchResponse& resp,
                                std::string* out) {
  codec::PutVarint32(out, resp.leader);
  codec::PutVarint64(out, resp.epoch);
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.entries.size()));
  for (const ReplicaFetchResponse::Entry& entry : resp.entries) {
    codec::PutVarint32(out, entry.partition);
    codec::PutVarint64Signed(out, entry.base_offset);
    codec::PutVarint64Signed(out, entry.high_watermark);
    codec::PutVarint64Signed(out, entry.log_end);
    codec::PutVarint32(out, static_cast<std::uint32_t>(entry.records.size()));
    for (const ps::Record& record : entry.records) {
      codec::PutLengthPrefixed(out, record.key);
      codec::PutLengthPrefixed(out, record.value);
      codec::PutVarint64Signed(out, record.timestamp);
    }
  }
}

Status DecodeReplicaFetchResponse(std::string_view in,
                                  ReplicaFetchResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &out->leader) ||
      !codec::GetVarint64(&in, &out->epoch) || !codec::GetVarint32(&in, &n) ||
      n > kMaxBatchEntries) {
    return Truncated("replica_fetch response");
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ReplicaFetchResponse::Entry entry;
    std::uint32_t records = 0;
    if (!codec::GetVarint32(&in, &entry.partition) ||
        !codec::GetVarint64Signed(&in, &entry.base_offset) ||
        !codec::GetVarint64Signed(&in, &entry.high_watermark) ||
        !codec::GetVarint64Signed(&in, &entry.log_end) ||
        !codec::GetVarint32(&in, &records) || records > kMaxBatchEntries) {
      return Truncated("replica_fetch response entry");
    }
    entry.records.reserve(records);
    for (std::uint32_t r = 0; r < records; ++r) {
      ps::Record record;
      if (!GetString(&in, &record.key) || !GetString(&in, &record.value) ||
          !codec::GetVarint64Signed(&in, &record.timestamp)) {
        return Truncated("replica_fetch record");
      }
      entry.records.push_back(std::move(record));
    }
    out->entries.push_back(std::move(entry));
  }
  return ExpectDrained(in);
}

void EncodeReplicaAckRequest(const ReplicaAckRequest& req, std::string* out) {
  codec::PutVarint32(out, req.follower);
  codec::PutVarint64(out, req.epoch);
  codec::PutLengthPrefixed(out, req.topic);
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.entries.size()));
  for (const ReplicaAckRequest::Entry& entry : req.entries) {
    codec::PutVarint32(out, entry.partition);
    codec::PutVarint64Signed(out, entry.log_end);
  }
}

Status DecodeReplicaAckRequest(std::string_view in, ReplicaAckRequest* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &out->follower) ||
      !codec::GetVarint64(&in, &out->epoch) || !GetString(&in, &out->topic) ||
      !codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("replica_ack request");
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ReplicaAckRequest::Entry entry;
    if (!codec::GetVarint32(&in, &entry.partition) ||
        !codec::GetVarint64Signed(&in, &entry.log_end)) {
      return Truncated("replica_ack entry");
    }
    out->entries.push_back(entry);
  }
  return ExpectDrained(in);
}

void EncodeReplicaAckResponse(const ReplicaAckResponse& resp,
                              std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.entries.size()));
  for (const ReplicaAckResponse::Entry& entry : resp.entries) {
    codec::PutVarint32(out, entry.partition);
    codec::PutVarint64Signed(out, entry.high_watermark);
  }
}

Status DecodeReplicaAckResponse(std::string_view in, ReplicaAckResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("replica_ack response");
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ReplicaAckResponse::Entry entry;
    if (!codec::GetVarint32(&in, &entry.partition) ||
        !codec::GetVarint64Signed(&in, &entry.high_watermark)) {
      return Truncated("replica_ack response entry");
    }
    out->entries.push_back(entry);
  }
  return ExpectDrained(in);
}

void EncodePromoteLeaderRequest(const PromoteLeaderRequest& req,
                                std::string* out) {
  codec::PutVarint32(out, req.leader);
  codec::PutVarint64(out, req.epoch);
  codec::PutLengthPrefixed(out, req.topic);
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.entries.size()));
  for (const PromoteLeaderRequest::Entry& entry : req.entries) {
    codec::PutVarint32(out, entry.partition);
    codec::PutVarint64Signed(out, entry.log_end);
  }
}

Status DecodePromoteLeaderRequest(std::string_view in,
                                  PromoteLeaderRequest* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &out->leader) ||
      !codec::GetVarint64(&in, &out->epoch) || !GetString(&in, &out->topic) ||
      !codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("promote_leader request");
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PromoteLeaderRequest::Entry entry;
    if (!codec::GetVarint32(&in, &entry.partition) ||
        !codec::GetVarint64Signed(&in, &entry.log_end)) {
      return Truncated("promote_leader entry");
    }
    out->entries.push_back(entry);
  }
  return ExpectDrained(in);
}

void EncodePromoteLeaderResponse(const PromoteLeaderResponse& resp,
                                 std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.entries.size()));
  for (const PromoteLeaderResponse::Entry& entry : resp.entries) {
    codec::PutVarint32(out, entry.partition);
    codec::PutVarint64Signed(out, entry.log_end);
  }
}

Status DecodePromoteLeaderResponse(std::string_view in,
                                   PromoteLeaderResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("promote_leader response");
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PromoteLeaderResponse::Entry entry;
    if (!codec::GetVarint32(&in, &entry.partition) ||
        !codec::GetVarint64Signed(&in, &entry.log_end)) {
      return Truncated("promote_leader response entry");
    }
    out->entries.push_back(entry);
  }
  return ExpectDrained(in);
}

void EncodeClusterMetaRequest(const ClusterMetaRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.topic);
}

Status DecodeClusterMetaRequest(std::string_view in, ClusterMetaRequest* out) {
  if (!GetString(&in, &out->topic)) return Truncated("cluster_meta request");
  return ExpectDrained(in);
}

void EncodeClusterMetaResponse(const ClusterMetaResponse& resp,
                               std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.brokers.size()));
  for (const ClusterMetaResponse::BrokerInfo& broker : resp.brokers) {
    codec::PutVarint32(out, broker.id);
    codec::PutLengthPrefixed(out, broker.host);
    codec::PutVarint32(out, broker.port);
  }
  codec::PutVarint32(out, resp.self);
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.topics.size()));
  for (const ClusterMetaResponse::Topic& topic : resp.topics) {
    codec::PutLengthPrefixed(out, topic.topic);
    codec::PutVarint32(out, topic.leader);
    codec::PutVarint64(out, topic.epoch);
    codec::PutVarint32(out, static_cast<std::uint32_t>(topic.isr.size()));
    for (const std::uint32_t id : topic.isr) codec::PutVarint32(out, id);
    codec::PutVarint32(out, static_cast<std::uint32_t>(topic.partitions.size()));
    for (const ClusterMetaResponse::Partition& p : topic.partitions) {
      codec::PutVarint64Signed(out, p.log_end);
      codec::PutVarint64Signed(out, p.high_watermark);
    }
  }
}

Status DecodeClusterMetaResponse(std::string_view in,
                                 ClusterMetaResponse* out) {
  std::uint32_t brokers = 0;
  if (!codec::GetVarint32(&in, &brokers) || brokers > kMaxBatchEntries) {
    return Truncated("cluster_meta response");
  }
  out->brokers.clear();
  out->brokers.reserve(brokers);
  for (std::uint32_t i = 0; i < brokers; ++i) {
    ClusterMetaResponse::BrokerInfo broker;
    std::uint32_t port = 0;
    if (!codec::GetVarint32(&in, &broker.id) || !GetString(&in, &broker.host) ||
        !codec::GetVarint32(&in, &port) || port > 0xffff) {
      return Truncated("cluster_meta broker");
    }
    broker.port = static_cast<std::uint16_t>(port);
    out->brokers.push_back(std::move(broker));
  }
  std::uint32_t topics = 0;
  if (!codec::GetVarint32(&in, &out->self) ||
      !codec::GetVarint32(&in, &topics) || topics > kMaxBatchEntries) {
    return Truncated("cluster_meta topics");
  }
  out->topics.clear();
  out->topics.reserve(topics);
  for (std::uint32_t i = 0; i < topics; ++i) {
    ClusterMetaResponse::Topic topic;
    std::uint32_t isr = 0;
    if (!GetString(&in, &topic.topic) ||
        !codec::GetVarint32(&in, &topic.leader) ||
        !codec::GetVarint64(&in, &topic.epoch) ||
        !codec::GetVarint32(&in, &isr) || isr > kMaxBatchEntries) {
      return Truncated("cluster_meta topic");
    }
    topic.isr.reserve(isr);
    for (std::uint32_t r = 0; r < isr; ++r) {
      std::uint32_t id = 0;
      if (!codec::GetVarint32(&in, &id)) return Truncated("cluster_meta isr");
      topic.isr.push_back(id);
    }
    std::uint32_t parts = 0;
    if (!codec::GetVarint32(&in, &parts) || parts > kMaxBatchEntries) {
      return Truncated("cluster_meta partitions");
    }
    topic.partitions.reserve(parts);
    for (std::uint32_t p = 0; p < parts; ++p) {
      ClusterMetaResponse::Partition part;
      if (!codec::GetVarint64Signed(&in, &part.log_end) ||
          !codec::GetVarint64Signed(&in, &part.high_watermark)) {
        return Truncated("cluster_meta offsets");
      }
      topic.partitions.push_back(part);
    }
    out->topics.push_back(std::move(topic));
  }
  return ExpectDrained(in);
}

void EncodeHelloRequest(const HelloRequest& req, std::string* out) {
  codec::PutVarint32(out, req.max_version);
}

Status DecodeHelloRequest(std::string_view in, HelloRequest* out) {
  if (!codec::GetVarint32(&in, &out->max_version) || out->max_version == 0) {
    return Truncated("hello request");
  }
  return ExpectDrained(in);
}

void EncodeHelloResponse(const HelloResponse& resp, std::string* out) {
  codec::PutVarint32(out, resp.version);
}

Status DecodeHelloResponse(std::string_view in, HelloResponse* out) {
  if (!codec::GetVarint32(&in, &out->version) || out->version == 0) {
    return Truncated("hello response");
  }
  return ExpectDrained(in);
}

}  // namespace strata::net
