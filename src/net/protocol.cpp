#include "net/protocol.hpp"

#include "common/codec.hpp"

namespace strata::net {

namespace {

constexpr std::uint32_t kMaxBatchEntries = 1u << 20;

Status Truncated(const char* what) {
  return Status::Corruption(std::string("protocol: truncated ") + what);
}

bool GetString(std::string_view* in, std::string* out) {
  std::string_view s;
  if (!codec::GetLengthPrefixed(in, &s)) return false;
  out->assign(s.data(), s.size());
  return true;
}

void PutTopicPartition(std::string* out, const ps::TopicPartition& tp) {
  codec::PutLengthPrefixed(out, tp.topic);
  codec::PutVarint32(out, static_cast<std::uint32_t>(tp.partition));
}

bool GetTopicPartition(std::string_view* in, ps::TopicPartition* tp) {
  std::uint32_t partition = 0;
  if (!GetString(in, &tp->topic) || !codec::GetVarint32(in, &partition)) {
    return false;
  }
  tp->partition = static_cast<int>(partition);
  return true;
}

Status ExpectDrained(std::string_view in) {
  if (!in.empty()) return Status::Corruption("protocol: trailing bytes");
  return Status::Ok();
}

}  // namespace

const char* ApiKeyName(ApiKey api) noexcept {
  switch (api) {
    case ApiKey::kCreateTopic:
      return "create_topic";
    case ApiKey::kMetadata:
      return "metadata";
    case ApiKey::kProduce:
      return "produce";
    case ApiKey::kFetch:
      return "fetch";
    case ApiKey::kJoinGroup:
      return "join_group";
    case ApiKey::kLeaveGroup:
      return "leave_group";
    case ApiKey::kHeartbeat:
      return "heartbeat";
    case ApiKey::kCommitOffset:
      return "commit_offset";
    case ApiKey::kOffsetFetch:
      return "offset_fetch";
    case ApiKey::kHello:
      return "hello";
  }
  return "unknown";
}

// --- envelope ---------------------------------------------------------------

void EncodeRequest(ApiKey api, std::string_view body, std::string* out) {
  out->push_back(static_cast<char>(api));
  out->append(body.data(), body.size());
}

Status DecodeRequest(std::string_view payload, ApiKey* api,
                     std::string_view* body) {
  if (payload.empty()) return Truncated("request");
  const auto key = static_cast<std::uint8_t>(payload.front());
  if (key < static_cast<std::uint8_t>(ApiKey::kCreateTopic) ||
      key > static_cast<std::uint8_t>(ApiKey::kHello)) {
    return Status::Corruption("protocol: unknown api key " +
                              std::to_string(key));
  }
  *api = static_cast<ApiKey>(key);
  *body = payload.substr(1);
  return Status::Ok();
}

void EncodeResponse(const Status& status, std::string_view body,
                    std::string* out) {
  out->push_back(static_cast<char>(status.code()));
  codec::PutLengthPrefixed(out, status.message());
  if (status.ok()) out->append(body.data(), body.size());
}

Status DecodeResponse(std::string_view payload, std::string_view* body) {
  if (payload.empty()) return Truncated("response");
  const auto code = static_cast<StatusCode>(payload.front());
  payload.remove_prefix(1);
  std::string message;
  if (!GetString(&payload, &message)) return Truncated("response message");
  if (code != StatusCode::kOk) return Status(code, std::move(message));
  *body = payload;
  return Status::Ok();
}

// --- create topic -----------------------------------------------------------

void EncodeCreateTopic(const CreateTopicRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.topic);
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.config.partitions));
  codec::PutVarint64(out, req.config.retention_records);
}

Status DecodeCreateTopic(std::string_view in, CreateTopicRequest* out) {
  std::uint32_t partitions = 0;
  std::uint64_t retention = 0;
  if (!GetString(&in, &out->topic) || !codec::GetVarint32(&in, &partitions) ||
      !codec::GetVarint64(&in, &retention)) {
    return Truncated("create_topic");
  }
  out->config.partitions = static_cast<int>(partitions);
  out->config.retention_records = retention;
  return ExpectDrained(in);
}

// --- metadata ---------------------------------------------------------------

void EncodeMetadataRequest(const MetadataRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.topic);
}

Status DecodeMetadataRequest(std::string_view in, MetadataRequest* out) {
  if (!GetString(&in, &out->topic)) return Truncated("metadata request");
  return ExpectDrained(in);
}

void EncodeMetadataResponse(const MetadataResponse& resp, std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.topics.size()));
  for (const TopicMetadata& topic : resp.topics) {
    codec::PutLengthPrefixed(out, topic.topic);
    codec::PutVarint32(out, static_cast<std::uint32_t>(topic.partitions.size()));
    for (const auto& [start, end] : topic.partitions) {
      codec::PutVarint64Signed(out, start);
      codec::PutVarint64Signed(out, end);
    }
  }
}

Status DecodeMetadataResponse(std::string_view in, MetadataResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("metadata response");
  }
  out->topics.clear();
  out->topics.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TopicMetadata topic;
    std::uint32_t parts = 0;
    if (!GetString(&in, &topic.topic) || !codec::GetVarint32(&in, &parts) ||
        parts > kMaxBatchEntries) {
      return Truncated("metadata topic");
    }
    topic.partitions.reserve(parts);
    for (std::uint32_t p = 0; p < parts; ++p) {
      std::int64_t start = 0;
      std::int64_t end = 0;
      if (!codec::GetVarint64Signed(&in, &start) ||
          !codec::GetVarint64Signed(&in, &end)) {
        return Truncated("metadata offsets");
      }
      topic.partitions.emplace_back(start, end);
    }
    out->topics.push_back(std::move(topic));
  }
  return ExpectDrained(in);
}

// --- produce ----------------------------------------------------------------

void EncodeProduceRequest(const ProduceRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.topic);
  codec::PutLengthPrefixed(out, req.record.key);
  codec::PutLengthPrefixed(out, req.record.value);
  codec::PutVarint64Signed(out, req.record.timestamp);
}

Status DecodeProduceRequest(std::string_view in, ProduceRequest* out) {
  if (!GetString(&in, &out->topic) || !GetString(&in, &out->record.key) ||
      !GetString(&in, &out->record.value) ||
      !codec::GetVarint64Signed(&in, &out->record.timestamp)) {
    return Truncated("produce request");
  }
  return ExpectDrained(in);
}

void EncodeProduceResponse(const ProduceResponse& resp, std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.partition));
  codec::PutVarint64Signed(out, resp.offset);
}

Status DecodeProduceResponse(std::string_view in, ProduceResponse* out) {
  std::uint32_t partition = 0;
  if (!codec::GetVarint32(&in, &partition) ||
      !codec::GetVarint64Signed(&in, &out->offset)) {
    return Truncated("produce response");
  }
  out->partition = static_cast<int>(partition);
  return ExpectDrained(in);
}

// --- fetch ------------------------------------------------------------------

void EncodeFetchRequest(const FetchRequest& req, std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.entries.size()));
  for (const FetchRequest::Entry& entry : req.entries) {
    PutTopicPartition(out, entry.tp);
    codec::PutVarint64Signed(out, entry.offset);
    codec::PutVarint64(out, entry.max_records);
  }
  codec::PutVarint64(out, req.max_wait_us);
}

Status DecodeFetchRequest(std::string_view in, FetchRequest* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("fetch request");
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FetchRequest::Entry entry;
    if (!GetTopicPartition(&in, &entry.tp) ||
        !codec::GetVarint64Signed(&in, &entry.offset) ||
        !codec::GetVarint64(&in, &entry.max_records)) {
      return Truncated("fetch entry");
    }
    out->entries.push_back(std::move(entry));
  }
  if (!codec::GetVarint64(&in, &out->max_wait_us)) {
    return Truncated("fetch wait");
  }
  return ExpectDrained(in);
}

void EncodeFetchResponse(const FetchResponse& resp, std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.entries.size()));
  for (const FetchResponse::Entry& entry : resp.entries) {
    PutTopicPartition(out, entry.tp);
    codec::PutVarint64Signed(out, entry.next_offset);
    codec::PutVarint32(out, static_cast<std::uint32_t>(entry.records.size()));
    for (const ps::ConsumedRecord& record : entry.records) {
      codec::PutVarint64Signed(out, record.offset);
      codec::PutLengthPrefixed(out, record.key);
      codec::PutLengthPrefixed(out, record.value);
      codec::PutVarint64Signed(out, record.timestamp);
    }
  }
}

Status DecodeFetchResponse(std::string_view in, FetchResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("fetch response");
  }
  out->entries.clear();
  out->entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FetchResponse::Entry entry;
    std::uint32_t records = 0;
    if (!GetTopicPartition(&in, &entry.tp) ||
        !codec::GetVarint64Signed(&in, &entry.next_offset) ||
        !codec::GetVarint32(&in, &records) || records > kMaxBatchEntries) {
      return Truncated("fetch response entry");
    }
    entry.records.reserve(records);
    for (std::uint32_t r = 0; r < records; ++r) {
      ps::ConsumedRecord record;
      record.topic = entry.tp.topic;
      record.partition = entry.tp.partition;
      if (!codec::GetVarint64Signed(&in, &record.offset) ||
          !GetString(&in, &record.key) || !GetString(&in, &record.value) ||
          !codec::GetVarint64Signed(&in, &record.timestamp)) {
        return Truncated("fetch record");
      }
      entry.records.push_back(std::move(record));
    }
    out->entries.push_back(std::move(entry));
  }
  return ExpectDrained(in);
}

// --- groups -----------------------------------------------------------------

void EncodeGroupRequest(const GroupRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.group);
  codec::PutLengthPrefixed(out, req.topic);
  codec::PutVarint64(out, req.member);
}

Status DecodeGroupRequest(std::string_view in, GroupRequest* out) {
  if (!GetString(&in, &out->group) || !GetString(&in, &out->topic) ||
      !codec::GetVarint64(&in, &out->member)) {
    return Truncated("group request");
  }
  return ExpectDrained(in);
}

void EncodeJoinGroupResponse(const JoinGroupResponse& resp, std::string* out) {
  codec::PutVarint64(out, resp.member);
}

Status DecodeJoinGroupResponse(std::string_view in, JoinGroupResponse* out) {
  if (!codec::GetVarint64(&in, &out->member)) {
    return Truncated("join_group response");
  }
  return ExpectDrained(in);
}

void EncodeHeartbeatResponse(const HeartbeatResponse& resp, std::string* out) {
  codec::PutVarint64(out, resp.generation);
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.assignment.size()));
  for (const ps::TopicPartition& tp : resp.assignment) {
    PutTopicPartition(out, tp);
  }
}

Status DecodeHeartbeatResponse(std::string_view in, HeartbeatResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint64(&in, &out->generation) ||
      !codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("heartbeat response");
  }
  out->assignment.clear();
  out->assignment.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ps::TopicPartition tp;
    if (!GetTopicPartition(&in, &tp)) return Truncated("heartbeat assignment");
    out->assignment.push_back(std::move(tp));
  }
  return ExpectDrained(in);
}

// --- offsets ----------------------------------------------------------------

void EncodeCommitOffsetRequest(const CommitOffsetRequest& req,
                               std::string* out) {
  codec::PutLengthPrefixed(out, req.group);
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.offsets.size()));
  for (const auto& [tp, offset] : req.offsets) {
    PutTopicPartition(out, tp);
    codec::PutVarint64Signed(out, offset);
  }
}

Status DecodeCommitOffsetRequest(std::string_view in,
                                 CommitOffsetRequest* out) {
  std::uint32_t n = 0;
  if (!GetString(&in, &out->group) || !codec::GetVarint32(&in, &n) ||
      n > kMaxBatchEntries) {
    return Truncated("commit request");
  }
  out->offsets.clear();
  out->offsets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ps::TopicPartition tp;
    std::int64_t offset = 0;
    if (!GetTopicPartition(&in, &tp) ||
        !codec::GetVarint64Signed(&in, &offset)) {
      return Truncated("commit entry");
    }
    out->offsets.emplace_back(std::move(tp), offset);
  }
  return ExpectDrained(in);
}

void EncodeOffsetFetchRequest(const OffsetFetchRequest& req, std::string* out) {
  codec::PutLengthPrefixed(out, req.group);
  codec::PutVarint32(out, static_cast<std::uint32_t>(req.partitions.size()));
  for (const ps::TopicPartition& tp : req.partitions) {
    PutTopicPartition(out, tp);
  }
}

Status DecodeOffsetFetchRequest(std::string_view in, OffsetFetchRequest* out) {
  std::uint32_t n = 0;
  if (!GetString(&in, &out->group) || !codec::GetVarint32(&in, &n) ||
      n > kMaxBatchEntries) {
    return Truncated("offset_fetch request");
  }
  out->partitions.clear();
  out->partitions.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ps::TopicPartition tp;
    if (!GetTopicPartition(&in, &tp)) return Truncated("offset_fetch entry");
    out->partitions.push_back(std::move(tp));
  }
  return ExpectDrained(in);
}

void EncodeOffsetFetchResponse(const OffsetFetchResponse& resp,
                               std::string* out) {
  codec::PutVarint32(out, static_cast<std::uint32_t>(resp.offsets.size()));
  for (const std::int64_t offset : resp.offsets) {
    codec::PutVarint64Signed(out, offset);
  }
}

Status DecodeOffsetFetchResponse(std::string_view in,
                                 OffsetFetchResponse* out) {
  std::uint32_t n = 0;
  if (!codec::GetVarint32(&in, &n) || n > kMaxBatchEntries) {
    return Truncated("offset_fetch response");
  }
  out->offsets.clear();
  out->offsets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::int64_t offset = 0;
    if (!codec::GetVarint64Signed(&in, &offset)) {
      return Truncated("offset_fetch offset");
    }
    out->offsets.push_back(offset);
  }
  return ExpectDrained(in);
}

void EncodeHelloRequest(const HelloRequest& req, std::string* out) {
  codec::PutVarint32(out, req.max_version);
}

Status DecodeHelloRequest(std::string_view in, HelloRequest* out) {
  if (!codec::GetVarint32(&in, &out->max_version) || out->max_version == 0) {
    return Truncated("hello request");
  }
  return ExpectDrained(in);
}

void EncodeHelloResponse(const HelloResponse& resp, std::string* out) {
  codec::PutVarint32(out, resp.version);
}

Status DecodeHelloResponse(std::string_view in, HelloResponse* out) {
  if (!codec::GetVarint32(&in, &out->version) || out->version == 0) {
    return Truncated("hello response");
  }
  return ExpectDrained(in);
}

}  // namespace strata::net
