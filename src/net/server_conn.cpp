#include "net/server_conn.hpp"

#include <sys/epoll.h>

#include <algorithm>
#include <chrono>
#include <set>

#include "common/logging.hpp"
#include "fault/failpoint.hpp"
#include "net/frame.hpp"
#include "net/repl_hooks.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"

namespace strata::net {

namespace {

/// Per-event read cap: level-triggered epoll re-notifies leftover data, so
/// bounding one event's work keeps one chatty client from starving the
/// loop's other connections.
constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kReadChunksPerEvent = 4;

/// Microseconds on the monotonic clock, for latency histograms.
std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Consumer-visible end of a partition: the local log end, clamped to the
/// replication high watermark when the broker is replicated — consumers must
/// never read records that a leader change could still truncate away.
std::int64_t VisibleEndOf(const ServerContext* ctx,
                          const ps::TopicPartition& tp, std::int64_t log_end) {
  ReplicationHooks* repl = ctx->options->repl;
  return repl != nullptr ? repl->VisibleEnd(tp, log_end) : log_end;
}

/// One non-blocking fetch pass over the request's partitions. Offsets below
/// the retention horizon are healed upward, exactly like the embedded
/// consumer does; `*healed` records the healed position per partition so
/// the caller parks its wait on offsets the log can actually reach — a wait
/// keyed on the raw client offset would see "data available" forever on a
/// trimmed partition and spin out its whole budget.
Status FetchOnce(const ServerContext* ctx, const FetchRequest& req,
                 FetchResponse* resp,
                 std::map<ps::TopicPartition, std::int64_t>* healed) {
  ps::Broker* broker = ctx->broker;
  resp->entries.clear();
  for (const FetchRequest::Entry& entry : req.entries) {
    auto log = broker->GetLog(entry.tp.topic, entry.tp.partition);
    if (!log.ok()) return log.status();
    FetchResponse::Entry result;
    result.tp = entry.tp;
    std::int64_t offset = std::max(entry.offset, (*log)->StartOffset());
    (*healed)[entry.tp] = offset;
    const std::int64_t visible = VisibleEndOf(ctx, entry.tp, (*log)->EndOffset());
    std::vector<ps::Record> records;
    std::int64_t next = offset;
    const std::uint64_t budget = std::min<std::uint64_t>(
        entry.max_records,
        visible > offset ? static_cast<std::uint64_t>(visible - offset) : 0);
    if (budget > 0) {
      STRATA_RETURN_IF_ERROR((*log)->ReadFrom(
          offset, static_cast<std::size_t>(budget), &records, &next));
    }
    result.records.reserve(records.size());
    for (ps::Record& record : records) {
      ps::ConsumedRecord consumed;
      consumed.topic = entry.tp.topic;
      consumed.partition = entry.tp.partition;
      consumed.offset = offset++;
      consumed.key = std::move(record.key);
      consumed.value = std::move(record.value);
      consumed.timestamp = record.timestamp;
      result.records.push_back(std::move(consumed));
    }
    result.next_offset = next;
    resp->entries.push_back(std::move(result));
  }
  return Status::Ok();
}

}  // namespace

ServerConnection::ServerConnection(ServerContext* ctx, EventLoop* loop,
                                   Socket socket)
    : ctx_(ctx),
      loop_(loop),
      socket_(std::move(socket)),
      wake_(std::make_shared<WakeTarget>()) {}

ServerConnection::~ServerConnection() = default;

Status ServerConnection::Register() {
  STRATA_RETURN_IF_ERROR(loop_->AddFd(
      socket_.fd(), EPOLLIN, [this](std::uint32_t ev) { OnIoEvent(ev); }));
  registered_ = true;
  {
    std::lock_guard lock(wake_->mu);
    wake_->loop = loop_;
  }
  wake_->conn = this;
  if (ctx_->connections_gauge != nullptr) ctx_->connections_gauge->Add(1);
  return Status::Ok();
}

void ServerConnection::Close() {
  if (closed_) return;
  closed_ = true;
  {
    std::lock_guard lock(wake_->mu);
    wake_->loop = nullptr;
  }
  wake_->conn = nullptr;
  for (ParkedFetch& parked : parked_) {
    for (const auto& [shard, id] : parked.waiters) {
      ctx_->broker->RemoveDataWaiter(shard, id);
    }
    if (parked.timer_id != 0) loop_->CancelTimer(parked.timer_id);
  }
  parked_.clear();
  for (ParkedProduce& parked : parked_produce_) {
    if (parked.timer_id != 0) loop_->CancelTimer(parked.timer_id);
    // The client is gone; the commit still completes server-side.
    ctx_->options->repl->CancelCommitWaiter(parked.waiter_id);
  }
  parked_produce_.clear();
  if (write_stall_timer_ != 0) {
    loop_->CancelTimer(write_stall_timer_);
    write_stall_timer_ = 0;
  }
  if (registered_) {
    loop_->DelFd(socket_.fd());
    if (ctx_->connections_gauge != nullptr) ctx_->connections_gauge->Sub(1);
  }
  // The connection is the group session: a dead client must release its
  // partitions so the remaining members rebalance instead of stalling.
  for (const auto& [group, member] : memberships_) {
    ctx_->broker->LeaveGroup(group, member);
  }
  memberships_.clear();
  socket_.Shutdown();
  socket_.Close();
  auto on_closed = ctx_->on_closed;
  if (on_closed) on_closed(this);  // may destroy *this; touch nothing after
}

void ServerConnection::ScheduleClose() {
  auto wake = wake_;
  loop_->Post([wake] {
    if (wake->conn != nullptr) wake->conn->Close();
  });
}

void ServerConnection::OnIoEvent(std::uint32_t events) {
  auto guard = wake_;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    Close();
    return;
  }
  if ((events & EPOLLIN) != 0) {
    OnReadable();
    if (guard->conn == nullptr) return;  // closed during read/dispatch
  }
  if ((events & EPOLLOUT) != 0) OnWritable();
}

void ServerConnection::OnReadable() {
  if (severing_) return;
  char chunk[kReadChunk];
  for (int i = 0; i < kReadChunksPerEvent; ++i) {
    auto n = socket_.ReadSome(chunk, sizeof(chunk));
    if (!n.ok()) {
      // Orderly close, reset, or an injected net.recv fault: either way
      // this connection is done.
      Close();
      return;
    }
    if (*n == 0) break;  // drained
    rbuf_.append(chunk, *n);
    if (*n < sizeof(chunk)) break;
  }
  ProcessBuffer();
}

void ServerConnection::ProcessBuffer() {
  auto guard = wake_;
  while (!severing_) {
    const std::size_t avail = rbuf_.size() - rpos_;
    if (avail < kFrameHeaderBytes) break;
    FrameHeader header;
    Status parsed = ParseFrameHeader(
        std::string_view(rbuf_).substr(rpos_, kFrameHeaderBytes), &header);
    if (!parsed.ok()) {
      // A corrupt length desynchronizes the stream; nothing after it can be
      // trusted, so drop the connection without answering.
      LOG_WARN << "net: dropping connection after corrupt frame: "
               << parsed.message();
      Close();
      return;
    }
    if (avail < kFrameHeaderBytes + header.rest_bytes()) break;
    TraceContext trace;
    std::optional<std::uint64_t> correlation;
    std::string_view payload;
    parsed = ParseFrameRest(
        header,
        std::string_view(rbuf_).substr(rpos_ + kFrameHeaderBytes,
                                       header.rest_bytes()),
        &trace, &correlation, &payload);
    if (!parsed.ok()) {
      LOG_WARN << "net: dropping connection after corrupt frame: "
               << parsed.message();
      Close();
      return;
    }
    rpos_ += kFrameHeaderBytes + header.rest_bytes();
    DispatchFrame(payload, trace, correlation);
    if (guard->conn == nullptr) return;  // closed during dispatch
  }
  if (rpos_ > 0) {
    rbuf_.erase(0, rpos_);
    rpos_ = 0;
  }
}

void ServerConnection::DispatchFrame(
    std::string_view payload, const TraceContext& trace,
    const std::optional<std::uint64_t>& correlation) {
  if (ctx_->bytes_in != nullptr) {
    ctx_->bytes_in->Inc(payload.size() + kFrameHeaderBytes);
  }
  // Uncorrelated responses must go out in arrival order; reserve the slot
  // before dispatch so a parked fetch holds its place in the queue.
  std::shared_ptr<Slot> slot;
  if (!correlation.has_value()) {
    slot = std::make_shared<Slot>();
    slots_.push_back(slot);
  }
  std::string response;
  bool parked = false;
  Status handled;
  {
    // Server-side hop of a traced request: dur covers dispatch; the client
    // frame span is the parent.
    obs::SpanScope span;
    if (trace.sampled() && obs::TracingEnabled()) {
      span = obs::SpanScope("server.dispatch", "net", trace);
    }
    handled =
        HandleRequest(payload, trace, correlation, slot, &response, &parked);
  }
  // Failpoint "net.server.dispatch": sever the connection after the request
  // was applied but before the response goes out — the crash window that
  // makes produce at-least-once (the client retries an applied request).
  if (fault::AnyActive() && !fault::Evaluate("net.server.dispatch").ok()) {
    LOG_WARN << "net: dropping connection at net.server.dispatch failpoint";
    Close();
    return;
  }
  if (parked) return;  // response queued later, slot (if any) held
  if (!response.empty()) {
    QueueResponse(response, trace, correlation, slot);
  } else if (slot != nullptr) {
    // The request envelope didn't decode: nothing to answer, but the slot
    // must not block the queue.
    slot->done = true;
    FlushSlots();
  }
  if (!handled.ok()) {
    // The error response (if any) is queued above; now sever — a corrupt
    // body means the next frame boundary cannot be trusted.
    LOG_WARN << "net: dropping connection: " << handled.ToString();
    Sever();
  }
}

Status ServerConnection::HandleRequest(
    std::string_view payload, const TraceContext& trace,
    const std::optional<std::uint64_t>& correlation,
    const std::shared_ptr<Slot>& slot, std::string* response, bool* parked) {
  ApiKey api{};
  std::string_view body;
  Status decoded = DecodeRequest(payload, &api, &body);
  if (!decoded.ok()) return decoded;  // cannot even answer: drop connection
  if (api >= ApiKey::kReplicaFetch &&
      ctx_->options->max_protocol_version < 4) {
    // Emulating a pre-repl build (tests pin max_protocol_version down): a
    // genuine older server does not know these keys and severs without a
    // response, exactly like the unknown-api-key path above.
    return Status::Corruption("protocol: unknown api key " +
                              std::to_string(static_cast<int>(api)) +
                              " (server capped at v" +
                              std::to_string(ctx_->options->max_protocol_version) +
                              ")");
  }

  ps::Broker* broker = ctx_->broker;
  obs::Counter* requests = nullptr;
  obs::HistogramMetric* latency = nullptr;
  if (ctx_->metrics != nullptr) {
    const obs::Labels labels{{"api", ApiKeyName(api)}};
    requests = ctx_->metrics->GetCounter("net.server.requests", labels);
    latency =
        ctx_->metrics->GetHistogram("net.server.request_latency_us", labels);
  }
  const std::int64_t start_us = NowUs();

  Status status = Status::Ok();
  std::string out;
  switch (api) {
    case ApiKey::kCreateTopic: {
      CreateTopicRequest req;
      status = DecodeCreateTopic(body, &req);
      if (status.ok()) status = broker->CreateTopic(req.topic, req.config);
      break;
    }
    case ApiKey::kMetadata: {
      MetadataRequest req;
      status = DecodeMetadataRequest(body, &req);
      if (status.ok()) {
        MetadataResponse resp;
        std::vector<std::string> topics;
        if (req.topic.empty()) {
          topics = broker->ListTopics();
        } else {
          topics.push_back(req.topic);
        }
        for (const std::string& topic : topics) {
          auto stats = broker->GetTopicStats(topic);
          if (!stats.ok()) {
            status = stats.status();
            break;
          }
          resp.topics.push_back(TopicMetadata{topic, stats->offsets});
        }
        if (status.ok()) EncodeMetadataResponse(resp, &out);
      }
      break;
    }
    case ApiKey::kProduce: {
      ProduceRequest req;
      status = DecodeProduceRequest(body, &req,
                                    ctx_->options->max_protocol_version >= 4);
      ReplicationHooks* repl = ctx_->options->repl;
      if (status.ok() && repl != nullptr) {
        // Replicated topics only accept produces on the leader; the error
        // names the current leader so clients refresh metadata and re-route.
        status = repl->CheckProduce(req.topic);
      }
      if (status.ok()) {
        auto appended = broker->Produce(req.topic, req.record);
        status = appended.status();
        if (status.ok()) {
          const ProduceResponse resp{appended->first, appended->second};
          if (req.acks == ProduceAcks::kQuorum && repl != nullptr &&
              repl->ManagesTopic(req.topic)) {
            // The append succeeded locally; hold the response until a
            // majority of the replica set confirms it (or the quorum
            // timeout answers Timeout — the client retry is at-least-once).
            ParkProduce(req.topic, resp, trace, correlation, slot);
            *parked = true;
            if (requests != nullptr) requests->Inc();
            return Status::Ok();
          }
          EncodeProduceResponse(resp, &out);
        }
      }
      break;
    }
    case ApiKey::kFetch: {
      status = HandleFetch(body, trace, correlation, slot, &out, parked);
      if (*parked) {
        // The response is queued when the park resolves; count the request
        // now (latency histograms cover only non-parked requests).
        if (requests != nullptr) requests->Inc();
        return Status::Ok();
      }
      break;
    }
    case ApiKey::kJoinGroup: {
      GroupRequest req;
      status = DecodeGroupRequest(body, &req);
      if (status.ok()) {
        auto member = broker->JoinGroup(req.group, req.topic);
        status = member.status();
        if (status.ok()) {
          memberships_.emplace_back(req.group, *member);
          EncodeJoinGroupResponse(JoinGroupResponse{*member}, &out);
        }
      }
      break;
    }
    case ApiKey::kLeaveGroup: {
      GroupRequest req;
      status = DecodeGroupRequest(body, &req);
      if (status.ok()) {
        broker->LeaveGroup(req.group, req.member);
        std::erase(memberships_, std::pair{req.group, req.member});
      }
      break;
    }
    case ApiKey::kHeartbeat: {
      GroupRequest req;
      status = DecodeGroupRequest(body, &req);
      if (status.ok()) {
        HeartbeatResponse resp;
        resp.assignment =
            broker->Assignment(req.group, req.member, &resp.generation);
        EncodeHeartbeatResponse(resp, &out);
      }
      break;
    }
    case ApiKey::kCommitOffset: {
      CommitOffsetRequest req;
      status = DecodeCommitOffsetRequest(body, &req);
      for (const auto& [tp, offset] : req.offsets) {
        if (!status.ok()) break;
        status = broker->CommitOffset(req.group, tp, offset);
      }
      break;
    }
    case ApiKey::kOffsetFetch: {
      OffsetFetchRequest req;
      status = DecodeOffsetFetchRequest(body, &req);
      if (status.ok()) {
        OffsetFetchResponse resp;
        resp.offsets.reserve(req.partitions.size());
        for (const ps::TopicPartition& tp : req.partitions) {
          auto committed = broker->CommittedOffset(req.group, tp);
          if (committed.ok()) {
            resp.offsets.push_back(*committed);
          } else if (committed.status().IsNotFound()) {
            resp.offsets.push_back(OffsetFetchResponse::kNone);
          } else {
            status = committed.status();
            break;
          }
        }
        if (status.ok()) EncodeOffsetFetchResponse(resp, &out);
      }
      break;
    }
    case ApiKey::kHello: {
      HelloRequest req;
      status = DecodeHelloRequest(body, &req);
      if (status.ok()) {
        peer_version_ = std::min({req.max_version, kProtocolVersion,
                                  ctx_->options->max_protocol_version});
        EncodeHelloResponse(HelloResponse{peer_version_}, &out);
      }
      break;
    }
    case ApiKey::kReplicaFetch: {
      ReplicaFetchRequest req;
      status = DecodeReplicaFetchRequest(body, &req);
      if (status.ok()) {
        ReplicationHooks* repl = ctx_->options->repl;
        if (repl == nullptr) {
          status = Status::InvalidArgument("replication not enabled");
        } else {
          ReplicaFetchResponse resp;
          status = repl->HandleReplicaFetch(req, &resp);
          if (status.ok()) EncodeReplicaFetchResponse(resp, &out);
        }
      }
      break;
    }
    case ApiKey::kReplicaAck: {
      ReplicaAckRequest req;
      status = DecodeReplicaAckRequest(body, &req);
      if (status.ok()) {
        ReplicationHooks* repl = ctx_->options->repl;
        if (repl == nullptr) {
          status = Status::InvalidArgument("replication not enabled");
        } else {
          ReplicaAckResponse resp;
          status = repl->HandleReplicaAck(req, &resp);
          if (status.ok()) EncodeReplicaAckResponse(resp, &out);
        }
      }
      break;
    }
    case ApiKey::kPromoteLeader: {
      PromoteLeaderRequest req;
      status = DecodePromoteLeaderRequest(body, &req);
      if (status.ok()) {
        ReplicationHooks* repl = ctx_->options->repl;
        if (repl == nullptr) {
          status = Status::InvalidArgument("replication not enabled");
        } else {
          PromoteLeaderResponse resp;
          status = repl->HandlePromoteLeader(req, &resp);
          if (status.ok()) EncodePromoteLeaderResponse(resp, &out);
        }
      }
      break;
    }
    case ApiKey::kClusterMeta: {
      ClusterMetaRequest req;
      status = DecodeClusterMetaRequest(body, &req);
      if (status.ok()) {
        ReplicationHooks* repl = ctx_->options->repl;
        if (repl == nullptr) {
          status = Status::InvalidArgument("replication not enabled");
        } else {
          ClusterMetaResponse resp;
          status = repl->HandleClusterMeta(req, &resp);
          if (status.ok()) EncodeClusterMetaResponse(resp, &out);
        }
      }
      break;
    }
  }

  if (requests != nullptr) requests->Inc();
  if (latency != nullptr) latency->Record(NowUs() - start_us);

  // A malformed body means the client and server disagree about the protocol
  // (or the frame CRC missed something): answer with the error once, then
  // sever — the next frame boundary cannot be trusted.
  EncodeResponse(status, out, response);
  return status.IsCorruption() ? status : Status::Ok();
}

Status ServerConnection::HandleFetch(
    std::string_view body, const TraceContext& trace,
    const std::optional<std::uint64_t>& correlation,
    const std::shared_ptr<Slot>& slot, std::string* out, bool* parked) {
  FetchRequest req;
  STRATA_RETURN_IF_ERROR(DecodeFetchRequest(body, &req));

  const auto wait_budget = std::min(
      std::chrono::microseconds(static_cast<std::int64_t>(req.max_wait_us)),
      ctx_->options->max_fetch_wait);

  ps::Broker* broker = ctx_->broker;
  FetchResponse resp;
  std::map<ps::TopicPartition, std::int64_t> healed;
  STRATA_RETURN_IF_ERROR(FetchOnce(ctx_, req, &resp, &healed));
  const bool stopping = ctx_->stopping->load(std::memory_order_relaxed);
  if (!resp.empty() || req.entries.empty() ||
      wait_budget <= std::chrono::microseconds::zero() || stopping ||
      broker->closed()) {
    EncodeFetchResponse(resp, out);
    return Status::Ok();
  }

  // Park: register one waiter per involved shard, whose wake-up posts a
  // retry onto this loop; a timer bounds the wait at the deadline.
  ParkedFetch parked_fetch;
  parked_fetch.id = next_parked_id_++;
  parked_fetch.req = std::move(req);
  parked_fetch.deadline = After(wait_budget);
  parked_fetch.trace = trace;
  parked_fetch.correlation = correlation;
  parked_fetch.slot = slot;
  parked_.push_back(std::move(parked_fetch));
  auto it = std::prev(parked_.end());

  std::set<std::size_t> shards;
  for (const FetchRequest::Entry& entry : it->req.entries) {
    shards.insert(broker->ShardOf(entry.tp.topic, entry.tp.partition));
  }
  auto wake = wake_;
  for (std::size_t shard : shards) {
    const ps::Broker::WaiterId id = broker->AddDataWaiter(shard, [wake] {
      // Any thread. Collapse bursts: one retry covers every append that
      // landed before it runs.
      if (wake->retry_pending.exchange(true, std::memory_order_acq_rel)) {
        return;
      }
      std::lock_guard lock(wake->mu);
      if (wake->loop == nullptr) return;  // connection closed
      wake->loop->Post([wake] {
        wake->retry_pending.store(false, std::memory_order_release);
        if (wake->conn != nullptr) wake->conn->RetryParkedFetches();
      });
    });
    it->waiters.emplace_back(shard, id);
  }

  // Recheck after registering — an append between the empty pass above and
  // the registration would otherwise be missed until the next one. The
  // check keys on the *healed* offsets: the raw client offset can sit below
  // the retention horizon, where "end > offset" is forever true even though
  // the pass above already proved there is nothing readable, and waiting on
  // it would spin the whole budget away.
  bool data_now = broker->closed() ||
                  ctx_->stopping->load(std::memory_order_relaxed);
  if (!data_now) {
    for (const FetchRequest::Entry& entry : it->req.entries) {
      auto log = broker->GetLog(entry.tp.topic, entry.tp.partition);
      // Like FetchOnce, "data available" means visible data: records above
      // the replication high watermark wake us (the hooks notify on HW
      // advance) but must not complete the long-poll early.
      if (!log.ok() ||
          VisibleEndOf(ctx_, entry.tp, (*log)->EndOffset()) > healed[entry.tp]) {
        data_now = true;
        break;
      }
    }
  }
  if (data_now) {
    FetchResponse now_resp;
    std::map<ps::TopicPartition, std::int64_t> now_healed;
    Status st = broker->closed()
                    ? Status::Closed("broker closed")
                    : FetchOnce(ctx_, it->req, &now_resp, &now_healed);
    FinishParked(it, st, now_resp);
  } else {
    const std::uint64_t parked_id = it->id;
    it->timer_id = loop_->AddTimer(it->deadline, [this, parked_id] {
      // Timers are canceled on Close(), so `this` is alive here.
      for (auto pit = parked_.begin(); pit != parked_.end(); ++pit) {
        if (pit->id != parked_id) continue;
        pit->timer_id = 0;  // firing now; nothing to cancel
        FetchResponse resp;
        std::map<ps::TopicPartition, std::int64_t> healed_positions;
        Status st =
            ctx_->broker->closed()
                ? Status::Closed("broker closed")
                : FetchOnce(ctx_, pit->req, &resp, &healed_positions);
        FinishParked(pit, st, resp);
        break;
      }
    });
  }
  *parked = true;
  return Status::Ok();
}

void ServerConnection::RetryParkedFetches() {
  auto guard = wake_;
  if (ctx_->fetch_wakeups != nullptr) ctx_->fetch_wakeups->Inc();
  const auto now = std::chrono::steady_clock::now();
  const bool stopping = ctx_->stopping->load(std::memory_order_relaxed);
  for (auto it = parked_.begin(); it != parked_.end();) {
    auto next = std::next(it);
    if (ctx_->broker->closed()) {
      FinishParked(it, Status::Closed("broker closed"), FetchResponse{});
    } else {
      FetchResponse resp;
      std::map<ps::TopicPartition, std::int64_t> healed;
      Status st = FetchOnce(ctx_, it->req, &resp, &healed);
      if (!st.ok()) {
        FinishParked(it, st, FetchResponse{});
      } else if (!resp.empty() || now >= it->deadline || stopping) {
        FinishParked(it, Status::Ok(), resp);
      }
    }
    if (guard->conn == nullptr) return;
    it = next;
  }
}

void ServerConnection::FinishParked(std::list<ParkedFetch>::iterator it,
                                    const Status& status,
                                    const FetchResponse& resp) {
  for (const auto& [shard, id] : it->waiters) {
    ctx_->broker->RemoveDataWaiter(shard, id);
  }
  if (it->timer_id != 0) loop_->CancelTimer(it->timer_id);
  std::string body;
  if (status.ok()) EncodeFetchResponse(resp, &body);
  std::string payload;
  EncodeResponse(status, body, &payload);
  const TraceContext trace = it->trace;
  const std::optional<std::uint64_t> correlation = it->correlation;
  const std::shared_ptr<Slot> slot = it->slot;
  parked_.erase(it);
  QueueResponse(payload, trace, correlation, slot);
}

void ServerConnection::CompleteAllParked() {
  auto guard = wake_;
  while (!parked_.empty()) {
    auto it = parked_.begin();
    FetchResponse resp;
    std::map<ps::TopicPartition, std::int64_t> healed;
    Status st = ctx_->broker->closed()
                    ? Status::Closed("broker closed")
                    : FetchOnce(ctx_, it->req, &resp, &healed);
    FinishParked(it, st, resp);
    if (guard->conn == nullptr) return;
  }
}

void ServerConnection::ParkProduce(
    const std::string& topic, const ProduceResponse& resp,
    const TraceContext& trace, const std::optional<std::uint64_t>& correlation,
    const std::shared_ptr<Slot>& slot) {
  ParkedProduce parked;
  parked.id = next_parked_id_++;
  parked.resp = resp;
  parked.trace = trace;
  parked.correlation = correlation;
  parked.slot = slot;
  parked_produce_.push_back(std::move(parked));
  auto it = std::prev(parked_produce_.end());
  const std::uint64_t parked_id = it->id;

  // The commit callback may fire on any thread — inline included, when the
  // quorum already covers the offset — so it only posts through the wake
  // bridge; the posted task runs on this loop after the current dispatch.
  auto wake = wake_;
  it->waiter_id = ctx_->options->repl->AddCommitWaiter(
      ps::TopicPartition{topic, resp.partition}, resp.offset,
      [wake, parked_id](Status st) {
        std::lock_guard lock(wake->mu);
        if (wake->loop == nullptr) return;  // connection closed
        wake->loop->Post([wake, parked_id, st = std::move(st)] {
          if (wake->conn != nullptr) {
            wake->conn->FinishParkedProduce(parked_id, st);
          }
        });
      });
  it->timer_id =
      loop_->AddTimer(After(ctx_->options->quorum_ack_timeout), [this, parked_id] {
        // Timers are canceled on Close(), so `this` is alive here.
        for (auto pit = parked_produce_.begin(); pit != parked_produce_.end();
             ++pit) {
          if (pit->id != parked_id) continue;
          pit->timer_id = 0;  // firing now; nothing to cancel
          FinishParkedProduce(
              parked_id,
              Status::Timeout("quorum ack timeout: append applied on the "
                              "leader but a majority has not confirmed it"));
          break;
        }
      });
}

void ServerConnection::FinishParkedProduce(std::uint64_t id,
                                           const Status& status) {
  for (auto it = parked_produce_.begin(); it != parked_produce_.end(); ++it) {
    if (it->id != id) continue;
    if (it->timer_id != 0) loop_->CancelTimer(it->timer_id);
    // No-op when the waiter already fired; required when the timer won the
    // race so a late commit cannot resurrect the erased entry.
    ctx_->options->repl->CancelCommitWaiter(it->waiter_id);
    std::string body;
    if (status.ok()) EncodeProduceResponse(it->resp, &body);
    std::string payload;
    EncodeResponse(status, body, &payload);
    const TraceContext trace = it->trace;
    const std::optional<std::uint64_t> correlation = it->correlation;
    const std::shared_ptr<Slot> slot = it->slot;
    parked_produce_.erase(it);
    QueueResponse(payload, trace, correlation, slot);
    return;
  }
}

void ServerConnection::QueueResponse(
    const std::string& payload, const TraceContext& trace,
    const std::optional<std::uint64_t>& correlation,
    const std::shared_ptr<Slot>& slot) {
  // Echo the request's trace onto the response frame for v2+ peers, so the
  // reply leg is attributable to the same trace; echo the correlation id so
  // a pipelining client can match out-of-order completions.
  const TraceContext* response_trace =
      peer_version_ >= 2 && trace.sampled() ? &trace : nullptr;
  const std::uint64_t* correlation_id =
      correlation.has_value() ? &*correlation : nullptr;
  std::string frame;
  EncodeFrameEx(payload, response_trace, correlation_id, &frame);
  if (ctx_->bytes_out != nullptr) {
    ctx_->bytes_out->Inc(payload.size() + kFrameHeaderBytes);
  }
  if (slot != nullptr) {
    slot->frame = std::move(frame);
    slot->done = true;
    FlushSlots();
  } else {
    wbuf_.append(frame);
    StartWrite();
  }
}

void ServerConnection::FlushSlots() {
  bool appended = false;
  while (!slots_.empty() && slots_.front()->done) {
    wbuf_.append(slots_.front()->frame);
    slots_.pop_front();
    appended = true;
  }
  if (appended || severing_) StartWrite();
}

void ServerConnection::StartWrite() {
  while (wpos_ < wbuf_.size()) {
    auto n = socket_.WriteSome(std::string_view(wbuf_).substr(wpos_));
    if (!n.ok()) {
      ScheduleClose();
      return;
    }
    if (*n == 0) break;  // kernel buffer full
    wpos_ += *n;
    last_write_progress_ = std::chrono::steady_clock::now();
  }
  if (wpos_ >= wbuf_.size()) {
    wbuf_.clear();
    wpos_ = 0;
    ArmWrite(false);
    // A severed connection closes once everything queued went out.
    if (severing_ && slots_.empty()) ScheduleClose();
  } else {
    ArmWrite(true);
    EnsureWriteStallTimer();
  }
}

void ServerConnection::OnWritable() { StartWrite(); }

void ServerConnection::ArmWrite(bool want) {
  if (want == want_write_) return;
  want_write_ = want;
  std::uint32_t events = want ? EPOLLOUT : 0;
  if (!severing_) events |= EPOLLIN;
  (void)loop_->ModFd(socket_.fd(), events);
}

void ServerConnection::EnsureWriteStallTimer() {
  if (write_stall_timer_ != 0) return;
  const auto timeout = ctx_->options->write_timeout;
  write_stall_timer_ =
      loop_->AddTimer(last_write_progress_ + timeout, [this, timeout] {
        write_stall_timer_ = 0;
        if (!want_write_) return;  // drained in the meantime
        const auto now = std::chrono::steady_clock::now();
        if (now - last_write_progress_ >= timeout) {
          LOG_WARN << "net: dropping connection: write stalled";
          Close();
          return;
        }
        EnsureWriteStallTimer();
      });
}

void ServerConnection::Sever() {
  if (severing_ || closed_) return;
  severing_ = true;
  // Stop reading (level-triggered epoll would spin on unread bytes).
  (void)loop_->ModFd(socket_.fd(), want_write_ ? EPOLLOUT : 0);
  auto guard = wake_;
  // Earlier pipelined fetches still get answered — with whatever data
  // exists right now — before the connection goes away.
  CompleteAllParked();
  if (guard->conn == nullptr) return;
  FlushSlots();
  if (guard->conn == nullptr) return;
  if (wpos_ >= wbuf_.size() && slots_.empty()) ScheduleClose();
}

}  // namespace strata::net
