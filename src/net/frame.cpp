#include "net/frame.hpp"

#include "common/codec.hpp"
#include "common/crc32.hpp"

namespace strata::net {

void EncodeFrame(std::string_view payload, std::string* out) {
  EncodeFrameEx(payload, nullptr, nullptr, out);
}

void EncodeFrame(std::string_view payload, const TraceContext& trace,
                 std::string* out) {
  EncodeFrameEx(payload, &trace, nullptr, out);
}

void EncodeFrameEx(std::string_view payload, const TraceContext* trace,
                   const std::uint64_t* correlation, std::string* out) {
  const bool traced = trace != nullptr && trace->sampled();
  std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  if (traced) length |= kFrameTraceFlag;
  if (correlation != nullptr) length |= kFrameCorrelFlag;
  codec::PutFixed32(out, length);

  std::string blocks;
  blocks.reserve(kTraceBlockBytes + kCorrelBlockBytes);
  if (traced) {
    codec::PutFixed64(&blocks, trace->trace_id);
    codec::PutFixed64(&blocks, trace->parent_span);
  }
  if (correlation != nullptr) codec::PutFixed64(&blocks, *correlation);
  codec::PutFixed32(out, MaskCrc(Crc32c(payload, Crc32c(blocks))));
  out->append(blocks);
  out->append(payload.data(), payload.size());
}

Status WriteFrame(Socket* socket, std::string_view payload, Deadline deadline,
                  const TraceContext* trace, const std::uint64_t* correlation) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + kTraceBlockBytes + kCorrelBlockBytes +
                payload.size());
  EncodeFrameEx(payload, trace, correlation, &frame);
  return socket->WriteAll(frame, deadline);
}

Status ParseFrameHeader(std::string_view header, FrameHeader* out) {
  std::string_view cursor(header);
  std::uint32_t length = 0;
  codec::GetFixed32(&cursor, &length);
  codec::GetFixed32(&cursor, &out->masked_crc);
  out->traced = (length & kFrameTraceFlag) != 0;
  out->correlated = (length & kFrameCorrelFlag) != 0;
  out->payload_len = length & ~(kFrameTraceFlag | kFrameCorrelFlag);
  if (out->payload_len > kMaxFrameBytes) {
    return Status::Corruption("frame length " +
                              std::to_string(out->payload_len) +
                              " exceeds limit (desynchronized stream?)");
  }
  return Status::Ok();
}

Status ParseFrameRest(const FrameHeader& header, std::string_view rest,
                      TraceContext* trace,
                      std::optional<std::uint64_t>* correlation,
                      std::string_view* payload) {
  if (trace != nullptr) *trace = TraceContext{};
  if (correlation != nullptr) correlation->reset();
  const std::size_t block_bytes = header.rest_bytes() - header.payload_len;
  std::string_view blocks = rest.substr(0, block_bytes);
  const std::uint32_t blocks_crc = Crc32c(blocks);
  if (header.traced) {
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
    codec::GetFixed64(&blocks, &trace_id);
    codec::GetFixed64(&blocks, &parent_span);
    if (trace != nullptr) {
      trace->trace_id = trace_id;
      trace->parent_span = parent_span;
    }
  }
  if (header.correlated) {
    std::uint64_t id = 0;
    codec::GetFixed64(&blocks, &id);
    if (correlation != nullptr) *correlation = id;
  }
  std::string_view body = rest.substr(block_bytes);
  if (Crc32c(body, blocks_crc) != UnmaskCrc(header.masked_crc)) {
    return Status::Corruption("frame checksum mismatch");
  }
  *payload = body;
  return Status::Ok();
}

Status ReadFrame(Socket* socket, std::string* payload, Deadline deadline,
                 TraceContext* trace,
                 std::optional<std::uint64_t>* correlation) {
  if (trace != nullptr) *trace = TraceContext{};
  if (correlation != nullptr) correlation->reset();
  char header_bytes[kFrameHeaderBytes];
  STRATA_RETURN_IF_ERROR(
      socket->ReadFully(header_bytes, sizeof(header_bytes), deadline));
  FrameHeader header;
  STRATA_RETURN_IF_ERROR(ParseFrameHeader(
      std::string_view(header_bytes, sizeof(header_bytes)), &header));
  std::string rest;
  rest.resize(header.rest_bytes());
  STRATA_RETURN_IF_ERROR(
      socket->ReadFully(rest.data(), rest.size(), deadline));
  std::string_view body;
  STRATA_RETURN_IF_ERROR(
      ParseFrameRest(header, rest, trace, correlation, &body));
  // The payload is the tail of `rest`; move when it is the whole string,
  // assign otherwise.
  if (body.size() == rest.size()) {
    *payload = std::move(rest);
  } else {
    payload->assign(body.data(), body.size());
  }
  return Status::Ok();
}

}  // namespace strata::net
