#include "net/frame.hpp"

#include "common/codec.hpp"
#include "common/crc32.hpp"

namespace strata::net {

void EncodeFrame(std::string_view payload, std::string* out) {
  codec::PutFixed32(out, static_cast<std::uint32_t>(payload.size()));
  codec::PutFixed32(out, MaskCrc(Crc32c(payload)));
  out->append(payload.data(), payload.size());
}

Status WriteFrame(Socket* socket, std::string_view payload, Deadline deadline) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  std::string frame;
  frame.reserve(8 + payload.size());
  EncodeFrame(payload, &frame);
  return socket->WriteAll(frame, deadline);
}

Status ReadFrame(Socket* socket, std::string* payload, Deadline deadline) {
  char header[8];
  STRATA_RETURN_IF_ERROR(socket->ReadFully(header, sizeof(header), deadline));
  std::string_view cursor(header, sizeof(header));
  std::uint32_t length = 0;
  std::uint32_t masked = 0;
  codec::GetFixed32(&cursor, &length);
  codec::GetFixed32(&cursor, &masked);
  if (length > kMaxFrameBytes) {
    return Status::Corruption("frame length " + std::to_string(length) +
                              " exceeds limit (desynchronized stream?)");
  }
  payload->resize(length);
  STRATA_RETURN_IF_ERROR(socket->ReadFully(payload->data(), length, deadline));
  if (Crc32c(*payload) != UnmaskCrc(masked)) {
    return Status::Corruption("frame checksum mismatch");
  }
  return Status::Ok();
}

}  // namespace strata::net
