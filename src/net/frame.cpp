#include "net/frame.hpp"

#include "common/codec.hpp"
#include "common/crc32.hpp"

namespace strata::net {

namespace {
constexpr std::size_t kTraceBlockBytes = 16;  // trace id + parent span, LE
}  // namespace

void EncodeFrame(std::string_view payload, std::string* out) {
  codec::PutFixed32(out, static_cast<std::uint32_t>(payload.size()));
  codec::PutFixed32(out, MaskCrc(Crc32c(payload)));
  out->append(payload.data(), payload.size());
}

void EncodeFrame(std::string_view payload, const TraceContext& trace,
                 std::string* out) {
  if (!trace.sampled()) {
    EncodeFrame(payload, out);
    return;
  }
  codec::PutFixed32(out,
                    static_cast<std::uint32_t>(payload.size()) | kFrameTraceFlag);
  std::string block;
  block.reserve(kTraceBlockBytes);
  codec::PutFixed64(&block, trace.trace_id);
  codec::PutFixed64(&block, trace.parent_span);
  codec::PutFixed32(out, MaskCrc(Crc32c(payload, Crc32c(block))));
  out->append(block);
  out->append(payload.data(), payload.size());
}

Status WriteFrame(Socket* socket, std::string_view payload, Deadline deadline,
                  const TraceContext* trace) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  std::string frame;
  frame.reserve(8 + kTraceBlockBytes + payload.size());
  if (trace != nullptr) {
    EncodeFrame(payload, *trace, &frame);
  } else {
    EncodeFrame(payload, &frame);
  }
  return socket->WriteAll(frame, deadline);
}

Status ReadFrame(Socket* socket, std::string* payload, Deadline deadline,
                 TraceContext* trace) {
  if (trace != nullptr) *trace = TraceContext{};
  char header[8];
  STRATA_RETURN_IF_ERROR(socket->ReadFully(header, sizeof(header), deadline));
  std::string_view cursor(header, sizeof(header));
  std::uint32_t length = 0;
  std::uint32_t masked = 0;
  codec::GetFixed32(&cursor, &length);
  codec::GetFixed32(&cursor, &masked);
  const bool traced = (length & kFrameTraceFlag) != 0;
  length &= ~kFrameTraceFlag;
  if (length > kMaxFrameBytes) {
    return Status::Corruption("frame length " + std::to_string(length) +
                              " exceeds limit (desynchronized stream?)");
  }
  std::uint32_t crc = 0;
  if (traced) {
    char block[kTraceBlockBytes];
    STRATA_RETURN_IF_ERROR(socket->ReadFully(block, sizeof(block), deadline));
    crc = Crc32c(std::string_view(block, sizeof(block)));
    std::string_view block_cursor(block, sizeof(block));
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
    codec::GetFixed64(&block_cursor, &trace_id);
    codec::GetFixed64(&block_cursor, &parent_span);
    if (trace != nullptr) {
      trace->trace_id = trace_id;
      trace->parent_span = parent_span;
    }
  }
  payload->resize(length);
  STRATA_RETURN_IF_ERROR(socket->ReadFully(payload->data(), length, deadline));
  if (Crc32c(*payload, crc) != UnmaskCrc(masked)) {
    return Status::Corruption("frame checksum mismatch");
  }
  return Status::Ok();
}

}  // namespace strata::net
