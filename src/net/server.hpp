// BrokerServer: exposes an embedded ps::Broker over TCP.
//
// Epoll reactor front-end: a small pool of event-loop workers
// (net/reactor.hpp), each owning a set of non-blocking connections
// (net/server_conn.hpp). The accept handler lives on the first loop and
// deals new connections round-robin across the pool; from then on all of a
// connection's I/O, dispatch, and long-poll parking happen on its loop
// thread. No thread ever blocks per-connection: long-poll Fetches park on
// the broker's per-shard waiter lists and are resumed by the reactor when
// data arrives (see ps::Broker::AddDataWaiter), so thousands of idle
// long-polling consumers cost a few fds each, not a thread.
//
// Requests may be pipelined: a v3 client tags frames with correlation ids
// and receives completions out of order; v1/v2 clients get strict
// request-order responses (see server_conn.hpp for the ordering rules).
//
// Consumer-group sessions are tied to the connection: every (group, member)
// joined through a connection is left automatically when that connection
// drops, so a crashed remote consumer triggers a rebalance instead of
// holding its partitions forever.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "pubsub/broker.hpp"

namespace strata::net {

struct ServerContext;
class ServerConnection;
class ReplicationHooks;

struct BrokerServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; the chosen one is available via port().
  std::uint16_t port = 0;
  /// Cap on the server-side long-poll budget a Fetch may request.
  std::chrono::microseconds max_fetch_wait = std::chrono::seconds(5);
  /// A connection whose outbound buffer makes no progress for this long
  /// (client alive but not reading) is dropped.
  std::chrono::microseconds write_timeout = std::chrono::seconds(30);
  /// Optional registry for net.server.* metrics (connections gauge, request
  /// counters by api, bytes in/out, request latency histograms, parked
  /// fetch wake-ups).
  obs::MetricsRegistry* metrics = nullptr;
  /// Epoll event-loop workers serving connections; each connection is
  /// pinned to one loop for its lifetime. Clamped to >= 1. Pair with
  /// ps::BrokerOptions::shards — loops scale the front-end, shards scale
  /// the data plane behind it.
  std::size_t event_loop_workers = 2;
  /// Replication hooks (a repl::ReplicationManager) gating produces on
  /// leadership, clamping fetches to the high watermark, and serving the v4
  /// replication api keys. Must outlive the server. nullptr = standalone
  /// broker, pre-repl behavior.
  ReplicationHooks* repl = nullptr;
  /// How long an acks=quorum produce may wait for the majority before the
  /// server answers Timeout (the append itself already happened, so clients
  /// retrying on it get at-least-once semantics, like any lost response).
  std::chrono::microseconds quorum_ack_timeout = std::chrono::seconds(5);
  /// Highest protocol version admitted in Hello negotiation. Tests pin this
  /// down to emulate older brokers (e.g. 2 = pre-correlation, 3 = pre-repl);
  /// leave at kProtocolVersion otherwise. When < 4 the server also rejects
  /// v4-only constructs outright — replication api keys sever without a
  /// response and a trailing produce acks byte is Corruption — exactly as a
  /// genuine older build would.
  std::uint32_t max_protocol_version = kProtocolVersion;
};

class BrokerServer {
 public:
  /// Serves `broker`, which must outlive the server and stay open while the
  /// server runs (Stop the server before closing the broker).
  explicit BrokerServer(ps::Broker* broker, BrokerServerOptions options = {});
  ~BrokerServer();
  BrokerServer(const BrokerServer&) = delete;
  BrokerServer& operator=(const BrokerServer&) = delete;

  /// Bind, listen, start the event-loop pool, and arm the accept handler.
  [[nodiscard]] Status Start();

  /// Stop accepting, close every connection, stop and join all loops.
  /// Idempotent.
  void Stop();

  /// Port actually bound (resolves an ephemeral bind). Valid after Start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& host() const noexcept {
    return options_.host;
  }

 private:
  /// Accept handler, run on loops_[0]: drains the listener and deals
  /// connections round-robin across the pool.
  void OnAcceptReady();

  ps::Broker* broker_;
  BrokerServerOptions options_;
  std::unique_ptr<ServerContext> ctx_;
  ListenSocket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::size_t next_loop_ = 0;  // touched only by the accept handler

  /// Connection registry: inserted by the accept handler, erased (on the
  /// connection's loop thread) via ServerContext::on_closed.
  std::mutex conns_mu_;
  std::unordered_map<ServerConnection*, std::shared_ptr<ServerConnection>>
      conns_;
};

}  // namespace strata::net
