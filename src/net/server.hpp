// BrokerServer: exposes an embedded ps::Broker over TCP.
//
// Thread-per-connection: the accept loop spawns one handler thread per
// client, which reads framed requests (see net/frame.hpp, net/protocol.hpp)
// and dispatches them onto the broker. The protocol is strictly
// request/response, so a handler thread is either blocked reading the next
// request or executing one — Stop() shuts every connection socket down,
// which unblocks the readers, and long-poll Fetches wait on the broker's
// data signal in short slices so they notice the stop flag promptly.
//
// Consumer-group sessions are tied to the connection: every (group, member)
// joined through a connection is left automatically when that connection
// drops, so a crashed remote consumer triggers a rebalance instead of
// holding its partitions forever.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "pubsub/broker.hpp"

namespace strata::net {

struct BrokerServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; the chosen one is available via port().
  std::uint16_t port = 0;
  /// Cap on the server-side long-poll budget a Fetch may request.
  std::chrono::microseconds max_fetch_wait = std::chrono::seconds(5);
  /// Deadline for writing one response back to a client.
  std::chrono::microseconds write_timeout = std::chrono::seconds(30);
  /// Optional registry for net.server.* metrics (connections gauge, request
  /// counters by api, bytes in/out, request latency histograms).
  obs::MetricsRegistry* metrics = nullptr;
};

class BrokerServer {
 public:
  /// Serves `broker`, which must outlive the server and stay open while the
  /// server runs (Stop the server before closing the broker).
  explicit BrokerServer(ps::Broker* broker, BrokerServerOptions options = {});
  ~BrokerServer();
  BrokerServer(const BrokerServer&) = delete;
  BrokerServer& operator=(const BrokerServer&) = delete;

  /// Bind, listen, and start the accept loop.
  [[nodiscard]] Status Start();

  /// Stop accepting, shut down every connection, join all threads.
  /// Idempotent.
  void Stop();

  /// Port actually bound (resolves an ephemeral bind). Valid after Start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& host() const noexcept {
    return options_.host;
  }

 private:
  struct Connection {
    explicit Connection(Socket s) : socket(std::move(s)) {}
    Socket socket;
    std::thread thread;
    /// Groups joined through this connection; auto-left on disconnect.
    std::vector<std::pair<std::string, ps::MemberId>> memberships;
    /// Negotiated protocol version (1 until the client sends Hello). The
    /// server writes trace-flagged frames only to v2+ peers.
    std::uint32_t peer_version = 1;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Decode, dispatch, and encode one request. The returned status is the
  /// *transport* outcome; application errors travel inside the response.
  [[nodiscard]] Status HandleRequest(Connection* conn,
                                     std::string_view payload,
                                     std::string* response);

  [[nodiscard]] Status HandleFetch(std::string_view body, std::string* out);

  void ReapFinishedLocked();  // REQUIRES mu_

  ps::Broker* broker_;
  BrokerServerOptions options_;
  ListenSocket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  // Metrics handles (null when no registry was given).
  obs::Gauge* connections_gauge_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
};

}  // namespace strata::net
