// Remote pub/sub clients: RemoteBroker / RemoteProducer / RemoteConsumer
// speak the framed protocol (net/protocol.hpp) to a BrokerServer and
// implement the same ps::BrokerClient / ProducerClient / ConsumerClient
// interfaces as the embedded transport, so STRATA pipelines switch between
// in-process and networked brokers without code changes.
//
// Each producer and consumer owns its own connection: this client speaks
// strict request/response (it does not use the protocol's v3 correlation-id
// pipelining), so a consumer's long-poll Fetch would otherwise block every
// producer sharing the socket. Connections reconnect transparently with
// decorrelated-jitter backoff — randomized per connection so a fleet severed
// by one broker restart fans back in instead of reconnecting in lockstep —
// and a request that exhausts its retries surfaces the last transport error
// as a clean Status. Produce retries after a connection drop may duplicate a
// record (at-least-once) — the ack may have been lost, not the write.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "pubsub/client.hpp"
#include "pubsub/consumer.hpp"

namespace strata::net {

struct RemoteOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::chrono::microseconds connect_timeout = std::chrono::seconds(2);
  /// Transport deadline for one request/response round trip, *excluding* any
  /// server-side long-poll budget (which is added on top for Fetch).
  std::chrono::microseconds request_timeout = std::chrono::seconds(10);
  /// Reconnect + retry budget per call: attempts beyond the first.
  int max_retries = 4;
  std::chrono::microseconds backoff_initial = std::chrono::milliseconds(10);
  std::chrono::microseconds backoff_max = std::chrono::seconds(1);
  /// Optional registry for net.client.* metrics (retry/reconnect counters).
  obs::MetricsRegistry* metrics = nullptr;

  // --- Replicated clusters --------------------------------------------------

  /// Seed endpoints of a replicated cluster. When non-empty, producers and
  /// consumers route through a LeaderRouter: they discover the per-topic
  /// leader via ClusterMeta, re-route on NotLeader responses, and fail over
  /// to surviving brokers when the leader dies. `host`/`port` above are
  /// folded in as an extra seed when set. Empty = single-broker behavior.
  std::vector<std::pair<std::string, std::uint16_t>> bootstrap;
  /// Produce durability: kLeader acks once the leader appended, kQuorum
  /// holds the ack until a majority of the cluster replicated the record.
  /// Ignored (with a version-gated downgrade to leader acks) when the
  /// negotiated protocol predates v4.
  ProduceAcks acks = ProduceAcks::kLeader;
  /// How many refresh-and-retry rounds a routed call may spend chasing the
  /// leader across failovers before surfacing the last error.
  int cluster_refresh_rounds = 8;
  /// Pause between unsuccessful routing rounds (an election takes a few
  /// leader_timeout ticks to conclude; hammering meanwhile helps nobody).
  std::chrono::microseconds cluster_refresh_backoff =
      std::chrono::milliseconds(200);
};

/// One framed request/response connection with reconnect-and-retry.
/// Not thread-safe: owned by a single producer/consumer/broker handle.
class ClientConnection {
 public:
  explicit ClientConnection(RemoteOptions options);

  /// Round-trip one request. Reconnects and retries (decorrelated-jitter
  /// backoff, capped at backoff_max) on transport errors when `retry`
  /// allows it; application errors from the server are returned as-is
  /// without retry. `extra_wait` widens the read deadline for server-side
  /// long-polls.
  [[nodiscard]] Status Call(ApiKey api, std::string_view body,
                            std::string* response_body,
                            std::chrono::microseconds extra_wait = {},
                            bool retry = true);

  /// Builds one request body per attempt, *after* the connection (and its
  /// Hello negotiation) is up, so the encoding can depend on the peer's
  /// protocol version — a v4-aware producer downgrades its acks byte away
  /// when talking to an older broker.
  using BodyBuilder = std::function<void(std::uint32_t version, std::string*)>;
  [[nodiscard]] Status Call(ApiKey api, const BodyBuilder& make_body,
                            std::string* response_body,
                            std::chrono::microseconds extra_wait = {},
                            bool retry = true);

  /// Re-point the connection at another broker: closes the socket and
  /// forgets the negotiated version (the next Call reconnects + renegotiates
  /// against the new peer).
  void SetEndpoint(const std::string& host, std::uint16_t port);
  [[nodiscard]] const std::string& host() const noexcept {
    return options_.host;
  }
  [[nodiscard]] std::uint16_t port() const noexcept { return options_.port; }

  /// Version negotiated for the current connection (1 until connected).
  [[nodiscard]] std::uint32_t server_version() const noexcept {
    return server_version_;
  }

  /// Drop the connection; the next Call reconnects.
  void Disconnect() noexcept { socket_.Close(); }

  /// Count one retry against net.client.retries. LeaderRouter runs its own
  /// retry loop (with retry=false Calls) and uses this so router-level
  /// re-routes stay visible under the same metric as connection-level ones.
  void CountRetry() noexcept;

  /// Abort an in-progress retry backoff sleep and make every subsequent
  /// Call fail fast with Status::Closed. The one thread-safe entry point on
  /// this otherwise single-owner class: a closing client must not sit out a
  /// full backoff (up to backoff_max) before noticing it was asked to stop.
  /// An attempt already blocked on the socket still runs to its deadline.
  void Cancel();

 private:
  [[nodiscard]] Status EnsureConnected();
  /// Next retry sleep: uniform in [backoff_initial, 3 * previous), capped
  /// at backoff_max (decorrelated jitter).
  [[nodiscard]] std::chrono::microseconds NextBackoff();
  [[nodiscard]] Status RoundTrip(ApiKey api, std::string_view body,
                                 std::string* response_body,
                                 std::chrono::microseconds extra_wait);
  /// Sends Hello once per connection to learn the peer's protocol version.
  /// A pre-v2 server severs the connection instead of answering; that is
  /// remembered in assume_v1_ so reconnects never pay the probe again.
  [[nodiscard]] Status Negotiate();

  RemoteOptions options_;
  Socket socket_;
  std::string scratch_;
  /// Version negotiated for the *current* connection (1 until Hello runs).
  /// Trace-flagged frames are only sent when this is >= 2.
  std::uint32_t server_version_ = 1;
  /// Set when the peer severed a Hello: it predates version negotiation.
  bool assume_v1_ = false;
  obs::Counter* retries_ = nullptr;
  obs::Counter* reconnects_ = nullptr;

  /// Backoff state. The PRNG is seeded per connection so concurrently
  /// retrying clients spread out instead of thundering back together.
  std::uint64_t rng_state_;
  std::chrono::microseconds prev_backoff_{0};

  /// Cancellation latch: cancelled_ is guarded by cancel_mu_; the cv wakes
  /// a retry sleep early.
  std::mutex cancel_mu_;
  std::condition_variable cancel_cv_;
  bool cancelled_ = false;
};

/// Leader-aware request routing for replicated clusters. Wraps one
/// ClientConnection and re-points it when the cluster's leadership moves:
/// a NotLeader response or a transport failure triggers a ClusterMeta
/// refresh against the known endpoints (bootstrap seeds plus every broker
/// learned from previous refreshes), and the call is retried against the
/// discovered leader — bounded by RemoteOptions::cluster_refresh_rounds.
/// Against a standalone or pre-repl broker the refresh degrades to a no-op
/// (ClusterMeta is unknown there) and calls behave like a plain connection.
/// Not thread-safe, same single-owner contract as ClientConnection.
class LeaderRouter {
 public:
  explicit LeaderRouter(RemoteOptions options);

  /// Round-trip with leader re-routing. `topic` scopes the leader lookup on
  /// refresh (group traffic follows its topic's leader). The body builder
  /// runs per attempt with the freshly negotiated version.
  [[nodiscard]] Status Call(ApiKey api, const std::string& topic,
                            const ClientConnection::BodyBuilder& make_body,
                            std::string* response_body,
                            std::chrono::microseconds extra_wait = {});

  [[nodiscard]] ClientConnection& connection() noexcept { return connection_; }

 private:
  /// Probe the known endpoints for cluster metadata and re-point the
  /// connection at `topic`'s leader (or at any live broker when the cluster
  /// has no view of the topic / does not speak v4).
  void Refresh(const std::string& topic);

  RemoteOptions options_;
  ClientConnection connection_;
  /// Bootstrap seeds plus endpoints learned from ClusterMeta responses.
  std::vector<std::pair<std::string, std::uint16_t>> endpoints_;
  /// Where the next refresh starts probing (rotates past dead brokers).
  std::size_t probe_from_ = 0;
};

class RemoteProducer final : public ps::ProducerClient {
 public:
  explicit RemoteProducer(RemoteOptions options)
      : options_(options), router_(std::move(options)) {}

  using ps::ProducerClient::Send;
  /// At-least-once: a retry after a lost ack may duplicate the record.
  [[nodiscard]] Result<std::pair<int, std::int64_t>> Send(
      const std::string& topic, ps::Record record) override;

 private:
  RemoteOptions options_;
  LeaderRouter router_;
};

class RemoteConsumer final : public ps::ConsumerClient {
 public:
  /// Joins the consumer group over the wire; fails if the topic does not
  /// exist on the server.
  [[nodiscard]] static Result<std::unique_ptr<RemoteConsumer>> Create(
      RemoteOptions remote, const std::string& topic,
      ps::ConsumerOptions options = {});

  ~RemoteConsumer() override;

  /// Same contract as the embedded Consumer::Poll: records, or
  /// Status::Timeout when a non-zero timeout elapses with no data, or an
  /// error when the server is unreachable past the retry budget.
  [[nodiscard]] Result<std::vector<ps::ConsumedRecord>> Poll(
      std::chrono::microseconds timeout) override;
  [[nodiscard]] Status Commit() override;
  [[nodiscard]] Status SeekToEnd() override;
  /// Reposition one assigned partition (see ps::ConsumerClient::Seek).
  /// Validates the offset against the server's current [start, end) bounds
  /// via a Metadata round-trip; a truncated or future offset returns
  /// Status::OutOfRange rather than silently healing.
  [[nodiscard]] Status Seek(const ps::TopicPartition& tp,
                            std::int64_t offset) override;
  using ps::ConsumerClient::Seek;
  [[nodiscard]] const std::vector<ps::TopicPartition>& assignment()
      const noexcept override {
    return assigned_;
  }

 private:
  RemoteConsumer(RemoteOptions remote, std::string topic,
                 ps::ConsumerOptions options)
      : router_(std::move(remote)),
        topic_(std::move(topic)),
        options_(std::move(options)) {}

  /// Heartbeat: pick up the current assignment/generation, establish
  /// positions for newly assigned partitions (committed offset, else the
  /// reset policy against topic metadata), drop uncommitted progress of
  /// revoked partitions.
  [[nodiscard]] Status RefreshAssignment();

  /// Join (or, after a failover wiped the group's server-side state,
  /// re-join) the consumer group on whichever broker the router points at.
  [[nodiscard]] Status JoinOnCurrentLeader();

  /// Routed call bound to this consumer's topic.
  [[nodiscard]] Status Call(ApiKey api, const std::string& body,
                            std::string* response,
                            std::chrono::microseconds extra_wait = {});

  LeaderRouter router_;
  std::string topic_;
  ps::ConsumerOptions options_;
  ps::MemberId member_ = 0;
  bool joined_ = false;
  std::uint64_t generation_ = 0;
  std::vector<ps::TopicPartition> assigned_;
  std::map<ps::TopicPartition, std::int64_t> positions_;
  std::map<ps::TopicPartition, std::int64_t> uncommitted_;
};

/// Factory + admin client for a BrokerServer; the remote counterpart of
/// ps::EmbeddedBrokerClient. Holds its own control connection for topic
/// admin; producers/consumers it creates open their own.
class RemoteBroker final : public ps::BrokerClient {
 public:
  explicit RemoteBroker(RemoteOptions options)
      : options_(options), control_(std::move(options)) {}

  [[nodiscard]] Status CreateTopic(const std::string& name,
                                   const ps::TopicConfig& config) override;
  [[nodiscard]] Result<std::unique_ptr<ps::ProducerClient>> NewProducer()
      override;
  [[nodiscard]] Result<std::unique_ptr<ps::ConsumerClient>> NewConsumer(
      const std::string& topic, ps::ConsumerOptions options) override;

  /// Per-topic partition [start, end) offsets, fetched over the wire.
  [[nodiscard]] Result<MetadataResponse> Metadata(const std::string& topic);

 private:
  RemoteOptions options_;
  ClientConnection control_;
};

}  // namespace strata::net
