#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>

#include "common/logging.hpp"

namespace strata::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
}

EventLoop::~EventLoop() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Start() {
  if (started_) return Status::InvalidArgument("event loop already started");
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::IoError("epoll_create1/eventfd failed");
  }
  // The wake handler just drains the eventfd counter; tasks are picked up
  // by the loop body after handlers run.
  STRATA_RETURN_IF_ERROR(AddFd(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t count = 0;
    while (::read(wake_fd_, &count, sizeof(count)) > 0) {
    }
  }));
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    accepting_tasks_ = true;
  }
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void EventLoop::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(mu_);
    accepting_tasks_ = false;
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  DelFd(wake_fd_);
  started_ = false;
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    if (!accepting_tasks_) return;  // stopped: drop
    tasks_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::PostAndWait(std::function<void()> task) {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto latch = std::make_shared<Latch>();
  bool accepted = false;
  {
    std::lock_guard lock(mu_);
    if (accepting_tasks_) {
      tasks_.push_back([task = std::move(task), latch] {
        task();
        std::lock_guard latch_lock(latch->mu);
        latch->done = true;
        latch->cv.notify_one();
      });
      accepted = true;
    }
  }
  if (!accepted) {
    // Loop not running (never started, or stopped): run inline — the caller
    // is the only thread touching loop-owned state in that case.
    task();
    return;
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  // An accepted task always runs: either in the loop body or in the final
  // drain after the loop exits, so this wait cannot hang.
  std::unique_lock lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
}

Status EventLoop::AddFd(int fd, std::uint32_t events, IoHandler handler) {
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(ADD): ") +
                           std::strerror(errno));
  }
  handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
  return Status::Ok();
}

Status EventLoop::ModFd(int fd, std::uint32_t events) {
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(MOD): ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::DelFd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

std::uint64_t EventLoop::AddTimer(Deadline when, std::function<void()> task) {
  const std::uint64_t id = next_timer_++;
  timers_.emplace(std::make_pair(when, id), std::move(task));
  timer_deadlines_.emplace(id, when);
  return id;
}

void EventLoop::CancelTimer(std::uint64_t id) {
  auto it = timer_deadlines_.find(id);
  if (it == timer_deadlines_.end()) return;
  timers_.erase(std::make_pair(it->second, id));
  timer_deadlines_.erase(it);
}

int EventLoop::NextTimeoutMs() const {
  if (timers_.empty()) return -1;
  const Deadline next = timers_.begin()->first.first;
  const auto now = std::chrono::steady_clock::now();
  if (next <= now) return 0;
  const auto ms = std::chrono::ceil<std::chrono::milliseconds>(next - now);
  return static_cast<int>(std::min<std::int64_t>(ms.count(), 60'000));
}

void EventLoop::RunTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard lock(mu_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::RunDueTimers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    auto node = timers_.extract(timers_.begin());
    timer_deadlines_.erase(node.key().second);
    node.mapped()();
  }
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, NextTimeoutMs());
    if (n < 0 && errno != EINTR) {
      LOG_ERROR << "net: epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < std::max(n, 0); ++i) {
      auto it = handlers_.find(events[i].data.fd);
      if (it == handlers_.end()) continue;  // removed by an earlier handler
      // Copy the shared_ptr: the handler may DelFd itself mid-call.
      std::shared_ptr<IoHandler> handler = it->second;
      (*handler)(events[i].events);
    }
    RunTasks();
    RunDueTimers();
  }
  // Drain tasks queued before the stop flag landed (PostAndWait latches).
  RunTasks();
}

}  // namespace strata::net
