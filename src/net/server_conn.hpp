// Per-connection state machine for the BrokerServer's epoll reactor.
//
// A ServerConnection lives on exactly one EventLoop; every member is
// touched only by that loop's thread, so there are no locks on the hot
// path. The machine is: readable socket -> frame parser (incremental, see
// net/frame.hpp) -> dispatch -> response queue -> writable socket.
//
// Pipelining: a client may send many requests without reading responses.
// Uncorrelated requests (protocol v1/v2 peers) are answered strictly in
// arrival order through a slot queue — a parked long-poll Fetch holds its
// slot and later responses queue behind it. Requests tagged with a v3
// correlation id skip the queue entirely: their responses are written the
// moment they are ready (the id tells the client which request completed),
// so a parked Fetch never delays a pipelined Produce.
//
// Long-poll Fetch never blocks a thread: when a fetch finds no data and has
// wait budget, the connection registers a waiter callback on each broker
// shard involved (ps::Broker::AddDataWaiter) and parks the request. An
// append to any watched shard posts a retry onto the connection's loop; a
// loop timer bounds the wait at the request's deadline.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/trace_context.hpp"
#include "net/protocol.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "pubsub/broker.hpp"

namespace strata::net {

struct BrokerServerOptions;
class ServerConnection;

/// Server-wide state shared (read-only or internally synchronized) by every
/// connection. Owned by the BrokerServer, which outlives all connections.
struct ServerContext {
  ps::Broker* broker = nullptr;
  const BrokerServerOptions* options = nullptr;
  std::atomic<bool>* stopping = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::Gauge* connections_gauge = nullptr;
  obs::Counter* bytes_in = nullptr;
  obs::Counter* bytes_out = nullptr;
  /// Parked long-poll fetch retries (one per shard wake-up that reached a
  /// connection). Bounded per fetch when waits park on healed offsets; the
  /// regression tests assert it stays small.
  obs::Counter* fetch_wakeups = nullptr;
  /// Invoked on the connection's loop thread as the connection's very last
  /// act; must drop the owning reference (may destroy the connection).
  std::function<void(ServerConnection*)> on_closed;
};

class ServerConnection {
 public:
  /// Takes ownership of the accepted socket. `ctx` and `loop` must outlive
  /// the connection.
  ServerConnection(ServerContext* ctx, EventLoop* loop, Socket socket);
  ~ServerConnection();
  ServerConnection(const ServerConnection&) = delete;
  ServerConnection& operator=(const ServerConnection&) = delete;

  /// Register the socket with the loop. Loop thread only.
  [[nodiscard]] Status Register();

  /// Tear down immediately: unregister broker waiters, cancel timers, leave
  /// groups, close the socket, and hand the connection back through
  /// ServerContext::on_closed. Loop thread only; idempotent.
  void Close();

  [[nodiscard]] EventLoop* loop() const noexcept { return loop_; }

 private:
  /// One queued response for an uncorrelated request: filled when the
  /// request completes, flushed strictly in arrival order.
  struct Slot {
    bool done = false;
    std::string frame;  // full wire frame, ready to send
  };

  /// A long-poll Fetch waiting for data: holds its response routing (slot
  /// or correlation id), the broker waiters it registered, and its deadline
  /// timer.
  struct ParkedFetch {
    std::uint64_t id = 0;
    FetchRequest req;
    Deadline deadline;
    TraceContext trace;
    std::optional<std::uint64_t> correlation;
    std::shared_ptr<Slot> slot;  // null for correlated requests
    std::vector<std::pair<std::size_t, ps::Broker::WaiterId>> waiters;
    std::uint64_t timer_id = 0;
  };

  /// An acks=quorum Produce whose append succeeded on the leader, parked
  /// until the replication high watermark covers its offset (or the quorum
  /// ack timeout fires). Mirrors ParkedFetch: holds its response routing
  /// plus the repl commit waiter and the deadline timer.
  struct ParkedProduce {
    std::uint64_t id = 0;
    ProduceResponse resp;
    TraceContext trace;
    std::optional<std::uint64_t> correlation;
    std::shared_ptr<Slot> slot;  // null for correlated requests
    std::uint64_t waiter_id = 0;
    std::uint64_t timer_id = 0;
  };

  /// Bridge for broker waiter callbacks and deferred tasks, which can fire
  /// from any thread and outlive the connection. `loop` is guarded by `mu`
  /// and nulled when the connection closes; `conn` is loop-thread-only and
  /// nulled at the same point, so a late callback or task degrades to a
  /// no-op instead of a use-after-free.
  struct WakeTarget {
    std::mutex mu;
    EventLoop* loop = nullptr;  // guarded by mu
    ServerConnection* conn = nullptr;  // loop thread only
    std::atomic<bool> retry_pending{false};
  };

  void OnIoEvent(std::uint32_t events);
  void OnReadable();
  void OnWritable();
  /// Parse and dispatch every complete frame in the read buffer.
  void ProcessBuffer();
  void DispatchFrame(std::string_view payload, const TraceContext& trace,
                     const std::optional<std::uint64_t>& correlation);

  /// Decode, dispatch, and encode one request. The returned status is the
  /// *transport* outcome; application errors travel inside the response.
  /// Sets `*parked` (and leaves `*response` empty) when a Fetch parked.
  [[nodiscard]] Status HandleRequest(
      std::string_view payload, const TraceContext& trace,
      const std::optional<std::uint64_t>& correlation,
      const std::shared_ptr<Slot>& slot, std::string* response, bool* parked);
  [[nodiscard]] Status HandleFetch(
      std::string_view body, const TraceContext& trace,
      const std::optional<std::uint64_t>& correlation,
      const std::shared_ptr<Slot>& slot, std::string* out, bool* parked);

  /// Re-run every parked fetch after a shard wake-up; completes the ready
  /// ones.
  void RetryParkedFetches();
  /// Complete one parked fetch: unregister waiters, cancel its timer, and
  /// queue the response.
  void FinishParked(std::list<ParkedFetch>::iterator it, const Status& status,
                    const FetchResponse& resp);
  /// Complete every parked fetch with whatever data exists right now (used
  /// when severing, so earlier pipelined fetches still get answered).
  void CompleteAllParked();

  /// Park an applied acks=quorum produce on the replication hooks' commit
  /// waiter; the response goes out when the quorum confirms (or Timeout).
  void ParkProduce(const std::string& topic, const ProduceResponse& resp,
                   const TraceContext& trace,
                   const std::optional<std::uint64_t>& correlation,
                   const std::shared_ptr<Slot>& slot);
  /// Complete one parked produce by id (commit callback or timeout); no-op
  /// when the other of the two already resolved it.
  void FinishParkedProduce(std::uint64_t id, const Status& status);

  /// Frame a response and route it: fill + flush the slot (uncorrelated) or
  /// append straight to the write buffer (correlated).
  void QueueResponse(const std::string& payload, const TraceContext& trace,
                     const std::optional<std::uint64_t>& correlation,
                     const std::shared_ptr<Slot>& slot);
  void FlushSlots();
  /// Push the write buffer out; arms EPOLLOUT when the socket backpressures
  /// and schedules the close once a severed connection fully drains.
  void StartWrite();
  void ArmWrite(bool want);
  void EnsureWriteStallTimer();

  /// Stop reading, answer everything in flight, close once drained.
  void Sever();
  /// Post a Close() onto the loop (safe from inside list iteration).
  void ScheduleClose();

  ServerContext* ctx_;
  EventLoop* loop_;
  Socket socket_;
  std::shared_ptr<WakeTarget> wake_;

  std::string rbuf_;
  std::size_t rpos_ = 0;
  std::string wbuf_;
  std::size_t wpos_ = 0;
  bool want_write_ = false;
  bool severing_ = false;
  bool closed_ = false;
  bool registered_ = false;

  /// Negotiated protocol version (1 until the client sends Hello). Trace
  /// blocks go only to v2+ peers; correlation ids are echoed per-frame.
  std::uint32_t peer_version_ = 1;
  /// Groups joined through this connection; auto-left on disconnect.
  std::vector<std::pair<std::string, ps::MemberId>> memberships_;

  std::deque<std::shared_ptr<Slot>> slots_;
  std::list<ParkedFetch> parked_;
  std::list<ParkedProduce> parked_produce_;
  std::uint64_t next_parked_id_ = 1;

  std::uint64_t write_stall_timer_ = 0;
  std::chrono::steady_clock::time_point last_write_progress_{};
};

}  // namespace strata::net
