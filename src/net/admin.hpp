// AdminServer: a minimal embedded HTTP endpoint for scraping and debugging.
//
// Serves GET requests only, HTTP/1.0 style: one request per connection,
// `Connection: close` on every response. That is all a Prometheus scraper,
// curl, or a load balancer health check needs, and it keeps the server free
// of keep-alive bookkeeping — the handler thread reads one request, writes
// one response, and exits.
//
// Thread-per-connection like BrokerServer, and with the same stop
// discipline: Stop() closes the listener and shuts every connection socket
// down, which unblocks any handler parked in a read.
//
// The admin plane must never endanger the data plane: requests are parsed
// defensively (8 KiB header cap, 5 s read deadline), handler exceptions are
// turned into 500s, and the `net.admin.accept` / `net.admin.write`
// failpoints let chaos tests prove a dying admin endpoint cannot stall or
// crash the pipeline it observes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace strata::net {

struct AdminOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; the chosen one is available via port().
  std::uint16_t port = 0;
  /// Optional registry for net.admin.* metrics (request counters by path).
  obs::MetricsRegistry* metrics = nullptr;
};

class AdminServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Receives the raw query string (bytes after '?', possibly empty).
  /// Runs on the connection's handler thread; must be thread-safe.
  using Handler = std::function<Response(std::string_view query)>;

  explicit AdminServer(AdminOptions options = {});
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Register `handler` for exact-match `path` (e.g. "/metrics").
  /// Must be called before Start().
  void Route(std::string path, Handler handler);

  /// Bind, listen, and start the accept loop.
  [[nodiscard]] Status Start();

  /// Stop accepting, shut down every connection, join all threads.
  /// Idempotent.
  void Stop();

  /// Port actually bound (resolves an ephemeral bind). Valid after Start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& host() const noexcept {
    return options_.host;
  }

 private:
  struct Connection {
    explicit Connection(Socket s) : socket(std::move(s)) {}
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Read the request head (line + headers) up to the size cap / deadline.
  [[nodiscard]] Status ReadRequestHead(Socket* socket, std::string* head);
  [[nodiscard]] Response Dispatch(std::string_view method,
                                  std::string_view target);

  void ReapFinishedLocked();  // REQUIRES mu_

  AdminOptions options_;
  std::map<std::string, Handler> routes_;
  ListenSocket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace strata::net
