#include "net/admin.hpp"

#include <chrono>
#include <exception>

#include "common/logging.hpp"
#include "fault/failpoint.hpp"

namespace strata::net {

namespace {

/// Cap on one request head (line + headers): nothing an admin client sends
/// legitimately comes close, and it bounds memory against garbage peers.
constexpr std::size_t kMaxHeadBytes = 8 * 1024;

/// A peer that connects must deliver its request promptly; this is an admin
/// endpoint, not a long-poll API.
constexpr std::chrono::seconds kReadTimeout{5};
constexpr std::chrono::seconds kWriteTimeout{5};

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void SerializeResponse(const AdminServer::Response& response,
                       std::string* out) {
  out->append("HTTP/1.0 ");
  out->append(std::to_string(response.status));
  out->append(" ");
  out->append(StatusText(response.status));
  out->append("\r\nContent-Type: ");
  out->append(response.content_type);
  out->append("\r\nContent-Length: ");
  out->append(std::to_string(response.body.size()));
  out->append("\r\nConnection: close\r\n\r\n");
  out->append(response.body);
}

}  // namespace

AdminServer::AdminServer(AdminOptions options)
    : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Route(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

Status AdminServer::Start() {
  if (started_) return Status::InvalidArgument("admin server already started");
  auto listener = ListenSocket::Listen(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  LOG_INFO << "net: admin server listening on http://" << options_.host << ":"
           << port_;
  return Status::Ok();
}

void AdminServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard lock(mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    conn->socket.Shutdown();  // unblocks a handler parked in ReadFully
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  started_ = false;
}

void AdminServer::ReapFinishedLocked() {
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load(std::memory_order_acquire)) return false;
    if (conn->thread.joinable()) conn->thread.join();
    return true;
  });
}

void AdminServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.Accept(After(std::chrono::milliseconds(200)));
    if (!accepted.ok()) {
      if (accepted.status().IsTimeout()) continue;
      if (!stopping_.load(std::memory_order_relaxed)) {
        LOG_ERROR << "net: admin accept failed: "
                  << accepted.status().ToString();
      }
      return;
    }
    // Failpoint "net.admin.accept": refuse the connection. The data plane
    // must shrug — scrapers retry, pipelines never notice.
    if (fault::AnyActive() && !fault::Evaluate("net.admin.accept").ok()) {
      continue;  // Socket destructor closes the accepted fd
    }
    auto conn = std::make_unique<Connection>(std::move(*accepted));
    Connection* raw = conn.get();
    {
      std::lock_guard lock(mu_);
      ReapFinishedLocked();
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

Status AdminServer::ReadRequestHead(Socket* socket, std::string* head) {
  // Byte-at-a-time until the blank line: trivially correct, and admin
  // request heads are ~100 bytes — throughput is not a goal here.
  const Deadline deadline = After(kReadTimeout);
  char c = 0;
  while (head->size() < kMaxHeadBytes) {
    STRATA_RETURN_IF_ERROR(socket->ReadFully(&c, 1, deadline));
    head->push_back(c);
    if (head->size() >= 4 && head->compare(head->size() - 4, 4, "\r\n\r\n") == 0) {
      return Status::Ok();
    }
    // Tolerate bare-\n clients (nc, hand-typed requests).
    if (head->size() >= 2 && head->compare(head->size() - 2, 2, "\n\n") == 0) {
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("request head exceeds " +
                                 std::to_string(kMaxHeadBytes) + " bytes");
}

AdminServer::Response AdminServer::Dispatch(std::string_view method,
                                            std::string_view target) {
  if (method != "GET") {
    return Response{405, "text/plain; charset=utf-8",
                    "only GET is supported\n"};
  }
  std::string_view path = target;
  std::string_view query;
  if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }
  const auto it = routes_.find(std::string(path));
  if (it == routes_.end()) {
    std::string body = "not found. routes:\n";
    for (const auto& [route, handler] : routes_) {
      body += "  " + route + "\n";
    }
    return Response{404, "text/plain; charset=utf-8", std::move(body)};
  }
  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetCounter("net.admin.requests", {{"path", std::string(path)}})
        ->Inc();
  }
  try {
    return it->second(query);
  } catch (const std::exception& e) {
    LOG_ERROR << "net: admin handler " << path << " threw: " << e.what();
    return Response{500, "text/plain; charset=utf-8",
                    std::string("handler error: ") + e.what() + "\n"};
  }
}

void AdminServer::ServeConnection(Connection* conn) {
  std::string head;
  Response response;
  if (Status read = ReadRequestHead(&conn->socket, &head); !read.ok()) {
    response = Response{400, "text/plain; charset=utf-8",
                        "bad request: " + read.ToString() + "\n"};
  } else {
    // Request line: METHOD SP TARGET SP VERSION. Headers are ignored.
    const std::size_t line_end = head.find_first_of("\r\n");
    std::string_view line(head.data(), line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos ||
        line.substr(sp2 + 1).rfind("HTTP/", 0) != 0) {
      response = Response{400, "text/plain; charset=utf-8",
                          "malformed request line\n"};
    } else {
      response = Dispatch(line.substr(0, sp1),
                          line.substr(sp1 + 1, sp2 - sp1 - 1));
    }
  }

  std::string wire;
  SerializeResponse(response, &wire);
  // Failpoint "net.admin.write": die between reading the request and
  // answering it — the worst-behaved admin endpoint a client can meet.
  if (fault::AnyActive() && !fault::Evaluate("net.admin.write").ok()) {
    LOG_WARN << "net: dropping admin connection at net.admin.write failpoint";
  } else if (Status written =
                 conn->socket.WriteAll(wire, After(kWriteTimeout));
             !written.ok() && !stopping_.load(std::memory_order_relaxed)) {
    LOG_DEBUG << "net: admin response write failed: " << written.ToString();
  }
  // Shutdown, not Close: Stop() may call Shutdown() on this socket from
  // another thread concurrently, and shutdown(2) only reads the fd while
  // Close() would recycle it under Stop's feet. The fd itself is released
  // by the Connection destructor after its thread is joined (reap or Stop).
  conn->socket.Shutdown();
  conn->done.store(true, std::memory_order_release);
}

}  // namespace strata::net
