#include "net/socket.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/failpoint.hpp"

namespace strata::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

/// Wait for `events` on fd until the deadline. Ok = ready, Timeout = not.
Status PollFor(int fd, short events, Deadline deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline != kNoDeadline) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return Status::Timeout("socket deadline exceeded");
      const auto remaining =
          std::chrono::ceil<std::chrono::milliseconds>(deadline - now);
      timeout_ms = static_cast<int>(
          std::min<std::int64_t>(remaining.count(), 60'000));
    }
    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::Ok();  // readiness (or error, surfaced by I/O)
    if (rc == 0) {
      if (deadline == kNoDeadline) continue;  // spurious cap expiry
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::Timeout("socket deadline exceeded");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, std::uint16_t port,
                               Deadline deadline) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &addrs);
      rc != 0) {
    return Status::Unavailable("getaddrinfo(" + host + "): " +
                               ::gai_strerror(rc));
  }

  Status last = Status::Unavailable("no address for " + host);
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) {
      last = Errno("socket");
      continue;
    }
    if (Status s = SetNonBlocking(sock.fd()); !s.ok()) {
      last = s;
      continue;
    }
    if (::connect(sock.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(addrs);
      return sock;
    }
    if (errno != EINPROGRESS) {
      last = Status::Unavailable("connect(" + host + ":" + service +
                                 "): " + std::strerror(errno));
      continue;
    }
    if (Status s = PollFor(sock.fd(), POLLOUT, deadline); !s.ok()) {
      last = s;
      continue;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      last = Errno("getsockopt(SO_ERROR)");
      continue;
    }
    if (err != 0) {
      last = Status::Unavailable("connect(" + host + ":" + service +
                                 "): " + std::strerror(err));
      continue;
    }
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(addrs);
    return sock;
  }
  ::freeaddrinfo(addrs);
  return last;
}

Status Socket::ReadFully(void* buf, std::size_t n, Deadline deadline) {
  STRATA_FAILPOINT("net.recv");
  auto* out = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd_, out + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) return Status::Unavailable("connection closed by peer");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      STRATA_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline));
      continue;
    }
    return Errno("recv");
  }
  return Status::Ok();
}

Status Socket::WriteAll(std::string_view data, Deadline deadline) {
  // Failpoint "net.send": error sends nothing, torn-write(n) pushes only the
  // first n bytes before failing — the peer sees a truncated frame, the
  // caller sees the injected error.
  Status injected = Status::Ok();
  if (fault::AnyActive()) {
    std::size_t limit = data.size();
    injected = fault::InjectWrite("net.send", &limit);
    data = data.substr(0, limit);
  }
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t rc =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      STRATA_RETURN_IF_ERROR(PollFor(fd_, POLLOUT, deadline));
      continue;
    }
    if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Unavailable("connection closed by peer");
    }
    return Errno("send");
  }
  return injected;
}

Result<std::size_t> Socket::ReadSome(void* buf, std::size_t n) {
  STRATA_FAILPOINT("net.recv");
  for (;;) {
    const ssize_t rc = ::recv(fd_, buf, n, 0);
    if (rc > 0) return static_cast<std::size_t>(rc);
    if (rc == 0) return Status::Unavailable("connection closed by peer");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::size_t{0};
    return Errno("recv");
  }
}

Result<std::size_t> Socket::WriteSome(std::string_view data) {
  Status injected = Status::Ok();
  if (fault::AnyActive()) {
    std::size_t limit = data.size();
    injected = fault::InjectWrite("net.send", &limit);
    data = data.substr(0, limit);
  }
  for (;;) {
    const ssize_t rc = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (rc >= 0) {
      if (!injected.ok()) return injected;
      return static_cast<std::size_t>(rc);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!injected.ok()) return injected;
      return std::size_t{0};
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status::Unavailable("connection closed by peer");
    }
    return Errno("send");
  }
}

void Socket::Shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ListenSocket> ListenSocket::Listen(const std::string& host,
                                          std::uint16_t port, int backlog) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* addrs = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                   service.c_str(), &hints, &addrs);
      rc != 0) {
    return Status::Unavailable("getaddrinfo(" + host + "): " +
                               ::gai_strerror(rc));
  }

  Status last = Status::Unavailable("no bindable address for " + host);
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (Status s = SetNonBlocking(fd); !s.ok()) {
      ::close(fd);
      last = s;
      continue;
    }
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) < 0 ||
        ::listen(fd, backlog) < 0) {
      last = Errno("bind/listen " + host + ":" + service);
      ::close(fd);
      continue;
    }
    // Recover the actual port for ephemeral binds.
    struct sockaddr_storage bound = {};
    socklen_t len = sizeof(bound);
    std::uint16_t actual = port;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
        0) {
      if (bound.ss_family == AF_INET) {
        actual = ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        actual =
            ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    ::freeaddrinfo(addrs);
    ListenSocket listener;
    listener.fd_ = fd;
    listener.port_ = actual;
    return listener;
  }
  ::freeaddrinfo(addrs);
  return last;
}

Result<Socket> ListenSocket::Accept(Deadline deadline) {
  STRATA_FAILPOINT("net.accept");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      if (Status s = SetNonBlocking(fd); !s.ok()) return s;
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      STRATA_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline));
      continue;
    }
    return Errno("accept");
  }
}

void ListenSocket::Close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace strata::net
