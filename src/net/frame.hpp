// Wire framing for the broker protocol: every message travels as
//
//   length(4, LE) | masked_crc32c(4, LE) | [trace(16)] | [correl(8)] | payload
//
// The low 30 bits of the length word are the payload size; the top bit
// (kFrameTraceFlag, protocol v2) marks a fixed 16-byte trace-context block
// (trace id + parent span id, LE) and bit 30 (kFrameCorrelFlag, protocol
// v3) marks an 8-byte correlation id (LE) between the header and the
// payload. The CRC (Castagnoli, masked as in the storage formats) covers
// the optional blocks and the payload, so a flipped bit anywhere surfaces
// as Status::Corruption instead of a garbage decode. Lengths above
// kMaxFrameBytes are rejected before any allocation, which also cheaply
// catches desynchronized streams.
//
// Correlation ids (v3) are what make request pipelining possible: a client
// may send many tagged requests on one connection without reading responses
// in between, and the server echoes each request's id on its response frame
// so replies can complete out of order (a parked long-poll Fetch no longer
// blocks a Produce pipelined behind it).
//
// Interop: a v1 peer reading a flagged frame sees an implausible length and
// drops the connection, so writers only set either flag after Hello
// negotiation (see protocol.hpp) confirms the peer speaks that version.
// Readers here accept all forms unconditionally.
#pragma once

#include <optional>
#include <string>

#include "common/trace_context.hpp"
#include "net/socket.hpp"

namespace strata::net {

/// Upper bound on one frame's payload. Large enough for a 4k x 4k OT frame
/// tuple with headroom; small enough that a corrupt length cannot OOM us.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Length-word bit marking the optional trace-context block (v2 frames).
inline constexpr std::uint32_t kFrameTraceFlag = 0x80000000u;

/// Length-word bit marking the optional correlation-id block (v3 frames).
inline constexpr std::uint32_t kFrameCorrelFlag = 0x40000000u;

/// Fixed sizes of the frame header and its optional blocks.
inline constexpr std::size_t kFrameHeaderBytes = 8;
inline constexpr std::size_t kTraceBlockBytes = 16;
inline constexpr std::size_t kCorrelBlockBytes = 8;

/// Serialize `payload` into a v1 frame appended to `*out`.
void EncodeFrame(std::string_view payload, std::string* out);

/// Serialize a frame appended to `*out`; emits the v2 trace block iff
/// `trace.sampled()`. Only use toward peers that negotiated v2.
void EncodeFrame(std::string_view payload, const TraceContext& trace,
                 std::string* out);

/// General form: emits the trace block iff `trace` is non-null and sampled,
/// and the correlation block iff `correlation` is non-null. Only use the
/// correlation block toward peers that negotiated v3 (or that asked with a
/// correlated frame themselves).
void EncodeFrameEx(std::string_view payload, const TraceContext* trace,
                   const std::uint64_t* correlation, std::string* out);

/// Write one frame. When `trace` is non-null and sampled, the frame carries
/// the v2 trace block — the caller is responsible for having negotiated v2.
/// `correlation` likewise adds the v3 correlation block.
[[nodiscard]] Status WriteFrame(Socket* socket, std::string_view payload,
                                Deadline deadline,
                                const TraceContext* trace = nullptr,
                                const std::uint64_t* correlation = nullptr);

/// Read one frame into `*payload`. Corruption on CRC mismatch or an
/// implausible length; otherwise forwards the socket's status (Unavailable
/// on peer close, Timeout past the deadline). A v2 trace block, when
/// present, is stored into `*trace` (ignored when `trace` is null); callers
/// get a zero context otherwise. A v3 correlation id, when present, is
/// stored into `*correlation` (ignored when null, which also resets it to
/// nullopt on uncorrelated frames).
[[nodiscard]] Status ReadFrame(Socket* socket, std::string* payload,
                               Deadline deadline,
                               TraceContext* trace = nullptr,
                               std::optional<std::uint64_t>* correlation =
                                   nullptr);

// --- Incremental (buffer-based) parsing, for the epoll reactor --------------
//
// The reactor reads whatever bytes the socket has into a connection buffer
// and parses frames out of it without blocking: first the fixed 8-byte
// header (ParseFrameHeader), then — once rest_bytes() more bytes are
// available — the optional blocks and payload (ParseFrameRest).

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint32_t masked_crc = 0;
  bool traced = false;
  bool correlated = false;

  /// Bytes that follow the 8-byte header: optional blocks + payload.
  [[nodiscard]] std::size_t rest_bytes() const noexcept {
    return (traced ? kTraceBlockBytes : 0) +
           (correlated ? kCorrelBlockBytes : 0) + payload_len;
  }
};

/// Parse the fixed header out of exactly kFrameHeaderBytes bytes.
/// Corruption on an implausible length.
[[nodiscard]] Status ParseFrameHeader(std::string_view header,
                                      FrameHeader* out);

/// Parse the optional blocks and payload out of exactly
/// `header.rest_bytes()` bytes, verifying the CRC. `*payload` points into
/// `rest` (zero-copy); it is only valid while the underlying buffer lives.
[[nodiscard]] Status ParseFrameRest(const FrameHeader& header,
                                    std::string_view rest,
                                    TraceContext* trace,
                                    std::optional<std::uint64_t>* correlation,
                                    std::string_view* payload);

}  // namespace strata::net
