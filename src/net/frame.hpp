// Wire framing for the broker protocol: every message travels as
//
//   length(4, LE) | masked_crc32c(4, LE) | payload(length)
//
// The CRC (Castagnoli, masked as in the storage formats) covers the payload,
// so a flipped bit anywhere surfaces as Status::Corruption instead of a
// garbage decode. Lengths above kMaxFrameBytes are rejected before any
// allocation, which also cheaply catches desynchronized streams.
#pragma once

#include <string>

#include "net/socket.hpp"

namespace strata::net {

/// Upper bound on one frame's payload. Large enough for a 4k x 4k OT frame
/// tuple with headroom; small enough that a corrupt length cannot OOM us.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Serialize `payload` into a frame appended to `*out`.
void EncodeFrame(std::string_view payload, std::string* out);

/// Write one frame.
[[nodiscard]] Status WriteFrame(Socket* socket, std::string_view payload,
                                Deadline deadline);

/// Read one frame into `*payload`. Corruption on CRC mismatch or an
/// implausible length; otherwise forwards the socket's status (Unavailable
/// on peer close, Timeout past the deadline).
[[nodiscard]] Status ReadFrame(Socket* socket, std::string* payload,
                               Deadline deadline);

}  // namespace strata::net
