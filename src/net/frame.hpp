// Wire framing for the broker protocol: every message travels as
//
//   length(4, LE) | masked_crc32c(4, LE) | [trace(16)] | payload
//
// The low 31 bits of the length word are the payload size; the top bit
// (kFrameTraceFlag, protocol v2) marks a fixed 16-byte trace-context block
// (trace id + parent span id, LE) between the header and the payload. The
// CRC (Castagnoli, masked as in the storage formats) covers the trace block
// and the payload, so a flipped bit anywhere surfaces as Status::Corruption
// instead of a garbage decode. Lengths above kMaxFrameBytes are rejected
// before any allocation, which also cheaply catches desynchronized streams.
//
// Interop: a v1 peer reading a flagged frame sees an implausible length and
// drops the connection, so writers only set the flag after Hello negotiation
// (see protocol.hpp) confirms the peer speaks v2. Readers here accept both
// forms unconditionally.
#pragma once

#include <string>

#include "common/trace_context.hpp"
#include "net/socket.hpp"

namespace strata::net {

/// Upper bound on one frame's payload. Large enough for a 4k x 4k OT frame
/// tuple with headroom; small enough that a corrupt length cannot OOM us.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Length-word bit marking the optional trace-context block (v2 frames).
inline constexpr std::uint32_t kFrameTraceFlag = 0x80000000u;

/// Serialize `payload` into a v1 frame appended to `*out`.
void EncodeFrame(std::string_view payload, std::string* out);

/// Serialize a frame appended to `*out`; emits the v2 trace block iff
/// `trace.sampled()`. Only use toward peers that negotiated v2.
void EncodeFrame(std::string_view payload, const TraceContext& trace,
                 std::string* out);

/// Write one frame. When `trace` is non-null and sampled, the frame carries
/// the v2 trace block — the caller is responsible for having negotiated v2.
[[nodiscard]] Status WriteFrame(Socket* socket, std::string_view payload,
                                Deadline deadline,
                                const TraceContext* trace = nullptr);

/// Read one frame into `*payload`. Corruption on CRC mismatch or an
/// implausible length; otherwise forwards the socket's status (Unavailable
/// on peer close, Timeout past the deadline). A v2 trace block, when
/// present, is stored into `*trace` (ignored when `trace` is null); callers
/// get a zero context otherwise.
[[nodiscard]] Status ReadFrame(Socket* socket, std::string* payload,
                               Deadline deadline,
                               TraceContext* trace = nullptr);

}  // namespace strata::net
