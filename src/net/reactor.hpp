// A minimal epoll event loop: one thread multiplexing many non-blocking
// file descriptors, plus a cross-thread task queue (Post) and monotonic
// timers. The BrokerServer runs a small pool of these — each connection is
// pinned to one loop, so all of a connection's state is touched by exactly
// one thread and needs no locks.
//
// Threading contract:
//   - Post / PostAndWait are safe from any thread (an eventfd wakes the
//     loop). After Stop(), Post drops the task instead of running it.
//   - AddFd / ModFd / DelFd / AddTimer / CancelTimer must be called on the
//     loop thread (or before Start, while nothing else runs).
//   - Handlers and tasks run on the loop thread; a handler may remove its
//     own fd (even itself) mid-call.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "net/socket.hpp"

namespace strata::net {

class EventLoop {
 public:
  /// Called with the ready epoll event mask (EPOLLIN/EPOLLOUT/EPOLLHUP/...).
  using IoHandler = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawn the loop thread. InvalidArgument when already started; IoError
  /// when the epoll/eventfd plumbing failed at construction.
  [[nodiscard]] Status Start();

  /// Ask the loop to exit, wake it, and join the thread. Pending Post()ed
  /// tasks are drained once after the loop exits (fd handlers no longer
  /// run). Idempotent.
  void Stop();

  /// Queue `task` to run on the loop thread (any thread). After Stop() the
  /// task is dropped — callers must not rely on it running.
  void Post(std::function<void()> task);

  /// Post `task` and block until it ran. Runs inline when the loop is not
  /// running (single-threaded shutdown paths) — never call from the loop
  /// thread itself, which would deadlock.
  void PostAndWait(std::function<void()> task);

  /// Register `fd` for `events` (level-triggered). Loop thread only.
  [[nodiscard]] Status AddFd(int fd, std::uint32_t events, IoHandler handler);
  [[nodiscard]] Status ModFd(int fd, std::uint32_t events);
  void DelFd(int fd);

  /// One-shot timer at absolute monotonic `when`. Loop thread only.
  std::uint64_t AddTimer(Deadline when, std::function<void()> task);
  void CancelTimer(std::uint64_t id);

  [[nodiscard]] bool InLoopThread() const noexcept {
    return thread_.get_id() == std::this_thread::get_id();
  }

 private:
  void Run();
  void RunTasks();
  void RunDueTimers();
  [[nodiscard]] int NextTimeoutMs() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex mu_;  // guards tasks_ and accepting_tasks_
  std::vector<std::function<void()>> tasks_;
  bool accepting_tasks_ = false;  // true only between Start() and Stop()

  // Loop-thread only. Handlers are held by shared_ptr so a handler that
  // removes its own fd mid-call stays alive until it returns.
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;
  std::uint64_t next_timer_ = 1;
  std::map<std::pair<Deadline, std::uint64_t>, std::function<void()>> timers_;
  std::unordered_map<std::uint64_t, Deadline> timer_deadlines_;
};

}  // namespace strata::net
