// Minimal POSIX TCP socket wrapper used by the strata::net wire layer.
//
// Sockets are non-blocking internally; every operation takes an absolute
// monotonic deadline and multiplexes with poll(2), so callers get uniform
// Status::Timeout semantics for connect, read, and write without touching
// SO_RCVTIMEO. kNoDeadline blocks indefinitely (until the peer closes or
// Shutdown() is called from another thread).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace strata::net {

/// Absolute deadline on the monotonic clock.
using Deadline = std::chrono::steady_clock::time_point;

/// Sentinel: no deadline, block until progress or peer close.
inline constexpr Deadline kNoDeadline = Deadline::max();

/// Deadline `timeout` from now.
[[nodiscard]] inline Deadline After(std::chrono::microseconds timeout) {
  return std::chrono::steady_clock::now() + timeout;
}

/// A connected TCP stream. Move-only RAII over the file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connect to host:port (numeric or resolvable name). Status::Timeout when
  /// the deadline expires first, Unavailable when the peer refuses.
  [[nodiscard]] static Result<Socket> Connect(const std::string& host,
                                              std::uint16_t port,
                                              Deadline deadline);

  /// Read exactly `n` bytes into `buf`. Unavailable on orderly peer close,
  /// IoError on transport errors, Timeout past the deadline.
  [[nodiscard]] Status ReadFully(void* buf, std::size_t n, Deadline deadline);

  /// Write all of `data` (handles partial writes; SIGPIPE suppressed).
  [[nodiscard]] Status WriteAll(std::string_view data, Deadline deadline);

  /// One non-blocking read of at most `n` bytes. Returns the byte count
  /// (> 0), 0 when the socket would block, Unavailable on orderly peer
  /// close. Shares the "net.recv" failpoint with ReadFully.
  [[nodiscard]] Result<std::size_t> ReadSome(void* buf, std::size_t n);

  /// One non-blocking write. Returns the bytes accepted (possibly 0 when
  /// the socket would block); Unavailable once the peer is gone. Shares the
  /// "net.send" failpoint (torn writes included) with WriteAll.
  [[nodiscard]] Result<std::size_t> WriteSome(std::string_view data);

  /// Half-close both directions: unblocks any thread inside ReadFully.
  void Shutdown() noexcept;
  void Close() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

/// A listening TCP socket (SO_REUSEADDR, non-blocking accept loop).
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }
  ListenSocket(ListenSocket&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  ListenSocket& operator=(ListenSocket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Bind and listen on host:port. Port 0 picks an ephemeral port; the
  /// chosen one is available via port().
  [[nodiscard]] static Result<ListenSocket> Listen(const std::string& host,
                                                   std::uint16_t port,
                                                   int backlog = 64);

  /// Wait up to `deadline` for one connection. Timeout when none arrives.
  [[nodiscard]] Result<Socket> Accept(Deadline deadline);

  void Close() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace strata::net
