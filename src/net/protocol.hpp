// Request/response codecs of the broker protocol (one level above frames).
//
// Every request payload is `u8 api_key | body`; every response payload is
// `u8 status_code | status_message | body` with the body present only on Ok.
// Bodies use the common little-endian codec primitives, and every decoder
// returns Status::Corruption on truncated or trailing bytes — these bytes
// cross a network, so nothing here may crash or silently mis-parse.
//
// The protocol is strictly request/response per connection (no pipelining);
// clients that want concurrent outstanding calls open more connections,
// exactly like the thread-per-connection server expects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pubsub/broker.hpp"
#include "pubsub/record.hpp"

namespace strata::net {

enum class ApiKey : std::uint8_t {
  kCreateTopic = 1,
  kMetadata = 2,
  kProduce = 3,
  kFetch = 4,
  kJoinGroup = 5,
  kLeaveGroup = 6,
  kHeartbeat = 7,
  kCommitOffset = 8,
  kOffsetFetch = 9,
  kHello = 10,
  // v4 (strata::repl): leader-based partition replication.
  kReplicaFetch = 11,
  kReplicaAck = 12,
  kPromoteLeader = 13,
  kClusterMeta = 14,
};

/// Highest protocol version this build speaks. v1: original framing.
/// v2: frames may carry the optional trace-context block (frame.hpp).
/// v3: frames may carry the optional correlation-id block, enabling request
/// pipelining with out-of-order responses on one connection (frame.hpp).
/// v4: replication api keys (ReplicaFetch/ReplicaAck/PromoteLeader/
/// ClusterMeta) and the optional trailing acks byte on Produce bodies.
inline constexpr std::uint32_t kProtocolVersion = 4;

/// Human-readable name for metrics labels and diagnostics.
[[nodiscard]] const char* ApiKeyName(ApiKey api) noexcept;

// --- request bodies ---------------------------------------------------------

struct CreateTopicRequest {
  std::string topic;
  ps::TopicConfig config;
};

struct MetadataRequest {
  std::string topic;  // empty = all topics
};

/// Produce durability requirement (v4). kLeader acks once the leader has
/// appended; kQuorum holds the response until a majority of the replica set
/// has the record (see src/repl/). Encoded as an optional trailing byte so
/// v4 servers still accept pre-v4 bodies; clients must only send it to
/// servers that negotiated version >= 4.
enum class ProduceAcks : std::uint8_t {
  kLeader = 0,
  kQuorum = 1,
};

struct ProduceRequest {
  std::string topic;
  ps::Record record;
  ProduceAcks acks = ProduceAcks::kLeader;
};

struct FetchRequest {
  struct Entry {
    ps::TopicPartition tp;
    std::int64_t offset = 0;
    std::uint64_t max_records = 256;
  };
  std::vector<Entry> entries;
  /// Server-side long-poll budget when no entry has data (the server honors
  /// the broker's data signal and caps this with its own limit).
  std::uint64_t max_wait_us = 0;
};

struct GroupRequest {  // JoinGroup (member ignored), LeaveGroup, Heartbeat
  std::string group;
  std::string topic;  // JoinGroup only
  ps::MemberId member = 0;
};

struct CommitOffsetRequest {
  std::string group;
  std::vector<std::pair<ps::TopicPartition, std::int64_t>> offsets;
};

struct OffsetFetchRequest {
  std::string group;
  std::vector<ps::TopicPartition> partitions;
};

/// Follower -> leader (v4): pull records for a topic's partitions starting
/// at the follower's local log end. The fetch offset doubles as a cumulative
/// ack ("everything below is appended here") and the request itself is the
/// follower's heartbeat to the leader.
struct ReplicaFetchRequest {
  std::uint32_t follower = 0;  // follower broker id
  std::uint64_t epoch = 0;     // follower's current leader epoch
  std::string topic;
  struct Entry {
    std::uint32_t partition = 0;
    std::int64_t offset = 0;  // follower log end = first offset it wants
    std::uint64_t max_records = 512;
  };
  std::vector<Entry> entries;
};

struct ReplicaFetchResponse {
  std::uint32_t leader = 0;  // leader broker id (as the leader believes)
  std::uint64_t epoch = 0;   // leader epoch; followers adopt newer values
  struct Entry {
    std::uint32_t partition = 0;
    /// First offset of `records`. When it differs from the requested offset
    /// the leader no longer holds that range (retention) — the follower
    /// cannot copy contiguously and must flag the gap.
    std::int64_t base_offset = 0;
    std::int64_t high_watermark = 0;  // quorum-committed end
    std::int64_t log_end = 0;         // leader's local end (lag = end - offset)
    std::vector<ps::Record> records;
  };
  std::vector<Entry> entries;
};

/// Follower -> leader (v4): explicit ack after appending fetched records, so
/// the high watermark advances without waiting for the next fetch round.
struct ReplicaAckRequest {
  std::uint32_t follower = 0;
  std::uint64_t epoch = 0;
  std::string topic;
  struct Entry {
    std::uint32_t partition = 0;
    std::int64_t log_end = 0;  // follower's local end after the append
  };
  std::vector<Entry> entries;
};

struct ReplicaAckResponse {
  struct Entry {
    std::uint32_t partition = 0;
    std::int64_t high_watermark = 0;
  };
  std::vector<Entry> entries;
};

/// New leader -> everyone (v4): announce leadership for a topic at a higher
/// epoch. Receivers with longer logs truncate to the new leader's ends
/// (uncommitted tail of the failed leader) and resume fetching.
struct PromoteLeaderRequest {
  std::uint32_t leader = 0;  // the broker claiming leadership
  std::uint64_t epoch = 0;   // must exceed the receiver's epoch to be adopted
  std::string topic;
  struct Entry {
    std::uint32_t partition = 0;
    std::int64_t log_end = 0;  // new leader's local end (truncation bound)
  };
  std::vector<Entry> entries;
};

struct PromoteLeaderResponse {
  struct Entry {
    std::uint32_t partition = 0;
    std::int64_t log_end = 0;  // receiver's local end after any truncation
  };
  std::vector<Entry> entries;
};

/// Client or peer -> any broker (v4): the cluster metadata view — broker
/// endpoints plus per-topic leader, epoch, in-sync replica set, and
/// per-partition [end, high-watermark]. Producers/consumers use it to find
/// the leader; brokers use it during elections to pick the most caught-up
/// survivor.
struct ClusterMetaRequest {
  std::string topic;  // empty = all replicated topics
};

struct ClusterMetaResponse {
  struct BrokerInfo {
    std::uint32_t id = 0;
    std::string host;
    std::uint16_t port = 0;
  };
  std::vector<BrokerInfo> brokers;
  std::uint32_t self = 0;  // id of the responding broker
  struct Partition {
    std::int64_t log_end = 0;        // responder's local end
    std::int64_t high_watermark = 0;
  };
  struct Topic {
    std::string topic;
    std::uint32_t leader = 0;
    std::uint64_t epoch = 0;
    /// Leader's view of the in-sync replicas (itself included). Followers
    /// answering this request report an empty set — only log_end/epoch from
    /// them is meaningful.
    std::vector<std::uint32_t> isr;
    std::vector<Partition> partitions;
  };
  std::vector<Topic> topics;
};

/// Version negotiation, sent once per connection before other requests. A
/// pre-v2 server does not know the api key and severs the connection without
/// a response; clients treat that as "peer speaks v1" and reconnect (see
/// ClientConnection::EnsureConnected).
struct HelloRequest {
  std::uint32_t max_version = kProtocolVersion;
};

// --- response bodies --------------------------------------------------------

struct TopicMetadata {
  std::string topic;
  /// Per-partition [start, end) offsets.
  std::vector<std::pair<std::int64_t, std::int64_t>> partitions;
};

struct MetadataResponse {
  std::vector<TopicMetadata> topics;
};

struct ProduceResponse {
  int partition = 0;
  std::int64_t offset = 0;
};

struct FetchResponse {
  struct Entry {
    ps::TopicPartition tp;
    std::vector<ps::ConsumedRecord> records;
    std::int64_t next_offset = 0;
  };
  std::vector<Entry> entries;
  [[nodiscard]] bool empty() const noexcept {
    for (const Entry& e : entries) {
      if (!e.records.empty()) return false;
    }
    return true;
  }
};

struct JoinGroupResponse {
  ps::MemberId member = 0;
};

struct HeartbeatResponse {
  std::uint64_t generation = 0;
  std::vector<ps::TopicPartition> assignment;
};

struct OffsetFetchResponse {
  /// Parallel to the request's partitions; kNone = no committed offset.
  static constexpr std::int64_t kNone = -1;
  std::vector<std::int64_t> offsets;
};

struct HelloResponse {
  /// min(request.max_version, kProtocolVersion): the version both ends speak.
  std::uint32_t version = 1;
};

// --- envelope ---------------------------------------------------------------

/// `u8 api_key | body` -> request payload.
void EncodeRequest(ApiKey api, std::string_view body, std::string* out);
/// Splits a request payload; Corruption on an empty payload or unknown key.
[[nodiscard]] Status DecodeRequest(std::string_view payload, ApiKey* api,
                                   std::string_view* body);

/// `u8 code | message | body` -> response payload.
void EncodeResponse(const Status& status, std::string_view body,
                    std::string* out);
/// On Ok fills `*body`; otherwise returns the transported error Status.
[[nodiscard]] Status DecodeResponse(std::string_view payload,
                                    std::string_view* body);

// --- body codecs (encode infallible; decode returns Corruption) -------------

void EncodeCreateTopic(const CreateTopicRequest& req, std::string* out);
[[nodiscard]] Status DecodeCreateTopic(std::string_view in,
                                       CreateTopicRequest* out);

void EncodeMetadataRequest(const MetadataRequest& req, std::string* out);
[[nodiscard]] Status DecodeMetadataRequest(std::string_view in,
                                           MetadataRequest* out);
void EncodeMetadataResponse(const MetadataResponse& resp, std::string* out);
[[nodiscard]] Status DecodeMetadataResponse(std::string_view in,
                                            MetadataResponse* out);

/// Pre-v4 body layout (no acks byte) — what v1..v3 peers expect.
void EncodeProduceRequest(const ProduceRequest& req, std::string* out);
/// v4 body layout: appends the acks byte. Only send to servers that
/// negotiated version >= 4 (older ones reject the trailing byte).
void EncodeProduceRequestV4(const ProduceRequest& req, std::string* out);
/// Accepts both layouts; `accept_acks` = false emulates a pre-v4 server
/// (strict: a trailing acks byte is Corruption, as it would be on the wire).
[[nodiscard]] Status DecodeProduceRequest(std::string_view in,
                                          ProduceRequest* out,
                                          bool accept_acks = true);
void EncodeProduceResponse(const ProduceResponse& resp, std::string* out);
[[nodiscard]] Status DecodeProduceResponse(std::string_view in,
                                           ProduceResponse* out);

void EncodeFetchRequest(const FetchRequest& req, std::string* out);
[[nodiscard]] Status DecodeFetchRequest(std::string_view in, FetchRequest* out);
void EncodeFetchResponse(const FetchResponse& resp, std::string* out);
[[nodiscard]] Status DecodeFetchResponse(std::string_view in,
                                         FetchResponse* out);

void EncodeGroupRequest(const GroupRequest& req, std::string* out);
[[nodiscard]] Status DecodeGroupRequest(std::string_view in, GroupRequest* out);

void EncodeJoinGroupResponse(const JoinGroupResponse& resp, std::string* out);
[[nodiscard]] Status DecodeJoinGroupResponse(std::string_view in,
                                             JoinGroupResponse* out);

void EncodeHeartbeatResponse(const HeartbeatResponse& resp, std::string* out);
[[nodiscard]] Status DecodeHeartbeatResponse(std::string_view in,
                                             HeartbeatResponse* out);

void EncodeCommitOffsetRequest(const CommitOffsetRequest& req,
                               std::string* out);
[[nodiscard]] Status DecodeCommitOffsetRequest(std::string_view in,
                                               CommitOffsetRequest* out);

void EncodeOffsetFetchRequest(const OffsetFetchRequest& req, std::string* out);
[[nodiscard]] Status DecodeOffsetFetchRequest(std::string_view in,
                                              OffsetFetchRequest* out);
void EncodeOffsetFetchResponse(const OffsetFetchResponse& resp,
                               std::string* out);
[[nodiscard]] Status DecodeOffsetFetchResponse(std::string_view in,
                                               OffsetFetchResponse* out);

void EncodeReplicaFetchRequest(const ReplicaFetchRequest& req,
                               std::string* out);
[[nodiscard]] Status DecodeReplicaFetchRequest(std::string_view in,
                                               ReplicaFetchRequest* out);
void EncodeReplicaFetchResponse(const ReplicaFetchResponse& resp,
                                std::string* out);
[[nodiscard]] Status DecodeReplicaFetchResponse(std::string_view in,
                                                ReplicaFetchResponse* out);

void EncodeReplicaAckRequest(const ReplicaAckRequest& req, std::string* out);
[[nodiscard]] Status DecodeReplicaAckRequest(std::string_view in,
                                             ReplicaAckRequest* out);
void EncodeReplicaAckResponse(const ReplicaAckResponse& resp,
                              std::string* out);
[[nodiscard]] Status DecodeReplicaAckResponse(std::string_view in,
                                              ReplicaAckResponse* out);

void EncodePromoteLeaderRequest(const PromoteLeaderRequest& req,
                                std::string* out);
[[nodiscard]] Status DecodePromoteLeaderRequest(std::string_view in,
                                                PromoteLeaderRequest* out);
void EncodePromoteLeaderResponse(const PromoteLeaderResponse& resp,
                                 std::string* out);
[[nodiscard]] Status DecodePromoteLeaderResponse(std::string_view in,
                                                 PromoteLeaderResponse* out);

void EncodeClusterMetaRequest(const ClusterMetaRequest& req, std::string* out);
[[nodiscard]] Status DecodeClusterMetaRequest(std::string_view in,
                                              ClusterMetaRequest* out);
void EncodeClusterMetaResponse(const ClusterMetaResponse& resp,
                               std::string* out);
[[nodiscard]] Status DecodeClusterMetaResponse(std::string_view in,
                                               ClusterMetaResponse* out);

void EncodeHelloRequest(const HelloRequest& req, std::string* out);
[[nodiscard]] Status DecodeHelloRequest(std::string_view in,
                                        HelloRequest* out);
void EncodeHelloResponse(const HelloResponse& resp, std::string* out);
[[nodiscard]] Status DecodeHelloResponse(std::string_view in,
                                         HelloResponse* out);

}  // namespace strata::net
