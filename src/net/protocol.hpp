// Request/response codecs of the broker protocol (one level above frames).
//
// Every request payload is `u8 api_key | body`; every response payload is
// `u8 status_code | status_message | body` with the body present only on Ok.
// Bodies use the common little-endian codec primitives, and every decoder
// returns Status::Corruption on truncated or trailing bytes — these bytes
// cross a network, so nothing here may crash or silently mis-parse.
//
// The protocol is strictly request/response per connection (no pipelining);
// clients that want concurrent outstanding calls open more connections,
// exactly like the thread-per-connection server expects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pubsub/broker.hpp"
#include "pubsub/record.hpp"

namespace strata::net {

enum class ApiKey : std::uint8_t {
  kCreateTopic = 1,
  kMetadata = 2,
  kProduce = 3,
  kFetch = 4,
  kJoinGroup = 5,
  kLeaveGroup = 6,
  kHeartbeat = 7,
  kCommitOffset = 8,
  kOffsetFetch = 9,
  kHello = 10,
};

/// Highest protocol version this build speaks. v1: original framing.
/// v2: frames may carry the optional trace-context block (frame.hpp).
/// v3: frames may carry the optional correlation-id block, enabling request
/// pipelining with out-of-order responses on one connection (frame.hpp).
inline constexpr std::uint32_t kProtocolVersion = 3;

/// Human-readable name for metrics labels and diagnostics.
[[nodiscard]] const char* ApiKeyName(ApiKey api) noexcept;

// --- request bodies ---------------------------------------------------------

struct CreateTopicRequest {
  std::string topic;
  ps::TopicConfig config;
};

struct MetadataRequest {
  std::string topic;  // empty = all topics
};

struct ProduceRequest {
  std::string topic;
  ps::Record record;
};

struct FetchRequest {
  struct Entry {
    ps::TopicPartition tp;
    std::int64_t offset = 0;
    std::uint64_t max_records = 256;
  };
  std::vector<Entry> entries;
  /// Server-side long-poll budget when no entry has data (the server honors
  /// the broker's data signal and caps this with its own limit).
  std::uint64_t max_wait_us = 0;
};

struct GroupRequest {  // JoinGroup (member ignored), LeaveGroup, Heartbeat
  std::string group;
  std::string topic;  // JoinGroup only
  ps::MemberId member = 0;
};

struct CommitOffsetRequest {
  std::string group;
  std::vector<std::pair<ps::TopicPartition, std::int64_t>> offsets;
};

struct OffsetFetchRequest {
  std::string group;
  std::vector<ps::TopicPartition> partitions;
};

/// Version negotiation, sent once per connection before other requests. A
/// pre-v2 server does not know the api key and severs the connection without
/// a response; clients treat that as "peer speaks v1" and reconnect (see
/// ClientConnection::EnsureConnected).
struct HelloRequest {
  std::uint32_t max_version = kProtocolVersion;
};

// --- response bodies --------------------------------------------------------

struct TopicMetadata {
  std::string topic;
  /// Per-partition [start, end) offsets.
  std::vector<std::pair<std::int64_t, std::int64_t>> partitions;
};

struct MetadataResponse {
  std::vector<TopicMetadata> topics;
};

struct ProduceResponse {
  int partition = 0;
  std::int64_t offset = 0;
};

struct FetchResponse {
  struct Entry {
    ps::TopicPartition tp;
    std::vector<ps::ConsumedRecord> records;
    std::int64_t next_offset = 0;
  };
  std::vector<Entry> entries;
  [[nodiscard]] bool empty() const noexcept {
    for (const Entry& e : entries) {
      if (!e.records.empty()) return false;
    }
    return true;
  }
};

struct JoinGroupResponse {
  ps::MemberId member = 0;
};

struct HeartbeatResponse {
  std::uint64_t generation = 0;
  std::vector<ps::TopicPartition> assignment;
};

struct OffsetFetchResponse {
  /// Parallel to the request's partitions; kNone = no committed offset.
  static constexpr std::int64_t kNone = -1;
  std::vector<std::int64_t> offsets;
};

struct HelloResponse {
  /// min(request.max_version, kProtocolVersion): the version both ends speak.
  std::uint32_t version = 1;
};

// --- envelope ---------------------------------------------------------------

/// `u8 api_key | body` -> request payload.
void EncodeRequest(ApiKey api, std::string_view body, std::string* out);
/// Splits a request payload; Corruption on an empty payload or unknown key.
[[nodiscard]] Status DecodeRequest(std::string_view payload, ApiKey* api,
                                   std::string_view* body);

/// `u8 code | message | body` -> response payload.
void EncodeResponse(const Status& status, std::string_view body,
                    std::string* out);
/// On Ok fills `*body`; otherwise returns the transported error Status.
[[nodiscard]] Status DecodeResponse(std::string_view payload,
                                    std::string_view* body);

// --- body codecs (encode infallible; decode returns Corruption) -------------

void EncodeCreateTopic(const CreateTopicRequest& req, std::string* out);
[[nodiscard]] Status DecodeCreateTopic(std::string_view in,
                                       CreateTopicRequest* out);

void EncodeMetadataRequest(const MetadataRequest& req, std::string* out);
[[nodiscard]] Status DecodeMetadataRequest(std::string_view in,
                                           MetadataRequest* out);
void EncodeMetadataResponse(const MetadataResponse& resp, std::string* out);
[[nodiscard]] Status DecodeMetadataResponse(std::string_view in,
                                            MetadataResponse* out);

void EncodeProduceRequest(const ProduceRequest& req, std::string* out);
[[nodiscard]] Status DecodeProduceRequest(std::string_view in,
                                          ProduceRequest* out);
void EncodeProduceResponse(const ProduceResponse& resp, std::string* out);
[[nodiscard]] Status DecodeProduceResponse(std::string_view in,
                                           ProduceResponse* out);

void EncodeFetchRequest(const FetchRequest& req, std::string* out);
[[nodiscard]] Status DecodeFetchRequest(std::string_view in, FetchRequest* out);
void EncodeFetchResponse(const FetchResponse& resp, std::string* out);
[[nodiscard]] Status DecodeFetchResponse(std::string_view in,
                                         FetchResponse* out);

void EncodeGroupRequest(const GroupRequest& req, std::string* out);
[[nodiscard]] Status DecodeGroupRequest(std::string_view in, GroupRequest* out);

void EncodeJoinGroupResponse(const JoinGroupResponse& resp, std::string* out);
[[nodiscard]] Status DecodeJoinGroupResponse(std::string_view in,
                                             JoinGroupResponse* out);

void EncodeHeartbeatResponse(const HeartbeatResponse& resp, std::string* out);
[[nodiscard]] Status DecodeHeartbeatResponse(std::string_view in,
                                             HeartbeatResponse* out);

void EncodeCommitOffsetRequest(const CommitOffsetRequest& req,
                               std::string* out);
[[nodiscard]] Status DecodeCommitOffsetRequest(std::string_view in,
                                               CommitOffsetRequest* out);

void EncodeOffsetFetchRequest(const OffsetFetchRequest& req, std::string* out);
[[nodiscard]] Status DecodeOffsetFetchRequest(std::string_view in,
                                              OffsetFetchRequest* out);
void EncodeOffsetFetchResponse(const OffsetFetchResponse& resp,
                               std::string* out);
[[nodiscard]] Status DecodeOffsetFetchResponse(std::string_view in,
                                               OffsetFetchResponse* out);

void EncodeHelloRequest(const HelloRequest& req, std::string* out);
[[nodiscard]] Status DecodeHelloRequest(std::string_view in,
                                        HelloRequest* out);
void EncodeHelloResponse(const HelloResponse& resp, std::string* out);
[[nodiscard]] Status DecodeHelloResponse(std::string_view in,
                                         HelloResponse* out);

}  // namespace strata::net
