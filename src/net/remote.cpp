#include "net/remote.hpp"

#include <algorithm>
#include <thread>

#include "common/logging.hpp"
#include "common/trace_context.hpp"
#include "net/frame.hpp"
#include "obs/trace.hpp"

namespace strata::net {

namespace {

/// Ceiling on one Fetch long-poll slice. Poll() loops slices up to its own
/// deadline, re-heartbeating between them so rebalances are noticed even
/// while blocked on an idle topic.
constexpr std::chrono::microseconds kFetchSlice{200'000};

bool IsTransportError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kIoError:
    case StatusCode::kTimeout:
    case StatusCode::kCorruption:
      return true;
    default:
      return false;
  }
}

/// True for errors the *server* answered with (they crossed the wire inside
/// a response frame and carry the "server: " marker) — as opposed to
/// transport faults of the connection itself.
bool IsServerError(const Status& status) {
  return !status.ok() && status.message().rfind("server: ", 0) == 0;
}

}  // namespace

// --- ClientConnection -------------------------------------------------------

ClientConnection::ClientConnection(RemoteOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    retries_ = options_.metrics->GetCounter("net.client.retries");
    reconnects_ = options_.metrics->GetCounter("net.client.connects");
  }
  // Seed from the object address and the clock: cheap entropy that differs
  // across the very clients that would otherwise retry in lockstep.
  rng_state_ = static_cast<std::uint64_t>(
                   std::chrono::steady_clock::now().time_since_epoch().count()) ^
               (reinterpret_cast<std::uintptr_t>(this) * 0x9e3779b97f4a7c15ull);
  if (rng_state_ == 0) rng_state_ = 0x9e3779b97f4a7c15ull;
}

std::chrono::microseconds ClientConnection::NextBackoff() {
  // xorshift64*: tiny, stateful, good enough for jitter.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  const std::uint64_t r = rng_state_ * 0x2545f4914f6cdd1dull;

  const std::int64_t lo = std::max<std::int64_t>(1, options_.backoff_initial.count());
  const std::int64_t hi = std::max(lo + 1, prev_backoff_.count() * 3);
  std::chrono::microseconds next{
      lo + static_cast<std::int64_t>(r % static_cast<std::uint64_t>(hi - lo))};
  next = std::min(next, options_.backoff_max);
  prev_backoff_ = next;
  return next;
}

void ClientConnection::Cancel() {
  {
    std::lock_guard lock(cancel_mu_);
    cancelled_ = true;
  }
  cancel_cv_.notify_all();
}

Status ClientConnection::EnsureConnected() {
  if (socket_.valid()) return Status::Ok();
  auto socket =
      Socket::Connect(options_.host, options_.port, After(options_.connect_timeout));
  if (!socket.ok()) return socket.status();
  socket_ = std::move(*socket);
  server_version_ = 1;
  if (reconnects_ != nullptr) reconnects_->Inc();
  return Negotiate();
}

Status ClientConnection::Negotiate() {
  if (assume_v1_ || kProtocolVersion < 2) return Status::Ok();
  std::string body;
  EncodeHelloRequest(HelloRequest{}, &body);
  scratch_.clear();
  EncodeRequest(ApiKey::kHello, body, &scratch_);
  const Deadline deadline = After(options_.request_timeout);
  Status status = WriteFrame(&socket_, scratch_, deadline);
  std::string payload;
  if (status.ok()) status = ReadFrame(&socket_, &payload, deadline);
  if (!status.ok()) {
    // A pre-v2 server severs the connection on the unknown api key instead
    // of responding. Remember that and reconnect plain-v1; do not surface
    // the probe failure — the caller's request is about to retry anyway.
    assume_v1_ = true;
    socket_.Close();
    LOG_DEBUG << "net: hello severed (" << status.ToString()
              << "), assuming v1 peer";
    return EnsureConnected();
  }
  std::string_view response_body;
  const Status app = DecodeResponse(payload, &response_body);
  HelloResponse resp;
  if (app.ok() && DecodeHelloResponse(response_body, &resp).ok()) {
    server_version_ = std::min(resp.version, kProtocolVersion);
  }
  // An application error leaves the connection usable at v1.
  return Status::Ok();
}

Status ClientConnection::RoundTrip(ApiKey api, std::string_view body,
                                   std::string* response_body,
                                   std::chrono::microseconds extra_wait) {
  scratch_.clear();
  EncodeRequest(api, body, &scratch_);
  const Deadline deadline = After(options_.request_timeout + extra_wait);
  // Tag the frame with the caller's active span (if any) so the server's
  // dispatch span joins the same trace. Only v2+ peers understand the flag.
  const TraceContext* trace = nullptr;
  TraceContext slot;
  if (server_version_ >= 2 && obs::TracingEnabled()) {
    slot = ThreadTraceSlot();
    if (slot.sampled()) trace = &slot;
  }
  STRATA_RETURN_IF_ERROR(WriteFrame(&socket_, scratch_, deadline, trace));

  std::string payload;
  STRATA_RETURN_IF_ERROR(ReadFrame(&socket_, &payload, deadline));

  std::string_view out;
  Status app = DecodeResponse(payload, &out);
  // The application error already crossed the wire intact; make sure the
  // retry loop treats it as final even if its code overlaps a transport one.
  if (!app.ok()) return Status(app.code(), "server: " + app.message());
  response_body->assign(out.data(), out.size());
  return Status::Ok();
}

Status ClientConnection::Call(ApiKey api, std::string_view body,
                              std::string* response_body,
                              std::chrono::microseconds extra_wait,
                              bool retry) {
  return Call(
      api,
      [body](std::uint32_t /*version*/, std::string* out) {
        out->assign(body.data(), body.size());
      },
      response_body, extra_wait, retry);
}

Status ClientConnection::Call(ApiKey api, const BodyBuilder& make_body,
                              std::string* response_body,
                              std::chrono::microseconds extra_wait,
                              bool retry) {
  {
    std::lock_guard lock(cancel_mu_);
    if (cancelled_) return Status::Closed("client connection cancelled");
  }
  prev_backoff_ = options_.backoff_initial;  // each Call restarts the ladder
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      if (!retry) break;
      if (retries_ != nullptr) retries_->Inc();
      // Decorrelated-jitter sleep, abortable by Cancel(): a closing client
      // must not sit out the full backoff before noticing.
      const auto backoff = NextBackoff();
      std::unique_lock lock(cancel_mu_);
      if (cancel_cv_.wait_for(lock, backoff, [this] { return cancelled_; })) {
        return Status::Closed("client connection cancelled");
      }
    }
    last = EnsureConnected();
    if (!last.ok()) continue;  // connect failures are always retryable

    // Built after Hello so the encoding can adapt to the peer's version.
    std::string body;
    make_body(server_version_, &body);
    last = RoundTrip(api, body, response_body, extra_wait);
    if (last.ok()) return last;
    if (!IsTransportError(last) || IsServerError(last)) {
      return last;  // application error from the server: never retry
    }
    // Transport fault: the stream cannot be trusted (a timeout may have left
    // half a frame in flight). Reconnect on the next attempt.
    socket_.Close();
    LOG_DEBUG << "net: " << ApiKeyName(api)
              << " transport error, will retry: " << last.ToString();
  }
  return last;
}

void ClientConnection::SetEndpoint(const std::string& host,
                                   std::uint16_t port) {
  if (host == options_.host && port == options_.port) return;
  socket_.Close();
  options_.host = host;
  options_.port = port;
  server_version_ = 1;
  assume_v1_ = false;  // the new peer negotiates from scratch
}

void ClientConnection::CountRetry() noexcept {
  if (retries_ != nullptr) retries_->Inc();
}

// --- LeaderRouter -----------------------------------------------------------

LeaderRouter::LeaderRouter(RemoteOptions options)
    : options_(options), connection_(std::move(options)) {
  for (const auto& endpoint : options_.bootstrap) {
    if (std::find(endpoints_.begin(), endpoints_.end(), endpoint) ==
        endpoints_.end()) {
      endpoints_.push_back(endpoint);
    }
  }
  const std::pair<std::string, std::uint16_t> primary{options_.host,
                                                      options_.port};
  if (primary.second != 0 &&
      std::find(endpoints_.begin(), endpoints_.end(), primary) ==
          endpoints_.end()) {
    endpoints_.push_back(primary);
  }
  // Start on a seed, not on a possibly-zero RemoteOptions::port.
  if (options_.port == 0 && !endpoints_.empty()) {
    connection_.SetEndpoint(endpoints_.front().first,
                            endpoints_.front().second);
  }
}

void LeaderRouter::Refresh(const std::string& topic) {
  if (endpoints_.empty()) return;  // single-endpoint client: nothing to probe
  ClusterMetaRequest req;
  req.topic = topic;
  std::string body;
  EncodeClusterMetaRequest(req, &body);

  const std::vector<std::pair<std::string, std::uint16_t>> candidates =
      endpoints_;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& candidate =
        candidates[(probe_from_ + i) % candidates.size()];
    connection_.SetEndpoint(candidate.first, candidate.second);
    std::string response;
    const Status status = connection_.Call(ApiKey::kClusterMeta, body,
                                           &response, {}, /*retry=*/false);
    if (!status.ok() && !IsServerError(status)) continue;  // dead broker
    probe_from_ = (probe_from_ + i) % candidates.size();
    if (!status.ok()) {
      // Live, but no cluster view (standalone / pre-repl broker answering
      // InvalidArgument, or a pre-v4 build severing the probe): stay here.
      return;
    }
    ClusterMetaResponse meta;
    if (!DecodeClusterMetaResponse(response, &meta).ok()) return;
    // Fold every advertised broker into the endpoint pool; failover may
    // promote a broker that was never in the bootstrap list.
    for (const auto& broker : meta.brokers) {
      const std::pair<std::string, std::uint16_t> endpoint{broker.host,
                                                           broker.port};
      if (endpoint.second != 0 &&
          std::find(endpoints_.begin(), endpoints_.end(), endpoint) ==
              endpoints_.end()) {
        endpoints_.push_back(endpoint);
      }
    }
    for (const auto& t : meta.topics) {
      if (t.topic != topic) continue;
      for (const auto& broker : meta.brokers) {
        if (broker.id == t.leader && broker.port != 0) {
          LOG_DEBUG << "net: routing " << topic << " to leader " << t.leader
                    << " at " << broker.host << ":" << broker.port;
          connection_.SetEndpoint(broker.host, broker.port);
          return;
        }
      }
    }
    return;  // topic unknown to the cluster: any live broker will do
  }
  ++probe_from_;  // everything dead: start the next sweep elsewhere
}

Status LeaderRouter::Call(ApiKey api, const std::string& topic,
                          const ClientConnection::BodyBuilder& make_body,
                          std::string* response_body,
                          std::chrono::microseconds extra_wait) {
  const int rounds = std::max(1, options_.cluster_refresh_rounds);
  Status last = Status::Ok();
  for (int round = 0; round < rounds; ++round) {
    if (round > 0) {
      // Give an in-flight election time to conclude before re-probing.
      std::this_thread::sleep_for(options_.cluster_refresh_backoff);
    }
    if (round > 0) connection_.CountRetry();
    last = connection_.Call(api, make_body, response_body, extra_wait,
                            /*retry=*/endpoints_.empty());
    if (last.ok() || last.IsClosed()) return last;
    if (IsServerError(last) && !last.IsNotLeader()) {
      return last;  // genuine application error: re-routing cannot help
    }
    // NotLeader or transport fault: chase the (possibly new) leader.
    Refresh(topic);
  }
  return last;
}

// --- RemoteProducer ---------------------------------------------------------

Result<std::pair<int, std::int64_t>> RemoteProducer::Send(
    const std::string& topic, ps::Record record) {
  ProduceRequest req;
  req.topic = topic;
  req.record = std::move(record);
  req.acks = options_.acks;
  std::string response;
  // Encoded per attempt: only a v4 peer understands the trailing acks byte,
  // so against an older broker the request downgrades to the legacy layout
  // (and therefore to leader acks) instead of being rejected.
  STRATA_RETURN_IF_ERROR(router_.Call(
      ApiKey::kProduce, topic,
      [&req](std::uint32_t version, std::string* out) {
        if (version >= 4) {
          EncodeProduceRequestV4(req, out);
        } else {
          EncodeProduceRequest(req, out);
        }
      },
      &response));
  ProduceResponse resp;
  STRATA_RETURN_IF_ERROR(DecodeProduceResponse(response, &resp));
  return std::pair<int, std::int64_t>{resp.partition, resp.offset};
}

// --- RemoteConsumer ---------------------------------------------------------

Result<std::unique_ptr<RemoteConsumer>> RemoteConsumer::Create(
    RemoteOptions remote, const std::string& topic,
    ps::ConsumerOptions options) {
  std::unique_ptr<RemoteConsumer> consumer(
      new RemoteConsumer(std::move(remote), topic, std::move(options)));
  STRATA_RETURN_IF_ERROR(consumer->JoinOnCurrentLeader());
  STRATA_RETURN_IF_ERROR(consumer->RefreshAssignment());
  return consumer;
}

RemoteConsumer::~RemoteConsumer() {
  if (!joined_) return;
  GroupRequest leave;
  leave.group = options_.group;
  leave.member = member_;
  std::string body;
  EncodeGroupRequest(leave, &body);
  std::string response;
  // Best effort, no retry: if the connection is gone the server's session
  // tracking already leaves the group for us.
  (void)router_.connection().Call(ApiKey::kLeaveGroup, body, &response,
                                  std::chrono::microseconds{},
                                  /*retry=*/false);
}

Status RemoteConsumer::Call(ApiKey api, const std::string& body,
                            std::string* response,
                            std::chrono::microseconds extra_wait) {
  return router_.Call(
      api, topic_,
      [&body](std::uint32_t /*version*/, std::string* out) { *out = body; },
      response, extra_wait);
}

Status RemoteConsumer::JoinOnCurrentLeader() {
  GroupRequest join;
  join.group = options_.group;
  join.topic = topic_;
  std::string body;
  EncodeGroupRequest(join, &body);
  std::string response;
  STRATA_RETURN_IF_ERROR(Call(ApiKey::kJoinGroup, body, &response));
  JoinGroupResponse joined;
  STRATA_RETURN_IF_ERROR(DecodeJoinGroupResponse(response, &joined));
  member_ = joined.member;
  joined_ = true;
  generation_ = 0;
  return Status::Ok();
}

Status RemoteConsumer::RefreshAssignment() {
  GroupRequest heartbeat;
  heartbeat.group = options_.group;
  heartbeat.member = member_;
  std::string body;
  EncodeGroupRequest(heartbeat, &body);
  std::string response;
  STRATA_RETURN_IF_ERROR(Call(ApiKey::kHeartbeat, body, &response));
  HeartbeatResponse resp;
  STRATA_RETURN_IF_ERROR(DecodeHeartbeatResponse(response, &resp));

  if (resp.generation == 0 && joined_) {
    // The broker answering us has no record of the group: leadership moved
    // and group state is not replicated. Re-join on the new leader; the
    // client-side positions_ map carries consumption forward, so nothing
    // already consumed is replayed (beyond the usual at-least-once window).
    LOG_DEBUG << "net: group " << options_.group
              << " unknown on current broker, re-joining after failover";
    STRATA_RETURN_IF_ERROR(JoinOnCurrentLeader());
    heartbeat.member = member_;
    body.clear();
    EncodeGroupRequest(heartbeat, &body);
    STRATA_RETURN_IF_ERROR(Call(ApiKey::kHeartbeat, body, &response));
    STRATA_RETURN_IF_ERROR(DecodeHeartbeatResponse(response, &resp));
  }

  if (resp.generation == generation_ && !assigned_.empty()) {
    return Status::Ok();
  }
  generation_ = resp.generation;
  assigned_ = std::move(resp.assignment);

  // Mirror the embedded consumer: drop uncommitted progress for revoked
  // partitions so we never clobber the new owner's committed offsets.
  for (auto it = uncommitted_.begin(); it != uncommitted_.end();) {
    const bool still_assigned =
        std::find(assigned_.begin(), assigned_.end(), it->first) !=
        assigned_.end();
    it = still_assigned ? std::next(it) : uncommitted_.erase(it);
  }

  // Keep in-flight positions of retained partitions; resolve fresh ones from
  // the committed offset, falling back to the reset policy against topic
  // metadata.
  std::map<ps::TopicPartition, std::int64_t> positions;
  std::vector<ps::TopicPartition> fresh;
  for (const ps::TopicPartition& tp : assigned_) {
    if (const auto it = positions_.find(tp); it != positions_.end()) {
      positions[tp] = it->second;
    } else {
      fresh.push_back(tp);
    }
  }

  if (!fresh.empty()) {
    OffsetFetchRequest req;
    req.group = options_.group;
    req.partitions = fresh;
    body.clear();
    EncodeOffsetFetchRequest(req, &body);
    STRATA_RETURN_IF_ERROR(Call(ApiKey::kOffsetFetch, body, &response));
    OffsetFetchResponse offsets;
    STRATA_RETURN_IF_ERROR(DecodeOffsetFetchResponse(response, &offsets));
    if (offsets.offsets.size() != fresh.size()) {
      return Status::Corruption("offset_fetch: response size mismatch");
    }

    MetadataResponse metadata;
    bool have_metadata = false;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (offsets.offsets[i] != OffsetFetchResponse::kNone) {
        positions[fresh[i]] = offsets.offsets[i];
        continue;
      }
      if (!have_metadata) {
        MetadataRequest meta_req;
        meta_req.topic = topic_;
        body.clear();
        EncodeMetadataRequest(meta_req, &body);
        STRATA_RETURN_IF_ERROR(Call(ApiKey::kMetadata, body, &response));
        STRATA_RETURN_IF_ERROR(DecodeMetadataResponse(response, &metadata));
        have_metadata = true;
      }
      if (metadata.topics.empty() ||
          static_cast<std::size_t>(fresh[i].partition) >=
              metadata.topics.front().partitions.size()) {
        return Status::Corruption("metadata: missing partition " +
                                  std::to_string(fresh[i].partition));
      }
      const auto& [start, end] =
          metadata.topics.front().partitions[fresh[i].partition];
      positions[fresh[i]] =
          options_.reset == ps::ConsumerOptions::AutoOffsetReset::kLatest
              ? end
              : start;
    }
  }
  positions_ = std::move(positions);
  return Status::Ok();
}

Result<std::vector<ps::ConsumedRecord>> RemoteConsumer::Poll(
    std::chrono::microseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  STRATA_RETURN_IF_ERROR(RefreshAssignment());

  std::vector<ps::ConsumedRecord> out;
  while (true) {
    if (assigned_.empty()) {
      // Nothing assigned (mid-rebalance, or more members than partitions):
      // wait out a slice rather than hammering the server with heartbeats.
      const auto now = std::chrono::steady_clock::now();
      if (timeout.count() == 0 || now >= deadline) break;
      std::this_thread::sleep_for(std::min(
          std::chrono::duration_cast<std::chrono::microseconds>(deadline - now),
          kFetchSlice));
    } else {
      FetchRequest req;
      req.entries.reserve(assigned_.size());
      for (const ps::TopicPartition& tp : assigned_) {
        FetchRequest::Entry entry;
        entry.tp = tp;
        entry.offset = positions_[tp];
        entry.max_records = options_.max_poll_records;
        req.entries.push_back(std::move(entry));
      }
      const auto now = std::chrono::steady_clock::now();
      const auto remaining =
          now < deadline
              ? std::chrono::duration_cast<std::chrono::microseconds>(
                    deadline - now)
              : std::chrono::microseconds{};
      const auto wait = std::min(remaining, kFetchSlice);
      req.max_wait_us = static_cast<std::uint64_t>(wait.count());

      std::string body;
      EncodeFetchRequest(req, &body);
      std::string response;
      STRATA_RETURN_IF_ERROR(Call(ApiKey::kFetch, body, &response,
                                  wait + std::chrono::seconds(1)));
      FetchResponse resp;
      STRATA_RETURN_IF_ERROR(DecodeFetchResponse(response, &resp));

      for (FetchResponse::Entry& entry : resp.entries) {
        // The server may have answered for a partition we no longer own
        // (rebalance raced the fetch); discard those records unseen.
        if (std::find(assigned_.begin(), assigned_.end(), entry.tp) ==
            assigned_.end()) {
          continue;
        }
        const std::size_t room = options_.max_poll_records > out.size()
                                     ? options_.max_poll_records - out.size()
                                     : 0;
        const std::size_t take = std::min(entry.records.size(), room);
        for (std::size_t i = 0; i < take; ++i) {
          out.push_back(std::move(entry.records[i]));
        }
        const std::int64_t next = take == entry.records.size()
                                      ? entry.next_offset
                                      : entry.records[take].offset;
        positions_[entry.tp] = next;
        uncommitted_[entry.tp] = next;
      }
    }
    if (!out.empty()) break;
    if (timeout.count() == 0) break;  // probe: empty Ok batch
    if (std::chrono::steady_clock::now() >= deadline) break;
    // Between long-poll slices, pick up any rebalance that happened while we
    // were parked on an idle partition set.
    STRATA_RETURN_IF_ERROR(RefreshAssignment());
  }

  if (options_.auto_commit && !out.empty()) STRATA_RETURN_IF_ERROR(Commit());
  if (out.empty() && timeout.count() > 0) {
    return Status::Timeout("Poll: no data before deadline");
  }
  return out;
}

Status RemoteConsumer::Commit() {
  if (uncommitted_.empty()) return Status::Ok();
  CommitOffsetRequest req;
  req.group = options_.group;
  req.offsets.assign(uncommitted_.begin(), uncommitted_.end());
  std::string body;
  EncodeCommitOffsetRequest(req, &body);
  std::string response;
  // Committing the same offsets twice is idempotent, so retry is safe.
  STRATA_RETURN_IF_ERROR(Call(ApiKey::kCommitOffset, body, &response));
  uncommitted_.clear();
  return Status::Ok();
}

Status RemoteConsumer::SeekToEnd() {
  STRATA_RETURN_IF_ERROR(RefreshAssignment());
  MetadataRequest req;
  req.topic = topic_;
  std::string body;
  EncodeMetadataRequest(req, &body);
  std::string response;
  STRATA_RETURN_IF_ERROR(Call(ApiKey::kMetadata, body, &response));
  MetadataResponse metadata;
  STRATA_RETURN_IF_ERROR(DecodeMetadataResponse(response, &metadata));
  if (metadata.topics.empty()) {
    return Status::NotFound("SeekToEnd: topic " + topic_);
  }
  const auto& partitions = metadata.topics.front().partitions;
  for (const ps::TopicPartition& tp : assigned_) {
    if (static_cast<std::size_t>(tp.partition) >= partitions.size()) {
      return Status::Corruption("metadata: missing partition " +
                                std::to_string(tp.partition));
    }
    positions_[tp] = partitions[tp.partition].second;
    uncommitted_[tp] = positions_[tp];
  }
  return Commit();
}

Status RemoteConsumer::Seek(const ps::TopicPartition& tp,
                            std::int64_t offset) {
  STRATA_RETURN_IF_ERROR(RefreshAssignment());
  if (std::find(assigned_.begin(), assigned_.end(), tp) == assigned_.end()) {
    return Status::InvalidArgument("Seek: partition not assigned: " +
                                   tp.topic + "/" +
                                   std::to_string(tp.partition));
  }
  MetadataRequest req;
  req.topic = tp.topic;
  std::string body;
  EncodeMetadataRequest(req, &body);
  std::string response;
  STRATA_RETURN_IF_ERROR(Call(ApiKey::kMetadata, body, &response));
  MetadataResponse metadata;
  STRATA_RETURN_IF_ERROR(DecodeMetadataResponse(response, &metadata));
  if (metadata.topics.empty()) {
    return Status::NotFound("Seek: topic " + tp.topic);
  }
  const auto& partitions = metadata.topics.front().partitions;
  if (static_cast<std::size_t>(tp.partition) >= partitions.size()) {
    return Status::Corruption("metadata: missing partition " +
                              std::to_string(tp.partition));
  }
  const auto& [start, end] = partitions[tp.partition];
  if (offset < start) {
    return Status::OutOfRange(
        "Seek: offset " + std::to_string(offset) + " below retention start " +
        std::to_string(start) + " for " + tp.topic + "/" +
        std::to_string(tp.partition));
  }
  if (offset > end) {
    return Status::OutOfRange("Seek: offset " + std::to_string(offset) +
                              " past log end " + std::to_string(end) +
                              " for " + tp.topic + "/" +
                              std::to_string(tp.partition));
  }
  positions_[tp] = offset;
  // The seek itself is not progress: nothing to commit until data is
  // consumed from the new position.
  uncommitted_.erase(tp);
  return Status::Ok();
}

// --- RemoteBroker -----------------------------------------------------------

Status RemoteBroker::CreateTopic(const std::string& name,
                                 const ps::TopicConfig& config) {
  CreateTopicRequest req;
  req.topic = name;
  req.config = config;
  std::string body;
  EncodeCreateTopic(req, &body);
  std::string response;
  return control_.Call(ApiKey::kCreateTopic, body, &response);
}

Result<std::unique_ptr<ps::ProducerClient>> RemoteBroker::NewProducer() {
  return std::unique_ptr<ps::ProducerClient>(
      std::make_unique<RemoteProducer>(options_));
}

Result<std::unique_ptr<ps::ConsumerClient>> RemoteBroker::NewConsumer(
    const std::string& topic, ps::ConsumerOptions options) {
  auto consumer = RemoteConsumer::Create(options_, topic, std::move(options));
  if (!consumer.ok()) return consumer.status();
  return std::unique_ptr<ps::ConsumerClient>(std::move(*consumer));
}

Result<MetadataResponse> RemoteBroker::Metadata(const std::string& topic) {
  MetadataRequest req;
  req.topic = topic;
  std::string body;
  EncodeMetadataRequest(req, &body);
  std::string response;
  STRATA_RETURN_IF_ERROR(control_.Call(ApiKey::kMetadata, body, &response));
  MetadataResponse resp;
  STRATA_RETURN_IF_ERROR(DecodeMetadataResponse(response, &resp));
  return resp;
}

}  // namespace strata::net
