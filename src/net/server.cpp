#include "net/server.hpp"

#include <sys/epoll.h>

#include <algorithm>

#include "common/logging.hpp"
#include "net/server_conn.hpp"

namespace strata::net {

BrokerServer::BrokerServer(ps::Broker* broker, BrokerServerOptions options)
    : broker_(broker),
      options_(std::move(options)),
      ctx_(std::make_unique<ServerContext>()) {
  ctx_->broker = broker_;
  ctx_->options = &options_;
  ctx_->stopping = &stopping_;
  ctx_->metrics = options_.metrics;
  if (options_.metrics != nullptr) {
    ctx_->connections_gauge =
        options_.metrics->GetGauge("net.server.connections");
    ctx_->bytes_in = options_.metrics->GetCounter("net.server.bytes_in");
    ctx_->bytes_out = options_.metrics->GetCounter("net.server.bytes_out");
    ctx_->fetch_wakeups =
        options_.metrics->GetCounter("net.server.fetch_wakeups");
  }
  ctx_->on_closed = [this](ServerConnection* conn) {
    std::lock_guard lock(conns_mu_);
    conns_.erase(conn);
  };
}

BrokerServer::~BrokerServer() { Stop(); }

Status BrokerServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  auto listener = ListenSocket::Listen(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  stopping_.store(false, std::memory_order_relaxed);

  const std::size_t workers = std::max<std::size_t>(1, options_.event_loop_workers);
  loops_.clear();
  next_loop_ = 0;
  for (std::size_t i = 0; i < workers; ++i) {
    auto loop = std::make_unique<EventLoop>();
    if (Status s = loop->Start(); !s.ok()) {
      for (auto& started : loops_) started->Stop();
      loops_.clear();
      listener_.Close();
      return s;
    }
    loops_.push_back(std::move(loop));
  }

  Status armed = Status::Ok();
  loops_[0]->PostAndWait([this, &armed] {
    armed = loops_[0]->AddFd(listener_.fd(), EPOLLIN,
                             [this](std::uint32_t) { OnAcceptReady(); });
  });
  if (!armed.ok()) {
    for (auto& loop : loops_) loop->Stop();
    loops_.clear();
    listener_.Close();
    return armed;
  }

  started_ = true;
  LOG_INFO << "net: broker server listening on " << options_.host << ":"
           << port_ << " (" << workers << " event loops)";
  return Status::Ok();
}

void BrokerServer::OnAcceptReady() {
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    // An already-expired deadline makes Accept non-blocking: it tries
    // accept(2) once (running the net.accept failpoint) and reports Timeout
    // when nothing is pending.
    auto accepted = listener_.Accept(std::chrono::steady_clock::now());
    if (!accepted.ok()) {
      if (accepted.status().IsTimeout()) return;  // listener drained
      if (!stopping_.load(std::memory_order_relaxed)) {
        LOG_ERROR << "net: accept failed: " << accepted.status().ToString();
      }
      // Hard accept error: stop accepting (connections keep being served).
      loops_[0]->DelFd(listener_.fd());
      return;
    }
    EventLoop* loop = loops_[next_loop_++ % loops_.size()].get();
    auto conn =
        std::make_shared<ServerConnection>(ctx_.get(), loop, std::move(*accepted));
    {
      std::lock_guard lock(conns_mu_);
      conns_.emplace(conn.get(), conn);
    }
    loop->Post([this, conn] {
      if (stopping_.load(std::memory_order_relaxed)) {
        conn->Close();
        return;
      }
      if (Status s = conn->Register(); !s.ok()) {
        LOG_WARN << "net: failed to register connection: " << s.ToString();
        conn->Close();
      }
    });
  }
}

void BrokerServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);

  // Disarm the accept handler before closing the listener fd: the barrier
  // also orders after any in-flight OnAcceptReady, so every adoption was
  // posted by the time it returns.
  loops_[0]->PostAndWait([this] { loops_[0]->DelFd(listener_.fd()); });
  listener_.Close();

  // Close every connection on its own loop; severed sockets promptly fail
  // any client blocked in a long-poll.
  std::vector<std::shared_ptr<ServerConnection>> snapshot;
  {
    std::lock_guard lock(conns_mu_);
    snapshot.reserve(conns_.size());
    for (const auto& [raw, shared] : conns_) snapshot.push_back(shared);
  }
  for (const auto& conn : snapshot) {
    conn->loop()->Post([conn] { conn->Close(); });
  }
  // Barrier: the close tasks queued above have run once this returns.
  for (auto& loop : loops_) loop->PostAndWait([] {});
  for (auto& loop : loops_) loop->Stop();
  snapshot.clear();
  {
    std::lock_guard lock(conns_mu_);
    conns_.clear();
  }
  loops_.clear();
  started_ = false;
}

}  // namespace strata::net
