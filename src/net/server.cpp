#include "net/server.hpp"

#include <algorithm>
#include <chrono>

#include "common/logging.hpp"
#include "fault/failpoint.hpp"
#include "net/frame.hpp"
#include "obs/trace.hpp"

namespace strata::net {

namespace {

/// Slice long waits so handler threads notice the stop flag promptly.
constexpr std::chrono::microseconds kWaitSlice{50'000};

/// Microseconds on the monotonic clock, for latency histograms.
std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BrokerServer::BrokerServer(ps::Broker* broker, BrokerServerOptions options)
    : broker_(broker), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    connections_gauge_ = options_.metrics->GetGauge("net.server.connections");
    bytes_in_ = options_.metrics->GetCounter("net.server.bytes_in");
    bytes_out_ = options_.metrics->GetCounter("net.server.bytes_out");
  }
}

BrokerServer::~BrokerServer() { Stop(); }

Status BrokerServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  auto listener = ListenSocket::Listen(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  LOG_INFO << "net: broker server listening on " << options_.host << ":"
           << port_;
  return Status::Ok();
}

void BrokerServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // The accept loop re-checks stopping_ every accept slice, so joining first
  // (instead of closing the listener under it) keeps the fd single-owner.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard lock(mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    conn->socket.Shutdown();  // unblocks the handler's ReadFully
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  started_ = false;
}

void BrokerServer::ReapFinishedLocked() {
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load(std::memory_order_acquire)) return false;
    if (conn->thread.joinable()) conn->thread.join();
    return true;
  });
}

void BrokerServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.Accept(After(std::chrono::milliseconds(200)));
    if (!accepted.ok()) {
      if (accepted.status().IsTimeout()) continue;
      // Listener closed (Stop) or hard error: either way the loop is done.
      if (!stopping_.load(std::memory_order_relaxed)) {
        LOG_ERROR << "net: accept failed: " << accepted.status().ToString();
      }
      return;
    }
    auto conn = std::make_unique<Connection>(std::move(*accepted));
    Connection* raw = conn.get();
    {
      std::lock_guard lock(mu_);
      ReapFinishedLocked();
      connections_.push_back(std::move(conn));
    }
    if (connections_gauge_ != nullptr) connections_gauge_->Add(1);
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void BrokerServer::ServeConnection(Connection* conn) {
  std::string request;
  std::string response;
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Block without a deadline: Stop() shuts the socket down to wake us, and
    // an idle client costs nothing but this parked thread.
    TraceContext frame_trace;
    Status read = ReadFrame(&conn->socket, &request, kNoDeadline, &frame_trace);
    if (!read.ok()) {
      if (read.IsCorruption()) {
        // A corrupt frame may have desynchronized the stream; drop the
        // connection rather than misparse everything after it.
        LOG_WARN << "net: dropping connection after corrupt frame: "
                 << read.message();
      }
      break;
    }
    if (bytes_in_ != nullptr) bytes_in_->Inc(request.size() + 8);

    response.clear();
    Status handled;
    {
      // Server-side hop of a traced request: dur covers dispatch; the client
      // frame span is the parent.
      obs::SpanScope span;
      if (frame_trace.sampled() && obs::TracingEnabled()) {
        span = obs::SpanScope("server.dispatch", "net", frame_trace);
      }
      handled = HandleRequest(conn, request, &response);
    }
    // Failpoint "net.server.dispatch": sever the connection after the request
    // was applied but before the response goes out — the crash window that
    // makes produce at-least-once (the client retries an applied request).
    if (fault::AnyActive() && !fault::Evaluate("net.server.dispatch").ok()) {
      LOG_WARN << "net: dropping connection at net.server.dispatch failpoint";
      break;
    }
    Status written = Status::Ok();
    if (!response.empty()) {  // empty = the request envelope didn't decode
      // Echo the request's trace onto the response frame for v2 peers, so
      // the reply leg is attributable to the same trace.
      const TraceContext* response_trace =
          conn->peer_version >= 2 && frame_trace.sampled() ? &frame_trace
                                                           : nullptr;
      written = WriteFrame(&conn->socket, response,
                           After(options_.write_timeout), response_trace);
      if (written.ok() && bytes_out_ != nullptr) {
        bytes_out_->Inc(response.size() + 8);
      }
    }
    if (!handled.ok()) {
      // The error response (if any) went out above; now sever — a corrupt
      // body means the next frame boundary cannot be trusted.
      LOG_WARN << "net: dropping connection: " << handled.ToString();
      break;
    }
    if (!written.ok()) break;
  }

  // The connection is the group session: a dead client must release its
  // partitions so the remaining members rebalance instead of stalling.
  for (const auto& [group, member] : conn->memberships) {
    broker_->LeaveGroup(group, member);
  }
  // Shutdown (not Close) so the peer sees FIN now, while the fd itself stays
  // valid for a concurrent Stop(): the Connection's destructor — which runs
  // strictly after this thread is joined — performs the actual close.
  conn->socket.Shutdown();
  if (connections_gauge_ != nullptr) connections_gauge_->Sub(1);
  conn->done.store(true, std::memory_order_release);
}

Status BrokerServer::HandleRequest(Connection* conn, std::string_view payload,
                                   std::string* response) {
  ApiKey api{};
  std::string_view body;
  Status decoded = DecodeRequest(payload, &api, &body);
  if (!decoded.ok()) return decoded;  // cannot even answer: drop connection

  obs::Counter* requests = nullptr;
  obs::HistogramMetric* latency = nullptr;
  if (options_.metrics != nullptr) {
    const obs::Labels labels{{"api", ApiKeyName(api)}};
    requests = options_.metrics->GetCounter("net.server.requests", labels);
    latency =
        options_.metrics->GetHistogram("net.server.request_latency_us", labels);
  }
  const std::int64_t start_us = NowUs();

  Status status = Status::Ok();
  std::string out;
  switch (api) {
    case ApiKey::kCreateTopic: {
      CreateTopicRequest req;
      status = DecodeCreateTopic(body, &req);
      if (status.ok()) status = broker_->CreateTopic(req.topic, req.config);
      break;
    }
    case ApiKey::kMetadata: {
      MetadataRequest req;
      status = DecodeMetadataRequest(body, &req);
      if (status.ok()) {
        MetadataResponse resp;
        std::vector<std::string> topics;
        if (req.topic.empty()) {
          topics = broker_->ListTopics();
        } else {
          topics.push_back(req.topic);
        }
        for (const std::string& topic : topics) {
          auto stats = broker_->GetTopicStats(topic);
          if (!stats.ok()) {
            status = stats.status();
            break;
          }
          resp.topics.push_back(TopicMetadata{topic, stats->offsets});
        }
        if (status.ok()) EncodeMetadataResponse(resp, &out);
      }
      break;
    }
    case ApiKey::kProduce: {
      ProduceRequest req;
      status = DecodeProduceRequest(body, &req);
      if (status.ok()) {
        auto appended = broker_->Produce(req.topic, req.record);
        status = appended.status();
        if (status.ok()) {
          EncodeProduceResponse(
              ProduceResponse{appended->first, appended->second}, &out);
        }
      }
      break;
    }
    case ApiKey::kFetch:
      status = HandleFetch(body, &out);
      break;
    case ApiKey::kJoinGroup: {
      GroupRequest req;
      status = DecodeGroupRequest(body, &req);
      if (status.ok()) {
        auto member = broker_->JoinGroup(req.group, req.topic);
        status = member.status();
        if (status.ok()) {
          conn->memberships.emplace_back(req.group, *member);
          EncodeJoinGroupResponse(JoinGroupResponse{*member}, &out);
        }
      }
      break;
    }
    case ApiKey::kLeaveGroup: {
      GroupRequest req;
      status = DecodeGroupRequest(body, &req);
      if (status.ok()) {
        broker_->LeaveGroup(req.group, req.member);
        std::erase(conn->memberships, std::pair{req.group, req.member});
      }
      break;
    }
    case ApiKey::kHeartbeat: {
      GroupRequest req;
      status = DecodeGroupRequest(body, &req);
      if (status.ok()) {
        HeartbeatResponse resp;
        resp.assignment =
            broker_->Assignment(req.group, req.member, &resp.generation);
        EncodeHeartbeatResponse(resp, &out);
      }
      break;
    }
    case ApiKey::kCommitOffset: {
      CommitOffsetRequest req;
      status = DecodeCommitOffsetRequest(body, &req);
      for (const auto& [tp, offset] : req.offsets) {
        if (!status.ok()) break;
        status = broker_->CommitOffset(req.group, tp, offset);
      }
      break;
    }
    case ApiKey::kOffsetFetch: {
      OffsetFetchRequest req;
      status = DecodeOffsetFetchRequest(body, &req);
      if (status.ok()) {
        OffsetFetchResponse resp;
        resp.offsets.reserve(req.partitions.size());
        for (const ps::TopicPartition& tp : req.partitions) {
          auto committed = broker_->CommittedOffset(req.group, tp);
          if (committed.ok()) {
            resp.offsets.push_back(*committed);
          } else if (committed.status().IsNotFound()) {
            resp.offsets.push_back(OffsetFetchResponse::kNone);
          } else {
            status = committed.status();
            break;
          }
        }
        if (status.ok()) EncodeOffsetFetchResponse(resp, &out);
      }
      break;
    }
    case ApiKey::kHello: {
      HelloRequest req;
      status = DecodeHelloRequest(body, &req);
      if (status.ok()) {
        conn->peer_version = std::min(req.max_version, kProtocolVersion);
        EncodeHelloResponse(HelloResponse{conn->peer_version}, &out);
      }
      break;
    }
  }

  if (requests != nullptr) requests->Inc();
  if (latency != nullptr) latency->Record(NowUs() - start_us);

  // A malformed body means the client and server disagree about the protocol
  // (or the frame CRC missed something): answer with the error once, then
  // sever — the next frame boundary cannot be trusted.
  EncodeResponse(status, out, response);
  return status.IsCorruption() ? status : Status::Ok();
}

Status BrokerServer::HandleFetch(std::string_view body, std::string* out) {
  FetchRequest req;
  STRATA_RETURN_IF_ERROR(DecodeFetchRequest(body, &req));

  const auto wait_budget = std::min(
      std::chrono::microseconds(static_cast<std::int64_t>(req.max_wait_us)),
      options_.max_fetch_wait);
  const Deadline deadline = After(wait_budget);

  std::vector<ps::TopicPartition> partitions;
  std::map<ps::TopicPartition, std::int64_t> positions;
  partitions.reserve(req.entries.size());
  for (const FetchRequest::Entry& entry : req.entries) {
    partitions.push_back(entry.tp);
    positions[entry.tp] = entry.offset;
  }

  FetchResponse resp;
  auto fetch_once = [&]() -> Status {
    resp.entries.clear();
    for (const FetchRequest::Entry& entry : req.entries) {
      auto log = broker_->GetLog(entry.tp.topic, entry.tp.partition);
      if (!log.ok()) return log.status();
      FetchResponse::Entry result;
      result.tp = entry.tp;
      // Heal offsets that fell below the retention horizon, exactly like the
      // embedded consumer does.
      std::int64_t offset = std::max(entry.offset, (*log)->StartOffset());
      std::vector<ps::Record> records;
      std::int64_t next = offset;
      STRATA_RETURN_IF_ERROR((*log)->ReadFrom(
          offset, static_cast<std::size_t>(entry.max_records), &records,
          &next));
      result.records.reserve(records.size());
      for (ps::Record& record : records) {
        ps::ConsumedRecord consumed;
        consumed.topic = entry.tp.topic;
        consumed.partition = entry.tp.partition;
        consumed.offset = offset++;
        consumed.key = std::move(record.key);
        consumed.value = std::move(record.value);
        consumed.timestamp = record.timestamp;
        result.records.push_back(std::move(consumed));
      }
      result.next_offset = next;
      resp.entries.push_back(std::move(result));
    }
    return Status::Ok();
  };

  STRATA_RETURN_IF_ERROR(fetch_once());
  // Long-poll: park on the broker's data signal in short slices so Stop()
  // and broker Close() are noticed within one slice.
  while (resp.empty() && !req.entries.empty() &&
         !stopping_.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
    (void)broker_->WaitForAnyData(partitions, positions,
                                  std::min(remaining, kWaitSlice));
    if (broker_->closed()) return Status::Closed("broker closed");
    STRATA_RETURN_IF_ERROR(fetch_once());
  }

  EncodeFetchResponse(resp, out);
  return Status::Ok();
}

}  // namespace strata::net
