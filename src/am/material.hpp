// Powder material presets (the paper's future work: "accounting for common
// features of PBF-LB processes, such as e.g. the material used as powder").
//
// Different alloys melt with different emissivity, process parameters, and
// defect propensity; the presets alter the OT signature (base intensity,
// noise, striping) and the defect model, plus the laser parameters reported
// in the printing-parameter stream.
#pragma once

#include <string>

#include "am/defects.hpp"
#include "am/ot_generator.hpp"

namespace strata::am {

struct MaterialSpec {
  std::string name = "Ti-6Al-4V";
  /// Emissivity-driven nominal melt-pool brightness (gray levels).
  double base_intensity = 128.0;
  double pixel_noise_stddev = 5.0;
  double stripe_amplitude = 6.0;
  /// EOS-style process parameters reported per layer.
  double laser_power_w = 285.0;
  double scan_speed_mm_s = 960.0;
  double hatch_distance_um = 110.0;
  /// Multiplier on the defect birth rate (spatter propensity).
  double defect_propensity = 1.0;
};

/// Built-in presets.
[[nodiscard]] MaterialSpec Ti6Al4V();
[[nodiscard]] MaterialSpec Inconel718();
[[nodiscard]] MaterialSpec AlSi10Mg();

/// NotFound for unknown names ("Ti-6Al-4V", "IN718", "AlSi10Mg").
[[nodiscard]] Result<MaterialSpec> MaterialByName(const std::string& name);

/// Apply a material to generator and defect parameters.
void ApplyMaterial(const MaterialSpec& material, OtGeneratorParams* ot,
                   DefectModelParams* defects);

}  // namespace strata::am
