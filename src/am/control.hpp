// Machine control interface: the actuation side of the paper's envisioned
// feedback loop (§1: "a data-driven approach ... eventually enabling
// feedback loop control"; Figure 1B: the expert may "continue, re-adjust,
// or terminate an ongoing process").
//
// The simulator accepts two commands:
//  - AdjustSpecimen(specimen): re-parameterize the laser for one specimen
//    (e.g. adapt power/speed where thermal deviations cluster). Modeled as
//    defect mitigation: seeded defects of that specimen stop being rendered
//    from the next layer on (the corrected energy input removes the
//    deviation source).
//  - TerminateJob(): stop printing after the current layer, abandoning the
//    build (the defect is unrecoverable; stop wasting powder and time).
//
// Commands are thread-safe: the monitoring pipeline calls them from sink
// threads while the machine thread prints.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

namespace strata::am {

/// Shared mutable control state between a controller and the machine.
class ControlState {
 public:
  /// Re-parameterize `specimen` starting from the next layer; idempotent.
  void AdjustSpecimen(std::int64_t specimen, int effective_from_layer) {
    std::lock_guard lock(mu_);
    auto [it, inserted] =
        mitigated_from_.try_emplace(specimen, effective_from_layer);
    if (!inserted && effective_from_layer < it->second) {
      it->second = effective_from_layer;
    }
  }

  /// Stop the job; layers after the current one are not printed.
  void TerminateJob() {
    std::lock_guard lock(mu_);
    terminated_ = true;
  }

  [[nodiscard]] bool terminated() const {
    std::lock_guard lock(mu_);
    return terminated_;
  }

  /// True when `specimen`'s laser was re-parameterized at or before `layer`.
  [[nodiscard]] bool IsMitigated(std::int64_t specimen, int layer) const {
    std::lock_guard lock(mu_);
    const auto it = mitigated_from_.find(specimen);
    return it != mitigated_from_.end() && layer >= it->second;
  }

  [[nodiscard]] std::size_t adjustments() const {
    std::lock_guard lock(mu_);
    return mitigated_from_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::int64_t, int> mitigated_from_;
  bool terminated_ = false;
};

}  // namespace strata::am
