// Stochastic defect model for the synthetic OT images.
//
// The paper's physics: scan-orientation-dependent interaction between
// spatter and the shielding gas flow creates sites where melt-pool thermal
// energy deviates — too-low (cold: lack of fusion risk) or too-high (hot:
// keyholing risk) — and such regions are spatially compact and persist
// across neighbouring layers. We model each defect as an ellipsoid in
// (x, y, layer) space with a type and an intensity delta; per-layer cross
// sections are discs whose radius follows the ellipsoid profile. Defect
// birth rate per layer depends on the stack's scan angle (angles blowing
// spatter along the gas flow are riskier), reproducing the paper's
// orientation-dependent defect sites.
#pragma once

#include <cstdint>
#include <vector>

#include "am/geometry.hpp"
#include "common/rng.hpp"

namespace strata::am {

enum class DefectType : std::uint8_t { kCold = 0, kHot = 1 };

struct Defect {
  DefectType type = DefectType::kCold;
  std::int64_t specimen = 0;
  double center_x_mm = 0.0;  // plate coordinates
  double center_y_mm = 0.0;
  int center_layer = 0;
  double radius_mm = 1.0;   // in-plane radius at the central layer
  int half_layers = 2;      // vertical half-extent in layers
  double intensity_delta = 30.0;  // gray levels; sign applied by type

  /// In-plane radius of this defect's cross-section on `layer` (0 when the
  /// layer is outside the defect's vertical extent).
  [[nodiscard]] double RadiusAtLayer(int layer) const noexcept;
};

struct DefectModelParams {
  /// Expected defects born per specimen per layer at the riskiest angle.
  double birth_rate = 0.02;
  /// Relative risk floor at the safest angle (0..1).
  double min_angle_risk = 0.25;
  double mean_radius_mm = 1.2;
  double radius_stddev_mm = 0.5;
  int mean_half_layers = 4;
  double mean_intensity_delta = 35.0;
  double hot_fraction = 0.5;  // remaining defects are cold
  std::uint64_t seed = 1234;
};

/// Deterministically generates the full defect set of a job up front, so the
/// ground truth is known to tests and benches.
class DefectSeeder {
 public:
  DefectSeeder(const BuildJobSpec& job, DefectModelParams params);

  [[nodiscard]] const std::vector<Defect>& defects() const noexcept {
    return defects_;
  }

  /// Defects intersecting a given layer (for the image generator).
  [[nodiscard]] std::vector<const Defect*> DefectsOnLayer(int layer) const;

  /// Relative risk (0..1] of the scan angle on this layer: maximal when the
  /// scan direction pushes spatter against the gas flow.
  [[nodiscard]] static double AngleRisk(double angle_deg,
                                        double min_angle_risk);

 private:
  std::vector<Defect> defects_;
};

}  // namespace strata::am
