#include "am/streaks.hpp"

#include <algorithm>

namespace strata::am {

StreakSeeder::StreakSeeder(const BuildJobSpec& job,
                           StreakModelParams params) {
  Rng rng(params.seed ^ static_cast<std::uint64_t>(job.job_id) * 0x51f15eedull);
  const int layers = job.TotalLayers();
  for (int layer = 0; layer < layers; ++layer) {
    const std::int64_t births = rng.Poisson(params.rate_per_layer);
    for (std::int64_t b = 0; b < births; ++b) {
      Streak streak;
      streak.x_mm = rng.Uniform(5.0, job.plate.size_mm - 5.0);
      streak.width_mm = std::max(0.3, rng.Normal(params.mean_width_mm, 0.2));
      streak.start_layer = layer;
      const int span = std::max<int>(
          1, static_cast<int>(rng.Poisson(params.mean_span_layers)));
      streak.end_layer = std::min(layers - 1, layer + span - 1);
      streak.intensity_drop =
          std::max(10.0, rng.Normal(params.mean_intensity_drop, 5.0));
      streaks_.push_back(streak);
    }
  }
}

std::vector<const Streak*> StreakSeeder::StreaksOnLayer(int layer) const {
  std::vector<const Streak*> active;
  for (const Streak& streak : streaks_) {
    if (streak.ActiveOnLayer(layer)) active.push_back(&streak);
  }
  return active;
}

}  // namespace strata::am
