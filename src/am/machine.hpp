// PBF-LB machine simulator: the EOS M290 substitute.
//
// The machine prints a job layer by layer. After each layer melts, the OT
// sensor emits the layer's long-exposure image and the controller reports
// the layer's printing parameters; then the recoater spreads the next powder
// layer (~3 s gap — the pipeline's QoS budget, §5). The simulator exposes a
// pull API: NextLayer() produces the per-layer data with simulated event
// times; pacing (live vs replay-as-fast-as-possible) is the caller's choice.
#pragma once

#include <optional>

#include "am/material.hpp"
#include "am/ot_generator.hpp"
#include "common/clock.hpp"
#include "common/value.hpp"

namespace strata::am {

struct MachineParams {
  BuildJobSpec job;
  DefectModelParams defects;
  OtGeneratorParams ot;
  /// Powder material: adjusts the OT signature, the defect propensity, and
  /// the reported laser parameters (defaults to the paper's Ti-6Al-4V).
  MaterialSpec material;
  /// Recoater-streak model; nullopt = pristine recoater.
  std::optional<StreakModelParams> streaks;
  /// Stop after this many layers (0 = the job's full height).
  int layers_limit = 0;
  /// Simulated melt time per layer, seconds (event-time spacing between
  /// layers is melt + recoat).
  double layer_melt_seconds = 30.0;
};

struct LayerData {
  std::int64_t job = 0;
  int layer = 0;
  Timestamp event_time = 0;  // simulated completion time of the layer
  GrayImage ot_image;
  Payload printing_params;
};

class MachineSimulator {
 public:
  explicit MachineSimulator(MachineParams params);

  /// Produce the next layer's data; nullopt when the job has finished.
  [[nodiscard]] std::optional<LayerData> NextLayer();

  /// Restart the same job from layer 0 (for replay experiments).
  void Reset() { next_layer_ = 0; }

  [[nodiscard]] const BuildJobSpec& job() const noexcept {
    return params_.job;
  }
  [[nodiscard]] const DefectSeeder& seeder() const noexcept { return seeder_; }
  /// Null when the machine has a pristine recoater.
  [[nodiscard]] const StreakSeeder* streak_seeder() const noexcept {
    return streak_seeder_.get();
  }
  /// The feedback-control channel (thread-safe): experts/controllers call
  /// AdjustSpecimen/TerminateJob; the machine honors them from the next
  /// layer on.
  [[nodiscard]] ControlState& control() noexcept { return control_; }
  [[nodiscard]] const ControlState& control() const noexcept {
    return control_;
  }
  /// Layer index the next NextLayer() call will produce.
  [[nodiscard]] int next_layer() const noexcept { return next_layer_; }
  [[nodiscard]] int total_layers() const noexcept { return total_layers_; }
  /// Event-time spacing between consecutive layer completions.
  [[nodiscard]] Timestamp LayerPeriodMicros() const noexcept;

  /// The printing-parameter payload for a layer (also used standalone by
  /// the PrintingParameterCollector source).
  [[nodiscard]] Payload PrintingParams(int layer) const;

 private:
  MachineParams params_;
  DefectSeeder seeder_;
  std::unique_ptr<StreakSeeder> streak_seeder_;
  ControlState control_;
  OtImageGenerator generator_;
  int total_layers_;
  int next_layer_ = 0;
};

}  // namespace strata::am
