#include "am/ot_generator.hpp"

#include <cmath>

namespace strata::am {

namespace {

/// Deterministic per-pixel noise: splitmix64-style avalanche of the pixel
/// coordinates, mapped to an approximately normal value via the sum of two
/// uniforms (cheap, good enough for image texture).
double HashNoise(std::uint64_t seed, int x, int y, int layer) {
  std::uint64_t z = seed;
  z ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
       static_cast<std::uint32_t>(y);
  z += static_cast<std::uint64_t>(layer) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const double u1 = static_cast<double>(z & 0xffffffffu) / 4294967296.0;
  const double u2 = static_cast<double>(z >> 32) / 4294967296.0;
  return (u1 + u2) - 1.0;  // triangular in [-1, 1], stddev ~0.408
}

std::uint8_t ClampToGray(double v) {
  if (v <= 0.0) return 0;
  if (v >= 255.0) return 255;
  return static_cast<std::uint8_t>(v + 0.5);
}

}  // namespace

OtImageGenerator::OtImageGenerator(BuildJobSpec job, const DefectSeeder* seeder,
                                   OtGeneratorParams params,
                                   const StreakSeeder* streak_seeder,
                                   const ControlState* control)
    : job_(std::move(job)),
      seeder_(seeder),
      streak_seeder_(streak_seeder),
      control_(control),
      params_(params) {}

GrayImage OtImageGenerator::GenerateLayer(int layer) const {
  const PlateSpec& plate = job_.plate;
  GrayImage image(plate.image_px, plate.image_px,
                  static_cast<std::uint8_t>(params_.background_level));

  const double px_per_mm = plate.PxPerMm();
  const double angle_rad =
      job_.ScanAngleDeg(layer) * std::acos(-1.0) / 180.0;
  const double dir_x = std::cos(angle_rad);
  const double dir_y = std::sin(angle_rad);
  const double stripe_freq =
      2.0 * std::acos(-1.0) / (params_.stripe_period_mm * px_per_mm);
  const double noise_scale = params_.pixel_noise_stddev / 0.408;

  const int max_layers_any = job_.TotalLayers();
  (void)max_layers_any;

  for (const SpecimenSpec& specimen : job_.specimens) {
    const int specimen_layers = static_cast<int>(
        specimen.height_mm * 1000.0 / job_.layer_thickness_um);
    if (layer >= specimen_layers) continue;  // this block already topped out

    const int x0 = plate.MmToPx(specimen.x_mm);
    const int y0 = plate.MmToPx(specimen.y_mm);
    const int x1 = std::min(plate.image_px,
                            plate.MmToPx(specimen.x_mm + specimen.width_mm));
    const int y1 = std::min(plate.image_px,
                            plate.MmToPx(specimen.y_mm + specimen.length_mm));

    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        // Hatch striping perpendicular to the scan direction.
        const double along = dir_x * x + dir_y * y;
        const double stripe =
            params_.stripe_amplitude * std::sin(along * stripe_freq);
        const double noise =
            noise_scale * HashNoise(params_.seed, x, y, layer);
        image.set(x, y,
                  ClampToGray(params_.base_intensity + stripe + noise));
      }
    }

    // XCT cylinder contours: the contour scan around each embedded cylinder
    // leaves a slightly brighter ring in the OT frame.
    for (const CylinderSpec& cylinder : specimen.xct_cylinders) {
      const double ccx = (specimen.x_mm + cylinder.cx_mm) * px_per_mm;
      const double ccy = (specimen.y_mm + cylinder.cy_mm) * px_per_mm;
      const double radius = cylinder.radius_mm * px_per_mm;
      const double ring_half_width = std::max(0.6, px_per_mm * 0.12);
      const int bound = static_cast<int>(radius + ring_half_width) + 1;
      for (int y = std::max(0, static_cast<int>(ccy) - bound);
           y <= std::min(plate.image_px - 1, static_cast<int>(ccy) + bound);
           ++y) {
        for (int x = std::max(0, static_cast<int>(ccx) - bound);
             x <= std::min(plate.image_px - 1, static_cast<int>(ccx) + bound);
             ++x) {
          const double dist = std::hypot(x - ccx, y - ccy);
          if (std::abs(dist - radius) <= ring_half_width) {
            image.set(x, y, ClampToGray(image.at(x, y) + 8.0));
          }
        }
      }
    }
  }

  // Recoater streaks: bands of reduced powder -> reduced melt emission,
  // applied wherever a streak band crosses a printing specimen.
  if (streak_seeder_ != nullptr) {
    for (const Streak* streak : streak_seeder_->StreaksOnLayer(layer)) {
      const int band_x0 = std::max(
          0, plate.MmToPx(streak->x_mm - streak->width_mm / 2));
      const int band_x1 = std::min(
          plate.image_px - 1,
          plate.MmToPx(streak->x_mm + streak->width_mm / 2));
      for (const SpecimenSpec& specimen : job_.specimens) {
        const int specimen_layers = static_cast<int>(
            specimen.height_mm * 1000.0 / job_.layer_thickness_um);
        if (layer >= specimen_layers) continue;
        const int x0 = std::max(band_x0, plate.MmToPx(specimen.x_mm));
        const int x1 = std::min(
            band_x1,
            plate.MmToPx(specimen.x_mm + specimen.width_mm) - 1);
        if (x0 > x1) continue;
        const int y0 = plate.MmToPx(specimen.y_mm);
        const int y1 = std::min(
            plate.image_px,
            plate.MmToPx(specimen.y_mm + specimen.length_mm));
        for (int y = y0; y < y1; ++y) {
          for (int x = x0; x <= x1; ++x) {
            image.set(x, y,
                      ClampToGray(image.at(x, y) - streak->intensity_drop));
          }
        }
      }
    }
  }

  // Apply defect deltas (smooth radial falloff) on top.
  if (seeder_ != nullptr) {
    for (const Defect* defect : seeder_->DefectsOnLayer(layer)) {
      // Feedback control: a re-parameterized specimen no longer develops
      // its seeded thermal deviations.
      if (control_ != nullptr &&
          control_->IsMitigated(defect->specimen, layer)) {
        continue;
      }
      const double radius_mm = defect->RadiusAtLayer(layer);
      const double radius_px = radius_mm * px_per_mm;
      const int cx = plate.MmToPx(defect->center_x_mm);
      const int cy = plate.MmToPx(defect->center_y_mm);
      const int r = static_cast<int>(radius_px) + 1;
      const double sign = defect->type == DefectType::kHot ? 1.0 : -1.0;

      for (int y = std::max(0, cy - r);
           y <= std::min(plate.image_px - 1, cy + r); ++y) {
        for (int x = std::max(0, cx - r);
             x <= std::min(plate.image_px - 1, cx + r); ++x) {
          const double dx = x - cx;
          const double dy = y - cy;
          const double dist2 = dx * dx + dy * dy;
          if (dist2 > radius_px * radius_px) continue;
          // Quadratic falloff from full delta at the centre to 0 at radius.
          const double falloff = 1.0 - dist2 / (radius_px * radius_px);
          const double delta = sign * defect->intensity_delta * falloff;
          image.set(x, y, ClampToGray(image.at(x, y) + delta));
        }
      }
    }
  }
  return image;
}

}  // namespace strata::am
