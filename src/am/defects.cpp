#include "am/defects.hpp"

#include <cmath>

namespace strata::am {

double Defect::RadiusAtLayer(int layer) const noexcept {
  const int dl = layer - center_layer;
  if (dl < -half_layers || dl > half_layers) return 0.0;
  if (half_layers == 0) return radius_mm;
  const double f = static_cast<double>(dl) / static_cast<double>(half_layers);
  const double scale2 = 1.0 - f * f;  // ellipsoid cross-section
  return radius_mm * std::sqrt(scale2 > 0 ? scale2 : 0.0);
}

double DefectSeeder::AngleRisk(double angle_deg, double min_angle_risk) {
  // Gas flows back->front (along -y). Scanning against the flow (angle 90,
  // i.e. towards +y) drives spatter onto unprocessed powder: riskiest.
  // Risk profile: raised cosine centred on 90 degrees.
  const double rad = (angle_deg - 90.0) * std::acos(-1.0) / 180.0;
  const double raised = 0.5 * (1.0 + std::cos(rad));  // 1 at 90, 0 at 270
  return min_angle_risk + (1.0 - min_angle_risk) * raised;
}

DefectSeeder::DefectSeeder(const BuildJobSpec& job, DefectModelParams params) {
  Rng rng(params.seed ^ static_cast<std::uint64_t>(job.job_id) * 0x9e3779b9ull);
  const int total_layers = job.TotalLayers();

  for (const SpecimenSpec& specimen : job.specimens) {
    Rng spec_rng = rng.Fork();
    const int specimen_layers = static_cast<int>(
        specimen.height_mm * 1000.0 / job.layer_thickness_um);
    const int layers = std::min(total_layers, specimen_layers);
    for (int layer = 0; layer < layers; ++layer) {
      const double risk =
          AngleRisk(job.ScanAngleDeg(layer), params.min_angle_risk);
      const std::int64_t births =
          spec_rng.Poisson(params.birth_rate * risk);
      for (std::int64_t b = 0; b < births; ++b) {
        Defect defect;
        defect.type = spec_rng.Bernoulli(params.hot_fraction)
                          ? DefectType::kHot
                          : DefectType::kCold;
        defect.specimen = specimen.id;
        // Keep the core inside the specimen with a small margin.
        const double margin = 2.0;
        defect.center_x_mm = spec_rng.Uniform(specimen.x_mm + margin,
                                              specimen.x_mm + specimen.width_mm - margin);
        defect.center_y_mm = spec_rng.Uniform(specimen.y_mm + margin,
                                              specimen.y_mm + specimen.length_mm - margin);
        defect.center_layer = layer;
        defect.radius_mm = std::max(
            0.3, spec_rng.Normal(params.mean_radius_mm, params.radius_stddev_mm));
        defect.half_layers = static_cast<int>(
            std::max<std::int64_t>(1, spec_rng.Poisson(params.mean_half_layers)));
        defect.intensity_delta =
            std::max(10.0, spec_rng.Normal(params.mean_intensity_delta, 8.0));
        defects_.push_back(defect);
      }
    }
  }
}

std::vector<const Defect*> DefectSeeder::DefectsOnLayer(int layer) const {
  std::vector<const Defect*> result;
  for (const Defect& defect : defects_) {
    if (defect.RadiusAtLayer(layer) > 0.0) result.push_back(&defect);
  }
  return result;
}

}  // namespace strata::am
