// 8-bit gray-scale image: the Optical Tomography (OT) frame format. The real
// system captures 2000x2000 px long-exposure images of the 250x250 mm build
// area per layer (paper §5); the simulator produces the same shape at a
// configurable resolution.
//
// Images travel through the SPE as shared immutable objects (OpaqueValue) to
// avoid copying megabytes per tuple, and serialize to/from bytes for the
// pub/sub connectors and PGM files for visual inspection (Figure 4).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/value.hpp"

namespace strata::am {

class GrayImage {
 public:
  GrayImage() = default;
  GrayImage(int width, int height, std::uint8_t fill = 0)
      : width_(width), height_(height) {
    if (width <= 0 || height <= 0) {
      throw std::invalid_argument("GrayImage: non-positive dimensions");
    }
    pixels_.assign(
        static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
        fill);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return pixels_.size();
  }

  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return pixels_[Index(x, y)];
  }
  void set(int x, int y, std::uint8_t v) { pixels_[Index(x, y)] = v; }

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const noexcept {
    return pixels_;
  }
  [[nodiscard]] std::vector<std::uint8_t>& pixels() noexcept { return pixels_; }

  /// Mean intensity over the rectangle [x0, x0+w) x [y0, y0+h), clipped to
  /// the image bounds. Returns 0 for an empty intersection.
  [[nodiscard]] double RegionMean(int x0, int y0, int w, int h) const;

  /// Serialization: fixed header (magic, width, height) + raw pixels.
  [[nodiscard]] std::string Serialize() const;
  [[nodiscard]] static Result<GrayImage> Deserialize(std::string_view data);

  /// Binary PGM (P5) I/O for human inspection.
  [[nodiscard]] Status SavePgm(const std::filesystem::path& path) const;
  [[nodiscard]] static Result<GrayImage> LoadPgm(
      const std::filesystem::path& path);

  friend bool operator==(const GrayImage&, const GrayImage&) = default;

 private:
  [[nodiscard]] std::size_t Index(int x, int y) const {
    if (x < 0 || x >= width_ || y < 0 || y >= height_) {
      throw std::out_of_range("GrayImage: (" + std::to_string(x) + "," +
                              std::to_string(y) + ") outside " +
                              std::to_string(width_) + "x" +
                              std::to_string(height_));
    }
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Wraps a shared image for zero-copy transport inside SPE tuples.
class ImageValue final : public OpaqueValue {
 public:
  explicit ImageValue(GrayImage image) : image_(std::move(image)) {}
  [[nodiscard]] const char* TypeName() const noexcept override {
    return "GrayImage";
  }
  [[nodiscard]] std::size_t ApproxBytes() const noexcept override {
    return image_.size_bytes();
  }
  [[nodiscard]] const GrayImage& image() const noexcept { return image_; }

 private:
  GrayImage image_;
};

/// Convenience: wrap an image as a payload Value.
[[nodiscard]] inline Value MakeImageValue(GrayImage image) {
  return Value(OpaqueRef(std::make_shared<const ImageValue>(std::move(image))));
}

}  // namespace strata::am
