#include "am/history.hpp"

#include <algorithm>
#include <vector>

#include "common/codec.hpp"

namespace strata::am {

std::string ThermalThresholds::Serialize() const {
  std::string out;
  codec::PutDouble(&out, very_cold);
  codec::PutDouble(&out, cold);
  codec::PutDouble(&out, warm);
  codec::PutDouble(&out, very_warm);
  return out;
}

Result<ThermalThresholds> ThermalThresholds::Deserialize(
    std::string_view data) {
  ThermalThresholds t;
  if (!codec::GetDouble(&data, &t.very_cold) ||
      !codec::GetDouble(&data, &t.cold) || !codec::GetDouble(&data, &t.warm) ||
      !codec::GetDouble(&data, &t.very_warm) || !data.empty()) {
    return Status::Corruption("ThermalThresholds: bad encoding");
  }
  if (!t.valid()) {
    return Status::Corruption("ThermalThresholds: unordered cut points");
  }
  return t;
}

ThermalThresholds ComputeThresholdsFromHistory(
    const OtImageGenerator& generator, int layers, int cell_px,
    const ThresholdPercentiles& percentiles) {
  const BuildJobSpec& job = generator.job();
  std::vector<double> cell_means;

  for (int layer = 0; layer < layers; ++layer) {
    const GrayImage image = generator.GenerateLayer(layer);
    for (const SpecimenSpec& specimen : job.specimens) {
      const int x0 = job.plate.MmToPx(specimen.x_mm);
      const int y0 = job.plate.MmToPx(specimen.y_mm);
      const int x1 = job.plate.MmToPx(specimen.x_mm + specimen.width_mm);
      const int y1 = job.plate.MmToPx(specimen.y_mm + specimen.length_mm);
      for (int y = y0; y + cell_px <= y1; y += cell_px) {
        for (int x = x0; x + cell_px <= x1; x += cell_px) {
          cell_means.push_back(image.RegionMean(x, y, cell_px, cell_px));
        }
      }
    }
  }

  ThermalThresholds thresholds;
  if (cell_means.empty()) return thresholds;
  std::sort(cell_means.begin(), cell_means.end());
  const auto at = [&](double q) {
    const auto index = static_cast<std::size_t>(
        q * static_cast<double>(cell_means.size() - 1));
    return cell_means[std::min(index, cell_means.size() - 1)];
  };
  thresholds.very_cold = at(percentiles.very_cold);
  thresholds.cold = at(percentiles.cold);
  thresholds.warm = at(percentiles.warm);
  thresholds.very_warm = at(percentiles.very_warm);
  return thresholds;
}

std::string ThresholdKey(const std::string& machine_id) {
  return "thresholds/" + machine_id;
}

}  // namespace strata::am
