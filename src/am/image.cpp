#include "am/image.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/codec.hpp"
#include "common/fs.hpp"

namespace strata::am {

namespace {
constexpr std::uint32_t kImageMagic = 0x4f54494d;  // "OTIM"
}

double GrayImage::RegionMean(int x0, int y0, int w, int h) const {
  const int x_begin = std::max(0, x0);
  const int y_begin = std::max(0, y0);
  const int x_end = std::min(width_, x0 + w);
  const int y_end = std::min(height_, y0 + h);
  if (x_begin >= x_end || y_begin >= y_end) return 0.0;

  std::uint64_t sum = 0;
  for (int y = y_begin; y < y_end; ++y) {
    const std::uint8_t* row =
        pixels_.data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(width_);
    for (int x = x_begin; x < x_end; ++x) sum += row[x];
  }
  const auto count = static_cast<std::uint64_t>(x_end - x_begin) *
                     static_cast<std::uint64_t>(y_end - y_begin);
  return static_cast<double>(sum) / static_cast<double>(count);
}

std::string GrayImage::Serialize() const {
  std::string out;
  out.reserve(12 + pixels_.size());
  codec::PutFixed32(&out, kImageMagic);
  codec::PutFixed32(&out, static_cast<std::uint32_t>(width_));
  codec::PutFixed32(&out, static_cast<std::uint32_t>(height_));
  out.append(reinterpret_cast<const char*>(pixels_.data()), pixels_.size());
  return out;
}

Result<GrayImage> GrayImage::Deserialize(std::string_view data) {
  std::uint32_t magic = 0;
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  if (!codec::GetFixed32(&data, &magic) || magic != kImageMagic ||
      !codec::GetFixed32(&data, &width) || !codec::GetFixed32(&data, &height)) {
    return Status::Corruption("GrayImage: bad header");
  }
  if (width == 0 || height == 0 || width > 1u << 16 || height > 1u << 16) {
    return Status::Corruption("GrayImage: implausible dimensions");
  }
  const std::size_t expected =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  if (data.size() != expected) {
    return Status::Corruption("GrayImage: pixel payload size mismatch");
  }
  GrayImage image(static_cast<int>(width), static_cast<int>(height));
  std::copy(data.begin(), data.end(),
            reinterpret_cast<char*>(image.pixels_.data()));
  return image;
}

Status GrayImage::SavePgm(const std::filesystem::path& path) const {
  std::string contents = "P5\n" + std::to_string(width_) + " " +
                         std::to_string(height_) + "\n255\n";
  contents.append(reinterpret_cast<const char*>(pixels_.data()),
                  pixels_.size());
  return strata::fs::WriteFile(path, contents);
}

Result<GrayImage> GrayImage::LoadPgm(const std::filesystem::path& path) {
  auto contents = strata::fs::ReadFile(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = contents.value();

  // Minimal P5 parser: "P5\n<w> <h>\n<maxval>\n<pixels>".
  std::istringstream header(data.substr(0, 64));
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
  header >> magic >> width >> height >> maxval;
  if (magic != "P5" || width <= 0 || height <= 0 || maxval != 255) {
    return Status::Corruption("LoadPgm: unsupported header in " +
                              path.string());
  }
  const auto header_end = static_cast<std::size_t>(header.tellg()) + 1;
  const std::size_t expected =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  if (data.size() < header_end + expected) {
    return Status::Corruption("LoadPgm: truncated pixels in " + path.string());
  }
  GrayImage image(width, height);
  std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(header_end), expected,
              reinterpret_cast<char*>(image.pixels_.data()));
  return image;
}

}  // namespace strata::am
