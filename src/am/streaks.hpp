// Recoater-streak defect model (second use-case; the paper's conclusion
// plans "extending the portfolio of use-cases ... the type of monitored
// defect").
//
// A damaged or contaminated recoater blade drags a groove through the fresh
// powder bed: a thin line of reduced powder (and hence reduced melt
// emission) along the blade's travel direction, at a fixed position across
// the blade, persisting until the blade is cleaned. We model streaks as
// bands of constant x (the blade travels along y, matching the gas-flow
// axis) spanning the full plate, alive for a contiguous range of layers.
#pragma once

#include <cstdint>
#include <vector>

#include "am/geometry.hpp"
#include "common/rng.hpp"

namespace strata::am {

struct Streak {
  double x_mm = 0.0;        // centre of the band across the blade
  double width_mm = 0.8;    // band width
  int start_layer = 0;      // first affected layer
  int end_layer = 0;        // last affected layer (inclusive)
  double intensity_drop = 25.0;  // gray levels removed inside the band

  [[nodiscard]] bool ActiveOnLayer(int layer) const noexcept {
    return layer >= start_layer && layer <= end_layer;
  }
  [[nodiscard]] bool CoversX(double x) const noexcept {
    return x >= x_mm - width_mm / 2 && x <= x_mm + width_mm / 2;
  }
};

struct StreakModelParams {
  /// Expected new streaks per layer (blade damage events are rare).
  double rate_per_layer = 0.005;
  double mean_width_mm = 0.8;
  /// Streak persists for a geometric number of layers with this mean
  /// (until blade cleaning/replacement).
  int mean_span_layers = 8;
  double mean_intensity_drop = 25.0;
  std::uint64_t seed = 5150;
};

/// Deterministic per-job streak ground truth.
class StreakSeeder {
 public:
  StreakSeeder(const BuildJobSpec& job, StreakModelParams params);

  [[nodiscard]] const std::vector<Streak>& streaks() const noexcept {
    return streaks_;
  }
  [[nodiscard]] std::vector<const Streak*> StreaksOnLayer(int layer) const;

 private:
  std::vector<Streak> streaks_;
};

}  // namespace strata::am
