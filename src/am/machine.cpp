#include "am/machine.hpp"

namespace strata::am {

namespace {
/// Apply the material's signature before the seeder/generator are built.
MachineParams WithMaterial(MachineParams params) {
  ApplyMaterial(params.material, &params.ot, &params.defects);
  return params;
}
}  // namespace

MachineSimulator::MachineSimulator(MachineParams params)
    : params_(WithMaterial(std::move(params))),
      seeder_(params_.job, params_.defects),
      streak_seeder_(params_.streaks.has_value()
                         ? std::make_unique<StreakSeeder>(params_.job,
                                                          *params_.streaks)
                         : nullptr),
      generator_(params_.job, &seeder_, params_.ot, streak_seeder_.get(),
                 &control_),
      total_layers_(params_.layers_limit > 0
                        ? std::min(params_.layers_limit,
                                   params_.job.TotalLayers())
                        : params_.job.TotalLayers()) {}

Timestamp MachineSimulator::LayerPeriodMicros() const noexcept {
  return SecondsToMicros(params_.layer_melt_seconds +
                         params_.job.recoat_seconds);
}

Payload MachineSimulator::PrintingParams(int layer) const {
  Payload p;
  p.Set("scan_angle_deg", params_.job.ScanAngleDeg(layer));
  p.Set("layer_thickness_um", params_.job.layer_thickness_um);
  p.Set("material", params_.material.name);
  p.Set("laser_power_w", params_.material.laser_power_w);
  p.Set("scan_speed_mm_s", params_.material.scan_speed_mm_s);
  p.Set("hatch_distance_um", params_.material.hatch_distance_um);
  p.Set("plate_size_mm", params_.job.plate.size_mm);
  p.Set("image_px", static_cast<std::int64_t>(params_.job.plate.image_px));
  // Specimen layout: the partition step (isolateSpecimen) reads these to
  // know which pixels belong to each specimen (paper §5).
  p.Set("specimen_count",
        static_cast<std::int64_t>(params_.job.specimens.size()));
  for (const SpecimenSpec& s : params_.job.specimens) {
    const std::string prefix = "spec" + std::to_string(s.id) + "_";
    p.Set(prefix + "x_mm", s.x_mm);
    p.Set(prefix + "y_mm", s.y_mm);
    p.Set(prefix + "w_mm", s.width_mm);
    p.Set(prefix + "l_mm", s.length_mm);
    p.Set(prefix + "h_mm", s.height_mm);
  }
  return p;
}

std::optional<LayerData> MachineSimulator::NextLayer() {
  if (control_.terminated()) return std::nullopt;  // job aborted by expert
  if (next_layer_ >= total_layers_) return std::nullopt;
  const int layer = next_layer_++;

  LayerData data;
  data.job = params_.job.job_id;
  data.layer = layer;
  data.event_time = static_cast<Timestamp>(layer + 1) * LayerPeriodMicros();
  data.ot_image = generator_.GenerateLayer(layer);
  data.printing_params = PrintingParams(layer);
  return data;
}

}  // namespace strata::am
