#include "am/material.hpp"

namespace strata::am {

MaterialSpec Ti6Al4V() {
  return MaterialSpec{};  // the defaults: the paper's evaluation material
}

MaterialSpec Inconel718() {
  MaterialSpec m;
  m.name = "IN718";
  // Nickel superalloy: higher melting point, brighter melt pool, slower
  // scanning, more conservative hatch.
  m.base_intensity = 150.0;
  m.pixel_noise_stddev = 6.5;
  m.stripe_amplitude = 7.0;
  m.laser_power_w = 285.0;
  m.scan_speed_mm_s = 960.0;
  m.hatch_distance_um = 110.0;
  m.defect_propensity = 1.3;
  return m;
}

MaterialSpec AlSi10Mg() {
  MaterialSpec m;
  m.name = "AlSi10Mg";
  // Aluminium alloy: high reflectivity (dimmer apparent emission), high
  // thermal conductivity needs more power and speed; spatter-prone.
  m.base_intensity = 105.0;
  m.pixel_noise_stddev = 8.0;
  m.stripe_amplitude = 5.0;
  m.laser_power_w = 370.0;
  m.scan_speed_mm_s = 1300.0;
  m.hatch_distance_um = 190.0;
  m.defect_propensity = 1.8;
  return m;
}

Result<MaterialSpec> MaterialByName(const std::string& name) {
  if (name == "Ti-6Al-4V") return Ti6Al4V();
  if (name == "IN718") return Inconel718();
  if (name == "AlSi10Mg") return AlSi10Mg();
  return Status::NotFound("unknown material: " + name);
}

void ApplyMaterial(const MaterialSpec& material, OtGeneratorParams* ot,
                   DefectModelParams* defects) {
  if (ot != nullptr) {
    ot->base_intensity = material.base_intensity;
    ot->pixel_noise_stddev = material.pixel_noise_stddev;
    ot->stripe_amplitude = material.stripe_amplitude;
  }
  if (defects != nullptr) {
    defects->birth_rate *= material.defect_propensity;
  }
}

}  // namespace strata::am
