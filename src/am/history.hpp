// Historical-data analysis: thermal-energy thresholds.
//
// The paper's detectEvent classifies each cell as very cold / cold / regular
// / warm / very warm against thresholds "computed based on historical
// information from previous jobs" and read from the key-value store. This
// module computes those thresholds from simulated historical layers (the
// cell-mean intensity distribution of defect-free builds) and provides the
// serialization used to persist them.
#pragma once

#include <string>

#include "am/ot_generator.hpp"
#include "common/status.hpp"

namespace strata::am {

/// Gray-level cut points, ordered: very_cold < cold < warm < very_warm.
/// Cells below very_cold / above very_warm are the reported events.
struct ThermalThresholds {
  double very_cold = 0.0;
  double cold = 0.0;
  double warm = 255.0;
  double very_warm = 255.0;

  [[nodiscard]] bool valid() const noexcept {
    return very_cold <= cold && cold <= warm && warm <= very_warm;
  }

  [[nodiscard]] std::string Serialize() const;
  [[nodiscard]] static Result<ThermalThresholds> Deserialize(
      std::string_view data);
};

struct ThresholdPercentiles {
  double very_cold = 0.005;
  double cold = 0.05;
  double warm = 0.95;
  double very_warm = 0.995;
};

/// Run `layers` historical layers through the generator, collect the
/// distribution of cell means (cells of `cell_px` pixels inside specimens),
/// and cut thresholds at the given percentiles.
[[nodiscard]] ThermalThresholds ComputeThresholdsFromHistory(
    const OtImageGenerator& generator, int layers, int cell_px,
    const ThresholdPercentiles& percentiles = {});

/// Canonical KV-store key under which a machine's thresholds live.
[[nodiscard]] std::string ThresholdKey(const std::string& machine_id);

}  // namespace strata::am
