// Synthetic Optical Tomography image generator.
//
// Per layer it renders, for every specimen cross-section, a melt-pool
// intensity field: a base emission level, hatch striping aligned with the
// stack's scan angle, pixel noise (hash-based, deterministic, and
// order-independent so layers can be generated in any order), and the
// intensity deltas of the seeded defects (hot regions brighter, cold regions
// darker). Pixels outside any specimen stay near zero (no melt emission).
//
// What matters for the reproduction is the *shape* of the data: image size,
// per-specimen pixel footprints, a unimodal intensity distribution inside
// specimens whose tails are the detectEvent triggers, and spatially compact
// defect regions correlated across layers for DBSCAN to recover.
#pragma once

#include <memory>

#include "am/control.hpp"
#include "am/defects.hpp"
#include "am/image.hpp"
#include "am/streaks.hpp"

namespace strata::am {

struct OtGeneratorParams {
  double base_intensity = 128.0;
  double pixel_noise_stddev = 5.0;
  double stripe_amplitude = 6.0;
  double stripe_period_mm = 2.0;
  double background_level = 4.0;
  std::uint64_t seed = 7;
};

class OtImageGenerator {
 public:
  OtImageGenerator(BuildJobSpec job, const DefectSeeder* seeder,
                   OtGeneratorParams params = {},
                   const StreakSeeder* streak_seeder = nullptr,
                   const ControlState* control = nullptr);

  /// Render the OT image of one layer.
  [[nodiscard]] GrayImage GenerateLayer(int layer) const;

  [[nodiscard]] const BuildJobSpec& job() const noexcept { return job_; }

 private:
  BuildJobSpec job_;
  const DefectSeeder* seeder_;          // may be null: defect-free job
  const StreakSeeder* streak_seeder_;   // may be null: pristine recoater
  const ControlState* control_;         // may be null: open-loop printing
  OtGeneratorParams params_;
};

}  // namespace strata::am
