#include "am/geometry.hpp"

namespace strata::am {

BuildJobSpec MakePaperJob(std::int64_t job_id, int image_px) {
  BuildJobSpec job;
  job.job_id = job_id;
  job.plate.image_px = image_px;

  // 4 columns x 3 rows of 25x50 mm blocks, centred with even margins:
  // x: 4*25 = 100 mm used, 150 mm of gaps -> 30 mm pitch gap
  // y: 3*50 = 150 mm used, 100 mm of gaps -> 25 mm pitch gap
  const double x_gap = (250.0 - 4 * 25.0) / 5.0;
  const double y_gap = (250.0 - 3 * 50.0) / 4.0;
  std::int64_t id = 0;
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 4; ++col) {
      SpecimenSpec s;
      s.id = id++;
      s.x_mm = x_gap + col * (25.0 + x_gap);
      s.y_mm = y_gap + row * (50.0 + y_gap);
      // Three XCT cylinders along the block's long axis (paper §5).
      for (int c = 0; c < 3; ++c) {
        s.xct_cylinders.push_back(
            CylinderSpec{12.5, 12.5 + 12.5 * c, 2.0});
      }
      job.specimens.push_back(s);
    }
  }
  return job;
}

BuildJobSpec MakeSmallJob(std::int64_t job_id, int image_px, int specimens) {
  BuildJobSpec job;
  job.job_id = job_id;
  job.plate.image_px = image_px;
  job.layer_thickness_um = 40.0;
  const double gap = 250.0 / (specimens + 1);
  for (int i = 0; i < specimens; ++i) {
    SpecimenSpec s;
    s.id = i;
    s.x_mm = gap * (i + 1) - 12.5;
    s.y_mm = 100.0;
    s.height_mm = 4.0;  // 100 layers at 40 um
    job.specimens.push_back(s);
  }
  return job;
}

}  // namespace strata::am
