// Build-plate and job geometry mirroring the paper's evaluation data (§5):
// an EOS M290-class machine with a 250x250 mm plate imaged at 2000x2000 px,
// printing 12 blocks of 25 (W) x 50 (L) x 23 (H) mm, each broken into 23
// one-millimetre stacks whose laser scan orientation rotates relative to the
// gas flow (back -> front), creating orientation-dependent defect risk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace strata::am {

/// A small cylinder embedded in a specimen for later X-ray Computed
/// Tomography of the 3D defect distribution (paper §5: "three small
/// cylinders are defined to later measure the three-dimensional
/// distribution of process defects"). Coordinates are relative to the
/// specimen's lower-left corner; cylinders span the full build height.
struct CylinderSpec {
  double cx_mm = 0.0;
  double cy_mm = 0.0;
  double radius_mm = 2.0;
};

/// Axis-aligned placement of one specimen on the plate (mm).
struct SpecimenSpec {
  std::int64_t id = 0;
  double x_mm = 0.0;  // lower-left corner
  double y_mm = 0.0;
  double width_mm = 25.0;   // along x
  double length_mm = 50.0;  // along y
  double height_mm = 23.0;
  std::vector<CylinderSpec> xct_cylinders;

  [[nodiscard]] bool Contains(double x, double y) const noexcept {
    return x >= x_mm && x < x_mm + width_mm && y >= y_mm &&
           y < y_mm + length_mm;
  }

  /// Index of the XCT cylinder containing plate point (x, y), or -1.
  [[nodiscard]] int CylinderIndexAt(double x, double y) const noexcept {
    for (std::size_t i = 0; i < xct_cylinders.size(); ++i) {
      const CylinderSpec& c = xct_cylinders[i];
      const double dx = x - (x_mm + c.cx_mm);
      const double dy = y - (y_mm + c.cy_mm);
      if (dx * dx + dy * dy <= c.radius_mm * c.radius_mm) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

struct PlateSpec {
  double size_mm = 250.0;  // square plate
  int image_px = 2000;     // OT image resolution (square)

  [[nodiscard]] double PxPerMm() const noexcept {
    return static_cast<double>(image_px) / size_mm;
  }
  [[nodiscard]] int MmToPx(double mm) const noexcept {
    return static_cast<int>(mm * PxPerMm());
  }
  [[nodiscard]] double PxToMm(double px) const noexcept {
    return px / PxPerMm();
  }
};

struct BuildJobSpec {
  std::int64_t job_id = 0;
  PlateSpec plate;
  std::vector<SpecimenSpec> specimens;
  double layer_thickness_um = 40.0;
  /// Stack height: the laser scan orientation changes every stack (paper:
  /// 23 stacks of 1 mm within each 23 mm block).
  double stack_height_mm = 1.0;
  /// Gap between layers while the recoater runs (the QoS budget, §5: ~3 s).
  double recoat_seconds = 3.0;
  /// Base scan angles cycle per stack, degrees relative to gas flow.
  std::vector<double> stack_angles_deg = {0, 45, 90, 135, 180, 225, 270, 315};

  [[nodiscard]] int TotalLayers() const noexcept {
    double max_height = 0.0;
    for (const SpecimenSpec& s : specimens) {
      max_height = max_height > s.height_mm ? max_height : s.height_mm;
    }
    return static_cast<int>(max_height * 1000.0 / layer_thickness_um);
  }

  [[nodiscard]] int LayersPerStack() const noexcept {
    return static_cast<int>(stack_height_mm * 1000.0 / layer_thickness_um);
  }

  /// Scan angle used on a given layer (cycles per stack).
  [[nodiscard]] double ScanAngleDeg(int layer) const noexcept {
    const int stack = layer / (LayersPerStack() > 0 ? LayersPerStack() : 1);
    return stack_angles_deg[static_cast<std::size_t>(stack) %
                            stack_angles_deg.size()];
  }
};

/// The paper's evaluation job: 12 specimens of 25x50x23 mm laid out in a
/// 4 x 3 grid on the 250 mm plate, with `image_px` OT resolution.
[[nodiscard]] BuildJobSpec MakePaperJob(std::int64_t job_id,
                                        int image_px = 2000);

/// A reduced job (fewer/smaller specimens, coarser image) for fast tests.
[[nodiscard]] BuildJobSpec MakeSmallJob(std::int64_t job_id,
                                        int image_px = 250,
                                        int specimens = 2);

}  // namespace strata::am
