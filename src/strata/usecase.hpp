// The paper's real-world use-case (§5, Figure 3, Algorithm 1): detect
// specimen portions melted with too-low or too-high thermal energy and
// cluster them within and across layers with DBSCAN.
//
// Pipeline (Alg. 1):
//   1  addSource(PrintingParameterCollector, pp)
//   2  addSource(OTImageCollector, OT)
//   3  fuse(OT, pp, OT&pp)                      -- Join on τ, job, layer
//   4  partition(OT&pp, spec, isolateSpecimen)  -- per-specimen sub-frames
//   5  partition(spec, cell, isolateCell)       -- per-cell mean intensity
//   6  detectEvent(cell, cellLabel, labelCell)  -- classify vs KV thresholds
//   7  correlateEvents(cellLabel, out, L, DBSCAN)
#pragma once

#include <functional>
#include <memory>

#include "am/history.hpp"
#include "clustering/dbscan.hpp"
#include "strata/collectors.hpp"
#include "strata/strata.hpp"

namespace strata::core {

struct UseCaseParams {
  std::string machine_id = "m0";
  /// Cell edge in pixels (paper sweeps 40x40 .. 2x2).
  int cell_px = 20;
  /// L: number of previous layers correlateEvents clusters together
  /// (paper sweeps 5 .. 80).
  std::int64_t correlate_layers = 20;
  /// Parallelism of the cell partition / labeling stages.
  int partition_parallelism = 1;
  int detect_parallelism = 1;
  /// DBSCAN in-plane radius in units of the cell edge (adjacent cells
  /// connect when > 1).
  double dbscan_eps_cells = 1.6;
  std::int64_t dbscan_layer_reach = 2;
  std::size_t dbscan_min_pts = 3;
  /// Clusters smaller than this are not reported to the expert.
  std::size_t min_report_points = 5;
  /// Render a Figure-4-style cluster image per report (costs CPU).
  bool render_cluster_images = false;
};

/// Cell classification labels (paper: very cold/cold/regular/warm/very warm).
enum class CellLabel : int {
  kVeryCold = -2,
  kCold = -1,
  kRegular = 0,
  kWarm = 1,
  kVeryWarm = 2,
};

[[nodiscard]] CellLabel ClassifyCell(double mean,
                                     const am::ThermalThresholds& thresholds);

/// Per-(layer, specimen) result delivered to the expert.
struct ClusterReport {
  std::int64_t job = 0;
  std::int64_t layer = 0;
  std::int64_t specimen = 0;
  std::vector<cluster::ClusterSummary> clusters;  // >= min_report_points
  std::size_t window_events = 0;
  std::size_t noise_events = 0;
  /// Set when render_cluster_images is on.
  std::shared_ptr<const am::GrayImage> rendering;
};

/// Opaque payload wrapper carrying a ClusterReport to the sink.
class ClusterReportValue final : public OpaqueValue {
 public:
  explicit ClusterReportValue(ClusterReport report)
      : report_(std::move(report)) {}
  [[nodiscard]] const char* TypeName() const noexcept override {
    return "ClusterReport";
  }
  [[nodiscard]] std::size_t ApproxBytes() const noexcept override {
    return sizeof(ClusterReport) + report_.clusters.size() * sizeof(cluster::ClusterSummary);
  }
  [[nodiscard]] const ClusterReport& report() const noexcept {
    return report_;
  }

 private:
  ClusterReport report_;
};

// ---- Algorithm 1 user functions --------------------------------------------

/// isolateSpecimen(): one output tuple per specimen cross-section present on
/// the layer, carrying the shared OT frame plus the specimen's pixel rect,
/// followed by a per-specimen layer-completion marker.
[[nodiscard]] PartitionFn IsolateSpecimen();

/// isolateCell(): per specimen tuple, one output tuple per cell_px x cell_px
/// cell with its mean intensity and plate-coordinates centre (mm).
[[nodiscard]] PartitionFn IsolateCell(int cell_px);

/// labelCell(): classify each cell against the machine's thresholds (read
/// once from the key-value store) and forward only very-cold/very-warm cells
/// as events. Throws at first use if the thresholds are missing.
[[nodiscard]] DetectFn LabelCell(Strata* strata, std::string machine_id);

/// DBSCAN correlator for correlateEvents: clusters the window's events under
/// the cylinder metric and emits one report tuple per completed layer.
[[nodiscard]] CorrelateFn DbscanCorrelator(const UseCaseParams& params,
                                           double px_per_mm);

/// Figure-4-style rendering: events colored by cluster id over the specimen
/// footprint.
[[nodiscard]] am::GrayImage RenderClusterImage(
    const std::vector<cluster::Point>& points, const std::vector<int>& labels,
    const am::SpecimenSpec& specimen, double px_per_mm);

// ---- Pipeline assembly ------------------------------------------------------

/// Builds the analysis half of Algorithm 1 (L3-L7: fuse, partition, detect,
/// correlate, deliver) on pre-existing pp/ot streams. Use directly when the
/// collectors run in a different process and the streams arrive through
/// Strata::ImportSource over a networked broker; BuildThermalPipeline wraps
/// it for the single-process case. `px_per_mm` is the OT camera resolution
/// (machine->job().plate.PxPerMm() when the machine is at hand).
spe::SinkOperator* BuildThermalAnalysis(
    Strata* strata, spe::StreamPtr pp, spe::StreamPtr ot, double px_per_mm,
    const UseCaseParams& params,
    std::function<void(const ClusterReport&)> deliver);

/// Builds the full Algorithm-1 pipeline on `strata` for one machine.
/// `deliver` receives each ClusterReport. Returns the expert-facing sink
/// (whose latency histogram is the paper's reported metric).
spe::SinkOperator* BuildThermalPipeline(
    Strata* strata, std::shared_ptr<am::MachineSimulator> machine,
    const CollectorPacing& pacing, const UseCaseParams& params,
    std::function<void(const ClusterReport&)> deliver);

// ---- XCT post-analysis ------------------------------------------------------

/// Defect density observed inside each embedded XCT cylinder (paper §5:
/// the cylinders are machined out after the build and scanned by X-ray
/// Computed Tomography; this gives the in-situ prediction to compare
/// against). One entry per (specimen, cylinder) with at least one cluster
/// centroid inside the cylinder footprint.
struct XctCylinderSummary {
  std::int64_t specimen = 0;
  int cylinder = -1;
  /// Per-layer cluster observations whose centroid fell in this cylinder.
  std::size_t cluster_observations = 0;
  /// Accumulated cluster weight (event deviation mass).
  double total_weight = 0.0;
};

[[nodiscard]] std::vector<XctCylinderSummary> SummarizeDefectsPerCylinder(
    const std::vector<ClusterReport>& reports, const am::BuildJobSpec& job);

/// Computes thresholds from a simulated defect-free historical job for the
/// same geometry and stores them in the KV store under ThresholdKey().
[[nodiscard]] Status ComputeAndStoreThresholds(Strata* strata,
                                               const std::string& machine_id,
                                               const am::BuildJobSpec& job,
                                               int history_layers,
                                               int cell_px);

}  // namespace strata::core
