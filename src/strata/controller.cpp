#include "strata/controller.hpp"

#include "common/logging.hpp"

namespace strata::core {

std::function<void(const ClusterReport&)> FeedbackController::AsDeliverFn() {
  return [this](const ClusterReport& report) { OnReport(report); };
}

void FeedbackController::OnReport(const ClusterReport& report) {
  std::lock_guard lock(mu_);
  ++stats_.reports_seen;
  if (stats_.terminated) return;

  SpecimenState& state = specimens_[report.specimen];
  std::size_t new_points = 0;
  for (const cluster::ClusterSummary& summary : report.clusters) {
    new_points += summary.point_count;
  }

  state.lifetime_points += new_points;
  if (policy_.hard_terminate_points > 0 &&
      state.lifetime_points >= policy_.hard_terminate_points) {
    stats_.terminated = true;
    stats_.terminate_layer = report.layer;
    machine_->control().TerminateJob();
    LOG_WARN << "controller: hard-terminating job at layer " << report.layer
             << " (specimen " << report.specimen << " reached "
             << state.lifetime_points << " defect points)";
    return;
  }

  if (!state.adjusted) {
    state.accumulated_points += new_points;
    if (state.accumulated_points >= policy_.adjust_cluster_points) {
      state.adjusted = true;
      ++stats_.adjustments_issued;
      // Effective from the layer after the one just analyzed: the machine
      // may already be melting report.layer + 1, but the correction lands
      // as soon as physically possible.
      machine_->control().AdjustSpecimen(
          report.specimen, static_cast<int>(report.layer) + 1);
      LOG_INFO << "controller: adjusting specimen " << report.specimen
               << " from layer " << report.layer + 1 << " ("
               << state.accumulated_points << " defect points)";
    }
    return;
  }

  // Adjusted specimens: watch for defects the correction failed to remove.
  // Only count events from layers after the adjustment took effect — the
  // correlate window still contains pre-adjustment history.
  std::size_t fresh_points = 0;
  for (const cluster::ClusterSummary& summary : report.clusters) {
    if (machine_->control().IsMitigated(report.specimen,
                                        static_cast<int>(summary.min_layer))) {
      fresh_points += summary.point_count;
    }
  }
  state.points_after_adjust += fresh_points;
  if (state.points_after_adjust >= policy_.post_adjust_points) {
    state.still_defective = true;
  }

  // Termination check.
  const std::size_t total_specimens = machine_->job().specimens.size();
  if (total_specimens == 0 || policy_.terminate_specimen_fraction > 1.0) {
    return;
  }
  std::size_t failed = 0;
  for (const auto& [specimen, s] : specimens_) {
    if (s.still_defective) ++failed;
  }
  if (static_cast<double>(failed) >=
      policy_.terminate_specimen_fraction *
          static_cast<double>(total_specimens)) {
    stats_.terminated = true;
    stats_.terminate_layer = report.layer;
    machine_->control().TerminateJob();
    LOG_WARN << "controller: terminating job at layer " << report.layer
             << " (" << failed << "/" << total_specimens
             << " specimens defective after adjustment)";
  }
}

}  // namespace strata::core
