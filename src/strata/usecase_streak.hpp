// Second use-case: recoater-streak detection.
//
// A damaged recoater blade drags a groove through the powder bed: a thin,
// plate-spanning band of reduced melt emission at a fixed x position that
// persists across layers until the blade is serviced. The pipeline reuses
// STRATA's Table-1 API:
//
//   addSource(pp) + addSource(OT)
//   fuse(OT, pp)
//   partition(isolateSpecimen)          -- same per-specimen isolation
//   detectEvent(detectStreakColumns)    -- per-column mean vs the specimen's
//                                          median: a column darker by more
//                                          than `column_drop` gray levels is
//                                          a streak event
//   correlateEvents(L, DBSCAN)          -- events cluster tightly in x and
//                                          persist across layers; reported
//                                          when spanning >= min layers
//
// This demonstrates the paper's claim that new defect analyses are new
// compositions of the same API, sharing modules with the thermal pipeline.
#pragma once

#include "strata/usecase.hpp"

namespace strata::core {

struct StreakUseCaseParams {
  std::string machine_id = "m0";
  /// Column darker than the specimen median by this many gray levels -> event.
  double column_drop = 12.0;
  /// Layers correlateEvents looks back through.
  std::int64_t correlate_layers = 10;
  /// DBSCAN radius across x (mm) — streak events align at the same x.
  double eps_x_mm = 2.0;
  std::int64_t dbscan_layer_reach = 2;
  std::size_t dbscan_min_pts = 2;
  /// A streak is reported once its cluster spans at least this many layers.
  std::int64_t min_span_layers = 3;
};

/// detectEvent user function: per specimen frame, one event per column whose
/// mean intensity sits `column_drop` below the specimen's median column.
[[nodiscard]] DetectFn DetectStreakColumns(double column_drop);

/// correlateEvents user function: DBSCAN over (x, layer); reports clusters
/// spanning >= min_span_layers as ClusterReports.
[[nodiscard]] CorrelateFn StreakCorrelator(const StreakUseCaseParams& params);

/// Assembles the pipeline; `deliver` receives a ClusterReport per confirmed
/// streak observation (per layer, specimen).
spe::SinkOperator* BuildStreakPipeline(
    Strata* strata, std::shared_ptr<am::MachineSimulator> machine,
    const CollectorPacing& pacing, const StreakUseCaseParams& params,
    std::function<void(const ClusterReport&)> deliver);

}  // namespace strata::core
