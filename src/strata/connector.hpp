// Pub/sub connectors bridging the SPE and the broker (the Raw Data
// Connector and Event Connector modules of Figure 2).
//
// Publisher side: a SinkFn that serializes each tuple and produces it to a
// topic, plus a finish hook that appends an end-of-stream sentinel once the
// upstream drains (each connector topic has exactly one publisher).
//
// Subscriber side: a SourceFn wrapping a consumer-group member. It polls the
// topic and re-materializes tuples; after the EOS sentinel it drains all
// assigned partitions and ends the stream. Stop() aborts the poll loop for
// non-draining shutdown.
#pragma once

#include <atomic>
#include <deque>
#include <memory>

#include "pubsub/client.hpp"
#include "pubsub/consumer.hpp"
#include "pubsub/producer.hpp"
#include "spe/functions.hpp"
#include "strata/transport.hpp"

namespace strata::core {

/// Key extractor for topic partitioning (per-key order is preserved).
using PartitionKeyFn = std::function<std::string(const spe::Tuple&)>;

class ConnectorPublisher {
 public:
  /// Transport-neutral: `producer` may be embedded or remote.
  ConnectorPublisher(std::unique_ptr<ps::ProducerClient> producer,
                     std::string topic, PartitionKeyFn key_fn)
      : producer_(std::move(producer)),
        topic_(std::move(topic)),
        key_fn_(std::move(key_fn)) {}

  /// Convenience for the embedded broker.
  ConnectorPublisher(ps::Broker* broker, std::string topic,
                     PartitionKeyFn key_fn)
      : ConnectorPublisher(std::make_unique<ps::Producer>(broker),
                           std::move(topic), std::move(key_fn)) {}

  /// SinkFn publishing each tuple.
  [[nodiscard]] spe::SinkFn AsSinkFn();
  /// Finish hook publishing the EOS sentinel.
  [[nodiscard]] std::function<void()> AsFinishHook();

 private:
  std::unique_ptr<ps::ProducerClient> producer_;
  std::string topic_;
  PartitionKeyFn key_fn_;
};

class ConnectorSubscriber {
 public:
  /// Transport-neutral: `client` may be the embedded broker or a remote one.
  [[nodiscard]] static Result<std::shared_ptr<ConnectorSubscriber>> Create(
      ps::BrokerClient* client, const std::string& topic,
      const std::string& group);

  /// Convenience for the embedded broker.
  [[nodiscard]] static Result<std::shared_ptr<ConnectorSubscriber>> Create(
      ps::Broker* broker, const std::string& topic, const std::string& group);

  /// SourceFn yielding tuples until EOS-and-drained or Stop().
  [[nodiscard]] spe::SourceFn AsSourceFn();

  /// BatchSourceFn yielding everything one broker poll returned as a single
  /// batch — the SPE emits and flushes it as a unit, so broker poll
  /// boundaries become data-plane batch boundaries (no per-tuple handoff).
  [[nodiscard]] spe::BatchSourceFn AsBatchSourceFn();

  void Stop() { stopped_.store(true, std::memory_order_release); }

 private:
  ConnectorSubscriber(std::unique_ptr<ps::ConsumerClient> consumer,
                      std::string topic)
      : consumer_(std::move(consumer)), topic_(std::move(topic)) {}

  /// Polls until `buffered_` is non-empty; false at end of stream.
  [[nodiscard]] bool FillBuffer();
  [[nodiscard]] std::optional<spe::Tuple> Next();
  [[nodiscard]] std::optional<spe::TupleBatch> NextBatch();

  std::unique_ptr<ps::ConsumerClient> consumer_;
  std::string topic_;  ///< span naming only
  std::deque<spe::Tuple> buffered_;
  std::atomic<bool> stopped_{false};
  bool eos_seen_ = false;
};

}  // namespace strata::core
