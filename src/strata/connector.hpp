// Pub/sub connectors bridging the SPE and the broker (the Raw Data
// Connector and Event Connector modules of Figure 2).
//
// Publisher side: a SinkFn that serializes each tuple and produces it to a
// topic, plus a finish hook that appends an end-of-stream sentinel once the
// upstream drains (each connector topic has exactly one publisher).
//
// Subscriber side: a SourceFn wrapping a consumer-group member. It polls the
// topic and re-materializes tuples; after the EOS sentinel it drains all
// assigned partitions and ends the stream. Stop() aborts the poll loop for
// non-draining shutdown.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "pubsub/client.hpp"
#include "pubsub/consumer.hpp"
#include "pubsub/producer.hpp"
#include "spe/functions.hpp"
#include "spe/operator.hpp"
#include "strata/transport.hpp"

namespace strata::core {

/// Key extractor for topic partitioning (per-key order is preserved).
using PartitionKeyFn = std::function<std::string(const spe::Tuple&)>;

class ConnectorPublisher {
 public:
  /// Transport-neutral: `producer` may be embedded or remote.
  ConnectorPublisher(std::unique_ptr<ps::ProducerClient> producer,
                     std::string topic, PartitionKeyFn key_fn)
      : producer_(std::move(producer)),
        topic_(std::move(topic)),
        key_fn_(std::move(key_fn)) {}

  /// Convenience for the embedded broker.
  ConnectorPublisher(ps::Broker* broker, std::string topic,
                     PartitionKeyFn key_fn)
      : ConnectorPublisher(std::make_unique<ps::Producer>(broker),
                           std::move(topic), std::move(key_fn)) {}

  /// SinkFn publishing each tuple.
  [[nodiscard]] spe::SinkFn AsSinkFn();
  /// Finish hook publishing the EOS sentinel (always untagged).
  [[nodiscard]] std::function<void()> AsFinishHook();

  /// Tag every published record with (epoch, seq) for effectively-once
  /// consumption (checkpointing deployments). Call before the query starts.
  void EnableTagging() { tagging_ = true; }

  /// Checkpoint hooks for the publishing sink operator: the snapshot records
  /// the sequence counter at the epoch boundary, so a recovered publisher
  /// re-tags replayed tuples with their original sequence numbers and
  /// subscribers drop them as duplicates.
  [[nodiscard]] spe::SnapshotFn AsSnapshotFn();
  [[nodiscard]] spe::RestoreFn AsRestoreFn();

 private:
  std::unique_ptr<ps::ProducerClient> producer_;
  std::string topic_;
  PartitionKeyFn key_fn_;
  bool tagging_ = false;
  // Tag state. Touched only on the sink operator's thread: the SinkFn and
  // the snapshot hook both run there, and the restore hook runs before the
  // query starts.
  std::uint64_t epoch_ = 0;
  std::uint64_t seq_ = 0;  ///< last assigned sequence number (first tag is 1)
};

class ConnectorSubscriber {
 public:
  /// Transport-neutral: `client` may be the embedded broker or a remote one.
  [[nodiscard]] static Result<std::shared_ptr<ConnectorSubscriber>> Create(
      ps::BrokerClient* client, const std::string& topic,
      const std::string& group);

  /// Convenience for the embedded broker.
  [[nodiscard]] static Result<std::shared_ptr<ConnectorSubscriber>> Create(
      ps::Broker* broker, const std::string& topic, const std::string& group);

  /// SourceFn yielding tuples until EOS-and-drained or Stop().
  [[nodiscard]] spe::SourceFn AsSourceFn();

  /// BatchSourceFn yielding everything one broker poll returned as a single
  /// batch — the SPE emits and flushes it as a unit, so broker poll
  /// boundaries become data-plane batch boundaries (no per-tuple handoff).
  [[nodiscard]] spe::BatchSourceFn AsBatchSourceFn();

  void Stop() { stopped_.store(true, std::memory_order_release); }

  /// Checkpoint hooks for the subscribing source operator. The snapshot is
  /// the per-partition replay cursor (the offset of the first record not yet
  /// delivered into the SPE) plus the per-partition delivered sequence
  /// floor. Restore seeks the consumer back to those offsets — a truncated
  /// offset surfaces the broker's OutOfRange instead of silently skipping
  /// data — and re-seeds the floors so replayed records dedupe.
  [[nodiscard]] spe::SnapshotFn AsSnapshotFn();
  [[nodiscard]] spe::RestoreFn AsRestoreFn();

  /// Tagged records dropped as already-delivered duplicates (replay).
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept {
    return duplicates_dropped_.load(std::memory_order_relaxed);
  }

 private:
  /// One polled record awaiting delivery into the SPE.
  struct Buffered {
    spe::Tuple tuple;
    int partition = 0;
    std::int64_t offset = 0;
    std::uint64_t seq = 0;  ///< 0 = untagged
  };

  ConnectorSubscriber(std::unique_ptr<ps::ConsumerClient> consumer,
                      std::string topic)
      : consumer_(std::move(consumer)), topic_(std::move(topic)) {}

  /// Polls until `buffered_` is non-empty; false at end of stream.
  [[nodiscard]] bool FillBuffer();
  [[nodiscard]] std::optional<spe::Tuple> Next();
  [[nodiscard]] std::optional<spe::TupleBatch> NextBatch();
  void NoteDelivered(const Buffered& entry);

  std::unique_ptr<ps::ConsumerClient> consumer_;
  std::string topic_;  ///< span naming only
  std::deque<Buffered> buffered_;
  std::atomic<bool> stopped_{false};
  bool eos_seen_ = false;
  // Replay/dedupe state, touched only on the source operator's thread (the
  // restore hook runs before the query starts).
  std::map<int, std::int64_t> poll_next_;     ///< next un-polled offset
  std::map<int, std::uint64_t> seen_floor_;   ///< max seq polled (dedupe gate)
  std::map<int, std::uint64_t> deliv_floor_;  ///< max seq delivered to SPE
  std::atomic<std::uint64_t> duplicates_dropped_{0};
};

}  // namespace strata::core
