#include "strata/usecase.hpp"

#include <mutex>

#include "common/logging.hpp"

namespace strata::core {

CellLabel ClassifyCell(double mean, const am::ThermalThresholds& t) {
  if (mean < t.very_cold) return CellLabel::kVeryCold;
  if (mean < t.cold) return CellLabel::kCold;
  if (mean > t.very_warm) return CellLabel::kVeryWarm;
  if (mean > t.warm) return CellLabel::kWarm;
  return CellLabel::kRegular;
}

PartitionFn IsolateSpecimen() {
  return [](const spe::Tuple& t) -> std::vector<spe::Tuple> {
    std::vector<spe::Tuple> out;
    if (ForwardMarker(t, &out)) return out;

    const Value* image = t.payload.Find(kOtImageKey);
    const Value* count = t.payload.Find("specimen_count");
    if (image == nullptr || count == nullptr) {
      LOG_WARN << "isolateSpecimen: tuple missing image or layout, dropping";
      return out;
    }
    const double plate_mm = t.payload.Get("plate_size_mm").AsDouble();
    const auto image_px = t.payload.Get("image_px").AsInt();
    const double px_per_mm = static_cast<double>(image_px) / plate_mm;
    const double layer_mm =
        static_cast<double>(t.layer) *
        t.payload.Get("layer_thickness_um").AsDouble() / 1000.0;

    for (std::int64_t s = 0; s < count->AsInt(); ++s) {
      const std::string prefix = "spec" + std::to_string(s) + "_";
      // Skip specimens that topped out below this layer.
      if (layer_mm >= t.payload.Get(prefix + "h_mm").AsDouble()) continue;

      spe::Tuple specimen;
      specimen.specimen = s;
      specimen.portion = 0;
      specimen.payload.Set(kOtImageKey, *image);
      specimen.payload.Set("x_mm", t.payload.Get(prefix + "x_mm").AsDouble());
      specimen.payload.Set("y_mm", t.payload.Get(prefix + "y_mm").AsDouble());
      specimen.payload.Set("w_mm", t.payload.Get(prefix + "w_mm").AsDouble());
      specimen.payload.Set("l_mm", t.payload.Get(prefix + "l_mm").AsDouble());
      specimen.payload.Set("px_per_mm", px_per_mm);
      out.push_back(std::move(specimen));

      // Layer-completion marker for this specimen: everything emitted for
      // (job, layer, specimen) precedes it on the stream.
      spe::Tuple marker;
      marker.event_time = t.event_time;
      marker.job = t.job;
      marker.layer = t.layer;
      marker.specimen = s;
      marker.stimulus = t.stimulus;
      marker.payload.Set(kLayerMarkerKey, true);
      out.push_back(std::move(marker));
    }
    return out;
  };
}

PartitionFn IsolateCell(int cell_px) {
  if (cell_px < 1) throw std::invalid_argument("IsolateCell: cell_px < 1");
  return [cell_px](const spe::Tuple& t) -> std::vector<spe::Tuple> {
    std::vector<spe::Tuple> out;
    if (ForwardMarker(t, &out)) return out;

    const auto image = t.payload.Get(kOtImageKey).AsOpaque<am::ImageValue>();
    const double px_per_mm = t.payload.Get("px_per_mm").AsDouble();
    const int x0 = static_cast<int>(t.payload.Get("x_mm").AsDouble() * px_per_mm);
    const int y0 = static_cast<int>(t.payload.Get("y_mm").AsDouble() * px_per_mm);
    const int x1 = x0 + static_cast<int>(t.payload.Get("w_mm").AsDouble() * px_per_mm);
    const int y1 = y0 + static_cast<int>(t.payload.Get("l_mm").AsDouble() * px_per_mm);

    const am::GrayImage& frame = image->image();
    std::int64_t portion = 0;
    for (int y = y0; y + cell_px <= y1; y += cell_px) {
      for (int x = x0; x + cell_px <= x1; x += cell_px) {
        spe::Tuple cell;
        cell.specimen = t.specimen;
        cell.portion = portion++;
        cell.payload.Set("mean", frame.RegionMean(x, y, cell_px, cell_px));
        cell.payload.Set("cx_mm",
                         (x + cell_px / 2.0) / px_per_mm);
        cell.payload.Set("cy_mm",
                         (y + cell_px / 2.0) / px_per_mm);
        out.push_back(std::move(cell));
      }
    }
    return out;
  };
}

DetectFn LabelCell(Strata* strata, std::string machine_id) {
  // Thresholds are loaded from the KV store once, at first use (the
  // Aggregate operator instantiated by detectEvent "gets the relevant
  // thresholds from the key-value store", §5).
  struct Cache {
    std::once_flag once;
    am::ThermalThresholds thresholds;
  };
  auto cache = std::make_shared<Cache>();

  return [strata, machine_id = std::move(machine_id),
          cache](const spe::Tuple& t) -> std::vector<spe::Tuple> {
    std::vector<spe::Tuple> out;
    if (ForwardMarker(t, &out)) return out;

    std::call_once(cache->once, [&] {
      auto stored = strata->Get(am::ThresholdKey(machine_id));
      stored.status().OrDie();
      auto decoded = am::ThermalThresholds::Deserialize(*stored);
      decoded.status().OrDie();
      cache->thresholds = *decoded;
    });

    const double mean = t.payload.Get("mean").AsDouble();
    const CellLabel label = ClassifyCell(mean, cache->thresholds);
    if (label != CellLabel::kVeryCold && label != CellLabel::kVeryWarm) {
      return out;  // only the extreme classes become events (§5)
    }

    spe::Tuple event;
    event.specimen = t.specimen;
    event.portion = t.portion;
    event.payload.Set("cx_mm", t.payload.Get("cx_mm"));
    event.payload.Set("cy_mm", t.payload.Get("cy_mm"));
    event.payload.Set("mean", mean);
    event.payload.Set("label", static_cast<std::int64_t>(label));
    const double mid = (cache->thresholds.cold + cache->thresholds.warm) / 2.0;
    event.payload.Set("deviation", mean > mid ? mean - mid : mid - mean);
    out.push_back(std::move(event));
    return out;
  };
}

am::GrayImage RenderClusterImage(const std::vector<cluster::Point>& points,
                                 const std::vector<int>& labels,
                                 const am::SpecimenSpec& specimen,
                                 double px_per_mm) {
  const int width =
      std::max(1, static_cast<int>(specimen.width_mm * px_per_mm));
  const int height =
      std::max(1, static_cast<int>(specimen.length_mm * px_per_mm));
  am::GrayImage image(width, height, 0);

  // Distinct gray bands per cluster; noise dim.
  for (std::size_t i = 0; i < points.size(); ++i) {
    const int label = labels[i];
    const std::uint8_t shade =
        label < 0 ? 40
                  : static_cast<std::uint8_t>(90 + (label * 37) % 160);
    const int x =
        static_cast<int>((points[i].x - specimen.x_mm) * px_per_mm);
    const int y =
        static_cast<int>((points[i].y - specimen.y_mm) * px_per_mm);
    const int radius = std::max(1, static_cast<int>(px_per_mm / 2));
    for (int dy = -radius; dy <= radius; ++dy) {
      for (int dx = -radius; dx <= radius; ++dx) {
        const int px = x + dx;
        const int py = y + dy;
        if (px >= 0 && px < width && py >= 0 && py < height) {
          image.set(px, py, shade);
        }
      }
    }
  }
  return image;
}

CorrelateFn DbscanCorrelator(const UseCaseParams& params, double px_per_mm) {
  const double cell_mm = static_cast<double>(params.cell_px) / px_per_mm;
  cluster::DbscanParams dbscan;
  dbscan.metric.eps_xy = params.dbscan_eps_cells * cell_mm;
  dbscan.metric.layer_reach = params.dbscan_layer_reach;
  dbscan.min_pts = params.dbscan_min_pts;
  const std::size_t min_report = params.min_report_points;
  const bool render = params.render_cluster_images;

  return [dbscan, min_report, render,
          px_per_mm](const EventWindow& window) -> std::vector<spe::Tuple> {
    std::vector<cluster::Point> points;
    points.reserve(window.events.size());
    double min_x = 0.0;
    double min_y = 0.0;
    double max_x = 0.0;
    double max_y = 0.0;
    for (const spe::Tuple& event : window.events) {
      cluster::Point p;
      p.x = event.payload.Get("cx_mm").AsDouble();
      p.y = event.payload.Get("cy_mm").AsDouble();
      p.layer = event.layer;
      p.weight = event.payload.Get("deviation").AsDouble();
      if (points.empty() || p.x < min_x) min_x = p.x;
      if (points.empty() || p.y < min_y) min_y = p.y;
      if (points.empty() || p.x > max_x) max_x = p.x;
      if (points.empty() || p.y > max_y) max_y = p.y;
      points.push_back(p);
    }

    const cluster::DbscanResult result = cluster::Dbscan(points, dbscan);

    ClusterReport report;
    report.job = window.job;
    report.layer = window.layer;
    report.specimen = window.specimen;
    report.window_events = points.size();
    report.noise_events = result.noise_points;
    for (cluster::ClusterSummary& summary :
         cluster::SummarizeClusters(points, result.labels)) {
      if (summary.point_count >= min_report) {
        report.clusters.push_back(std::move(summary));
      }
    }
    if (render && !points.empty()) {
      am::SpecimenSpec bounds;
      bounds.x_mm = min_x - 1.0;
      bounds.y_mm = min_y - 1.0;
      bounds.width_mm = (max_x - min_x) + 2.0;
      bounds.length_mm = (max_y - min_y) + 2.0;
      report.rendering = std::make_shared<const am::GrayImage>(
          RenderClusterImage(points, result.labels, bounds, px_per_mm));
    }

    spe::Tuple out;
    out.payload.Set("cluster_count",
                    static_cast<std::int64_t>(report.clusters.size()));
    out.payload.Set("window_events",
                    static_cast<std::int64_t>(report.window_events));
    out.payload.Set("noise_events",
                    static_cast<std::int64_t>(report.noise_events));
    out.payload.Set("report", Value(OpaqueRef(std::make_shared<
                                              const ClusterReportValue>(
                                 std::move(report)))));
    return {out};
  };
}

spe::SinkOperator* BuildThermalAnalysis(
    Strata* strata, spe::StreamPtr pp, spe::StreamPtr ot, double px_per_mm,
    const UseCaseParams& params,
    std::function<void(const ClusterReport&)> deliver) {
  const std::string& id = params.machine_id;
  // L3: fuse on (τ, job, layer).
  auto fused = strata->Fuse("fuse." + id, ot, pp);
  // L4: per-specimen isolation.
  auto specimens = strata->Partition("spec." + id, fused, IsolateSpecimen());
  // L5: per-cell isolation.
  auto cells = strata->Partition("cell." + id, specimens,
                                 IsolateCell(params.cell_px),
                                 params.partition_parallelism);
  // L6: thermal classification against KV-store thresholds.
  auto events = strata->DetectEvent("label." + id, cells,
                                    LabelCell(strata, id),
                                    params.detect_parallelism);
  // L7: DBSCAN across the last L layers.
  auto reports = strata->CorrelateEvents(
      "cluster." + id, events, params.correlate_layers,
      DbscanCorrelator(params, px_per_mm));

  return strata->Deliver("expert." + id, reports,
                         [deliver = std::move(deliver)](const spe::Tuple& t) {
                           if (!deliver) return;
                           const auto value =
                               t.payload.Get("report")
                                   .AsOpaque<ClusterReportValue>();
                           deliver(value->report());
                         });
}

spe::SinkOperator* BuildThermalPipeline(
    Strata* strata, std::shared_ptr<am::MachineSimulator> machine,
    const CollectorPacing& pacing, const UseCaseParams& params,
    std::function<void(const ClusterReport&)> deliver) {
  const std::string& id = params.machine_id;
  const double px_per_mm = machine->job().plate.PxPerMm();

  // Alg. 1 L1-L2: the two collectors.
  auto pp = strata->AddSource("pp." + id,
                              PrintingParameterCollector(machine, pacing));
  auto ot = strata->AddSource("ot." + id, OtImageCollector(machine, pacing));
  return BuildThermalAnalysis(strata, std::move(pp), std::move(ot), px_per_mm,
                              params, std::move(deliver));
}

std::vector<XctCylinderSummary> SummarizeDefectsPerCylinder(
    const std::vector<ClusterReport>& reports, const am::BuildJobSpec& job) {
  std::map<std::pair<std::int64_t, int>, XctCylinderSummary> by_cylinder;
  for (const ClusterReport& report : reports) {
    if (report.specimen < 0 ||
        static_cast<std::size_t>(report.specimen) >= job.specimens.size()) {
      continue;
    }
    const am::SpecimenSpec& specimen =
        job.specimens[static_cast<std::size_t>(report.specimen)];
    for (const cluster::ClusterSummary& summary : report.clusters) {
      const int cylinder =
          specimen.CylinderIndexAt(summary.centroid_x, summary.centroid_y);
      if (cylinder < 0) continue;
      XctCylinderSummary& entry =
          by_cylinder[{report.specimen, cylinder}];
      entry.specimen = report.specimen;
      entry.cylinder = cylinder;
      entry.cluster_observations += 1;
      entry.total_weight += summary.total_weight;
    }
  }
  std::vector<XctCylinderSummary> result;
  result.reserve(by_cylinder.size());
  for (auto& [key, entry] : by_cylinder) result.push_back(entry);
  return result;
}

Status ComputeAndStoreThresholds(Strata* strata, const std::string& machine_id,
                                 const am::BuildJobSpec& job,
                                 int history_layers, int cell_px) {
  // Historical jobs for threshold calibration are defect-free baselines of
  // the same geometry/material (the nominal melt signature).
  am::OtImageGenerator generator(job, /*seeder=*/nullptr);
  const am::ThermalThresholds thresholds = am::ComputeThresholdsFromHistory(
      generator, history_layers, cell_px);
  return strata->Store(am::ThresholdKey(machine_id), thresholds.Serialize());
}

}  // namespace strata::core
