// Public types of the STRATA API (paper Table 1).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "spe/functions.hpp"
#include "spe/tuple.hpp"

namespace strata::core {

/// partition(s_in, s_out, F): transforms each input tuple into an arbitrary
/// number of output tuples whose metadata is copied from the input and
/// enriched with specimen and portion (which F is expected to set).
using PartitionFn = std::function<std::vector<spe::Tuple>(const spe::Tuple&)>;

/// detectEvent(s_in, s_out, F): transforms each input tuple into an
/// arbitrary number of event tuples.
using DetectFn = std::function<std::vector<spe::Tuple>(const spe::Tuple&)>;

/// The event window handed to a correlateEvents user function when a layer
/// completes for a specimen: all events of that (job, specimen) for layers
/// in [layer - L, layer].
struct EventWindow {
  std::int64_t job = 0;
  std::int64_t specimen = 0;
  std::int64_t layer = 0;  // the just-completed layer
  std::vector<spe::Tuple> events;
};

/// correlateEvents(s_in, s_out, L, F): invoked once per completed
/// (layer, specimen); the returned tuples are emitted with job/specimen/
/// layer metadata from the window and stimulus = the newest contributor.
using CorrelateFn = std::function<std::vector<spe::Tuple>(const EventWindow&)>;

// --- Layer-completion markers -----------------------------------------------
//
// Pipelines signal "all data of (job, layer, specimen) has been emitted" with
// marker tuples so that correlateEvents can close a layer as soon as it is
// fully analyzed (instead of waiting for the next layer's first event).
// partition/detectEvent user functions must forward markers unchanged;
// STRATA's built-in use-case functions do.

inline constexpr const char* kLayerMarkerKey = "__layer_complete";
inline constexpr const char* kEosKey = "__eos";

[[nodiscard]] inline bool IsLayerMarker(const spe::Tuple& t) {
  return t.payload.Has(kLayerMarkerKey);
}

[[nodiscard]] inline spe::Tuple MakeLayerMarker(const spe::Tuple& from) {
  spe::Tuple marker;
  marker.event_time = from.event_time;
  marker.job = from.job;
  marker.layer = from.layer;
  marker.specimen = from.specimen;
  marker.stimulus = from.stimulus;
  marker.payload.Set(kLayerMarkerKey, true);
  return marker;
}

/// Forward markers through a user transform: returns true (and appends the
/// marker to `out`) when the tuple was a marker and needs no processing.
[[nodiscard]] inline bool ForwardMarker(const spe::Tuple& t,
                                        std::vector<spe::Tuple>* out) {
  if (!IsLayerMarker(t)) return false;
  out->push_back(t);
  return true;
}

}  // namespace strata::core
