// Tuple <-> pub/sub record codec used by STRATA's connectors (Raw Data
// Connector, Event Connector). Scalar payload values use the common Value
// codec; OT images (opaque GrayImage references) are special-cased so raw
// sensor frames can cross the broker, and are re-wrapped as shared images on
// the consuming side.
#pragma once

#include <cstdint>

#include "am/image.hpp"
#include "common/status.hpp"
#include "spe/tuple.hpp"

namespace strata::core {

/// Serialize a tuple for transport. Supported payload values: all scalar
/// kinds plus opaque GrayImage. Other opaque types -> InvalidArgument.
[[nodiscard]] Status EncodeTuple(const spe::Tuple& tuple, std::string* out);

[[nodiscard]] Result<spe::Tuple> DecodeTuple(std::string_view data);

/// Effectively-once transport tag: the publisher's checkpoint epoch and a
/// per-publisher monotonic sequence number. A checkpoint-recovered publisher
/// replays tuples with their original tags, so a subscriber can drop
/// duplicates by per-partition sequence floor (per-key ordering keeps the
/// sequence monotonic within each partition).
struct TransportTag {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

/// EncodeTuple preceded by a tag frame.
[[nodiscard]] Status EncodeTaggedTuple(const TransportTag& tag,
                                       const spe::Tuple& tuple,
                                       std::string* out);

/// Decode a connector record that may or may not carry a tag (EOS sentinels
/// and non-checkpointing deployments publish plain EncodeTuple frames).
/// `*tag` is set to {0, 0} when the record is untagged. The tuple body's
/// CRC disambiguates a genuine tag frame from a plain frame whose first
/// byte happens to collide with the tag marker.
[[nodiscard]] Result<spe::Tuple> DecodeMaybeTagged(std::string_view data,
                                                   TransportTag* tag);

/// Partitioning key that keeps per-entity ordering through a topic:
/// job|layer for raw data, job|specimen for events.
[[nodiscard]] std::string RawDataKey(const spe::Tuple& tuple);
[[nodiscard]] std::string EventKey(const spe::Tuple& tuple);

}  // namespace strata::core
