// Tuple <-> pub/sub record codec used by STRATA's connectors (Raw Data
// Connector, Event Connector). Scalar payload values use the common Value
// codec; OT images (opaque GrayImage references) are special-cased so raw
// sensor frames can cross the broker, and are re-wrapped as shared images on
// the consuming side.
#pragma once

#include "am/image.hpp"
#include "common/status.hpp"
#include "spe/tuple.hpp"

namespace strata::core {

/// Serialize a tuple for transport. Supported payload values: all scalar
/// kinds plus opaque GrayImage. Other opaque types -> InvalidArgument.
[[nodiscard]] Status EncodeTuple(const spe::Tuple& tuple, std::string* out);

[[nodiscard]] Result<spe::Tuple> DecodeTuple(std::string_view data);

/// Partitioning key that keeps per-entity ordering through a topic:
/// job|layer for raw data, job|specimen for events.
[[nodiscard]] std::string RawDataKey(const spe::Tuple& tuple);
[[nodiscard]] std::string EventKey(const spe::Tuple& tuple);

}  // namespace strata::core
