#include "strata/checkpoint_store.hpp"

#include <charconv>
#include <vector>

#include "common/logging.hpp"

namespace strata::core {

namespace {

/// How many committed epochs survive garbage collection.
constexpr std::size_t kKeepEpochs = 2;

}  // namespace

KvCheckpointStore::KvCheckpointStore(kv::DB* db, std::string prefix)
    : db_(db), prefix_(std::move(prefix)) {
  if (db_ == nullptr) {
    throw std::invalid_argument("KvCheckpointStore: null db");
  }
}

std::string KvCheckpointStore::EpochKey(std::uint64_t epoch) const {
  // Zero-padded so iteration order over the key prefix is epoch order.
  std::string digits = std::to_string(epoch);
  return prefix_ + "epoch/" + std::string(20 - digits.size(), '0') + digits;
}

Status KvCheckpointStore::Put(std::uint64_t epoch, std::string blob) {
  return db_->Put(EpochKey(epoch), blob);
}

Status KvCheckpointStore::Commit(std::uint64_t epoch) {
  STRATA_RETURN_IF_ERROR(db_->Put(prefix_ + "latest", std::to_string(epoch)));

  // GC: keep the newest kKeepEpochs manifests at or below the committed
  // epoch. A GC failure is not a checkpoint failure — the commit already
  // landed; stale manifests only cost space.
  std::vector<std::string> stale;
  const std::string epoch_prefix = prefix_ + "epoch/";
  auto it = db_->NewIterator();
  std::vector<std::string> kept;
  for (it->Seek(epoch_prefix); it->Valid(); it->Next()) {
    const std::string_view key = it->key();
    if (key.substr(0, epoch_prefix.size()) != epoch_prefix) break;
    std::uint64_t found = 0;
    const std::string_view digits = key.substr(epoch_prefix.size());
    std::from_chars(digits.data(), digits.data() + digits.size(), found);
    if (found <= epoch) kept.emplace_back(key);
  }
  while (kept.size() > kKeepEpochs) {
    stale.push_back(std::move(kept.front()));
    kept.erase(kept.begin());
  }
  for (const std::string& key : stale) {
    if (Status s = db_->Delete(key); !s.ok()) {
      LOG_WARN << "checkpoint gc failed for " << key << ": " << s.ToString();
    }
  }
  return Status::Ok();
}

Result<std::uint64_t> KvCheckpointStore::LatestEpoch() {
  auto latest = db_->Get(prefix_ + "latest");
  if (!latest.ok()) return latest.status();  // NotFound on a fresh store
  std::uint64_t epoch = 0;
  const auto [ptr, ec] = std::from_chars(
      latest->data(), latest->data() + latest->size(), epoch);
  if (ec != std::errc() || ptr != latest->data() + latest->size() ||
      epoch == 0) {
    return Status::Corruption("checkpoint latest pointer unparsable: " +
                              *latest);
  }
  return epoch;
}

Result<std::string> KvCheckpointStore::Get(std::uint64_t epoch) {
  return db_->Get(EpochKey(epoch));
}

}  // namespace strata::core
