// Durable checkpoint store on top of the kv substrate.
//
// Manifests land under "<prefix>epoch/<epoch>" and the latest-complete
// pointer under "<prefix>latest". Both writes ride the kv WAL, so the
// write-then-commit discipline of spe::CheckpointStore holds across crashes:
// a manifest whose pointer write never landed is invisible to recovery, and
// the previous committed epoch remains the recovery point. Commit also
// garbage-collects manifests older than the last two committed epochs (the
// newly committed one plus one predecessor as a fallback against a corrupt
// read).
#pragma once

#include <string>

#include "kvstore/db.hpp"
#include "spe/checkpoint.hpp"

namespace strata::core {

class KvCheckpointStore final : public spe::CheckpointStore {
 public:
  /// `db` must outlive the store. `prefix` namespaces the checkpoint keys so
  /// the store can share a DB with application data.
  explicit KvCheckpointStore(kv::DB* db, std::string prefix = "ckpt/");

  [[nodiscard]] Status Put(std::uint64_t epoch, std::string blob) override;
  [[nodiscard]] Status Commit(std::uint64_t epoch) override;
  [[nodiscard]] Result<std::uint64_t> LatestEpoch() override;
  [[nodiscard]] Result<std::string> Get(std::uint64_t epoch) override;

 private:
  [[nodiscard]] std::string EpochKey(std::uint64_t epoch) const;

  kv::DB* db_;
  std::string prefix_;
};

}  // namespace strata::core
