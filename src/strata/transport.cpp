#include "strata/transport.hpp"

#include "common/codec.hpp"
#include "common/crc32.hpp"

namespace strata::core {

namespace {
// Payload entry markers.
constexpr char kScalarMarker = 'S';
constexpr char kImageMarker = 'I';
// Optional trailing trace-context field (present only for sampled tuples, so
// the unsampled common case pays zero bytes). Decoders accept either form;
// tuples encoded by older builds simply have no trace.
constexpr char kTraceMarker = 'T';
// Leading byte of a tagged record (epoch + seq frame before the tuple body).
constexpr char kTagMarker = 'E';
}  // namespace

Status EncodeTuple(const spe::Tuple& tuple, std::string* out) {
  // The body is followed by a masked CRC-32C trailer. Structural checks
  // alone cannot catch a bit flip inside a fixed-width field (a double's
  // mantissa, an image pixel), and tuples cross process and network
  // boundaries — any mutation must decode to a Status, never to silently
  // different data.
  const std::size_t start = out->size();
  codec::PutVarint64Signed(out, tuple.event_time);
  codec::PutVarint64Signed(out, tuple.job);
  codec::PutVarint64Signed(out, tuple.layer);
  codec::PutVarint64Signed(out, tuple.specimen);
  codec::PutVarint64Signed(out, tuple.portion);
  codec::PutVarint64Signed(out, tuple.stimulus);

  codec::PutVarint64(out, tuple.payload.size());
  for (const auto& [key, value] : tuple.payload) {
    codec::PutLengthPrefixed(out, key);
    if (value.kind() == ValueKind::kOpaque) {
      const auto image =
          std::dynamic_pointer_cast<const am::ImageValue>(value.AsOpaqueRef());
      if (!image) {
        return Status::InvalidArgument(
            "EncodeTuple: unsupported opaque payload type under key '" + key +
            "'");
      }
      out->push_back(kImageMarker);
      codec::PutLengthPrefixed(out, image->image().Serialize());
    } else {
      out->push_back(kScalarMarker);
      STRATA_RETURN_IF_ERROR(EncodeValue(value, out));
    }
  }
  if (tuple.trace.sampled()) {
    out->push_back(kTraceMarker);
    codec::PutFixed64(out, tuple.trace.trace_id);
    codec::PutFixed64(out, tuple.trace.parent_span);
  }
  const std::uint32_t crc =
      Crc32c(std::string_view(*out).substr(start));
  codec::PutFixed32(out, MaskCrc(crc));
  return Status::Ok();
}

Result<spe::Tuple> DecodeTuple(std::string_view data) {
  if (data.size() < 4) {
    return Status::Corruption("DecodeTuple: missing checksum trailer");
  }
  std::string_view trailer = data.substr(data.size() - 4);
  std::uint32_t masked = 0;
  (void)codec::GetFixed32(&trailer, &masked);
  data.remove_suffix(4);
  if (UnmaskCrc(masked) != Crc32c(data)) {
    return Status::Corruption("DecodeTuple: checksum mismatch");
  }

  spe::Tuple tuple;
  std::uint64_t payload_count = 0;
  if (!codec::GetVarint64Signed(&data, &tuple.event_time) ||
      !codec::GetVarint64Signed(&data, &tuple.job) ||
      !codec::GetVarint64Signed(&data, &tuple.layer) ||
      !codec::GetVarint64Signed(&data, &tuple.specimen) ||
      !codec::GetVarint64Signed(&data, &tuple.portion) ||
      !codec::GetVarint64Signed(&data, &tuple.stimulus) ||
      !codec::GetVarint64(&data, &payload_count)) {
    return Status::Corruption("DecodeTuple: truncated metadata");
  }

  for (std::uint64_t i = 0; i < payload_count; ++i) {
    std::string_view key;
    if (!codec::GetLengthPrefixed(&data, &key) || data.empty()) {
      return Status::Corruption("DecodeTuple: truncated payload entry");
    }
    const char marker = data.front();
    data.remove_prefix(1);
    if (marker == kImageMarker) {
      std::string_view image_bytes;
      if (!codec::GetLengthPrefixed(&data, &image_bytes)) {
        return Status::Corruption("DecodeTuple: truncated image");
      }
      auto image = am::GrayImage::Deserialize(image_bytes);
      if (!image.ok()) return image.status();
      tuple.payload.Set(key, am::MakeImageValue(std::move(image).value()));
    } else if (marker == kScalarMarker) {
      Value value;
      STRATA_RETURN_IF_ERROR(DecodeValue(&data, &value));
      tuple.payload.Set(key, std::move(value));
    } else {
      return Status::Corruption("DecodeTuple: unknown payload marker");
    }
  }
  if (!data.empty() && data.front() == kTraceMarker) {
    data.remove_prefix(1);
    if (!codec::GetFixed64(&data, &tuple.trace.trace_id) ||
        !codec::GetFixed64(&data, &tuple.trace.parent_span)) {
      return Status::Corruption("DecodeTuple: truncated trace context");
    }
  }
  if (!data.empty()) return Status::Corruption("DecodeTuple: trailing bytes");
  return tuple;
}

Status EncodeTaggedTuple(const TransportTag& tag, const spe::Tuple& tuple,
                         std::string* out) {
  out->push_back(kTagMarker);
  codec::PutVarint64(out, tag.epoch);
  codec::PutVarint64(out, tag.seq);
  return EncodeTuple(tuple, out);
}

Result<spe::Tuple> DecodeMaybeTagged(std::string_view data,
                                     TransportTag* tag) {
  *tag = TransportTag{};
  if (!data.empty() && data.front() == kTagMarker) {
    std::string_view rest = data.substr(1);
    TransportTag parsed;
    if (codec::GetVarint64(&rest, &parsed.epoch) &&
        codec::GetVarint64(&rest, &parsed.seq)) {
      auto tuple = DecodeTuple(rest);
      if (tuple.ok()) {
        *tag = parsed;
        return tuple;
      }
      // A plain frame can legitimately start with the marker byte (it is a
      // varint-encoded event_time prefix): fall through and let the body's
      // CRC decide.
    }
  }
  return DecodeTuple(data);
}

std::string RawDataKey(const spe::Tuple& tuple) {
  return std::to_string(tuple.job) + "|" + std::to_string(tuple.layer);
}

std::string EventKey(const spe::Tuple& tuple) {
  return std::to_string(tuple.job) + "|" + std::to_string(tuple.specimen);
}

}  // namespace strata::core
