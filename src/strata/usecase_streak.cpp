#include "strata/usecase_streak.hpp"

#include <algorithm>

namespace strata::core {

DetectFn DetectStreakColumns(double column_drop) {
  return [column_drop](const spe::Tuple& t) -> std::vector<spe::Tuple> {
    std::vector<spe::Tuple> out;
    if (ForwardMarker(t, &out)) return out;

    const auto image = t.payload.Get(kOtImageKey).AsOpaque<am::ImageValue>();
    const double px_per_mm = t.payload.Get("px_per_mm").AsDouble();
    const int x0 =
        static_cast<int>(t.payload.Get("x_mm").AsDouble() * px_per_mm);
    const int y0 =
        static_cast<int>(t.payload.Get("y_mm").AsDouble() * px_per_mm);
    const int x1 =
        x0 + static_cast<int>(t.payload.Get("w_mm").AsDouble() * px_per_mm);
    const int y1 =
        y0 + static_cast<int>(t.payload.Get("l_mm").AsDouble() * px_per_mm);
    const am::GrayImage& frame = image->image();
    if (x1 <= x0 || y1 <= y0) return out;

    // Column means over the specimen footprint.
    std::vector<double> column_means;
    column_means.reserve(static_cast<std::size_t>(x1 - x0));
    for (int x = x0; x < x1; ++x) {
      column_means.push_back(frame.RegionMean(x, y0, 1, y1 - y0));
    }
    std::vector<double> sorted = column_means;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double median = sorted[sorted.size() / 2];

    for (int x = x0; x < x1; ++x) {
      const double mean = column_means[static_cast<std::size_t>(x - x0)];
      if (median - mean < column_drop) continue;
      spe::Tuple event;
      event.specimen = t.specimen;
      event.portion = x - x0;
      event.payload.Set("cx_mm", (x + 0.5) / px_per_mm);
      event.payload.Set("col_mean", mean);
      event.payload.Set("deviation", median - mean);
      out.push_back(std::move(event));
    }
    return out;
  };
}

CorrelateFn StreakCorrelator(const StreakUseCaseParams& params) {
  cluster::DbscanParams dbscan;
  dbscan.metric.eps_xy = params.eps_x_mm;
  dbscan.metric.layer_reach = params.dbscan_layer_reach;
  dbscan.min_pts = params.dbscan_min_pts;
  const std::int64_t min_span = params.min_span_layers;

  return [dbscan, min_span](const EventWindow& window)
             -> std::vector<spe::Tuple> {
    std::vector<cluster::Point> points;
    points.reserve(window.events.size());
    for (const spe::Tuple& event : window.events) {
      cluster::Point p;
      p.x = event.payload.Get("cx_mm").AsDouble();
      p.y = 0.0;  // streaks are located by x only
      p.layer = event.layer;
      p.weight = event.payload.Get("deviation").AsDouble();
      points.push_back(p);
    }
    const cluster::DbscanResult result = cluster::Dbscan(points, dbscan);

    ClusterReport report;
    report.job = window.job;
    report.layer = window.layer;
    report.specimen = window.specimen;
    report.window_events = points.size();
    report.noise_events = result.noise_points;
    for (cluster::ClusterSummary& summary :
         cluster::SummarizeClusters(points, result.labels)) {
      // A streak must persist across layers; single-layer bands are hatch
      // noise or isolated thermal issues (the thermal pipeline's job).
      if (summary.layer_span() >= min_span) {
        report.clusters.push_back(std::move(summary));
      }
    }
    if (report.clusters.empty()) return {};  // nothing confirmed this layer

    spe::Tuple out;
    out.payload.Set("streaks",
                    static_cast<std::int64_t>(report.clusters.size()));
    out.payload.Set("report", Value(OpaqueRef(std::make_shared<
                                              const ClusterReportValue>(
                                 std::move(report)))));
    return {out};
  };
}

spe::SinkOperator* BuildStreakPipeline(
    Strata* strata, std::shared_ptr<am::MachineSimulator> machine,
    const CollectorPacing& pacing, const StreakUseCaseParams& params,
    std::function<void(const ClusterReport&)> deliver) {
  const std::string id = "streak." + params.machine_id;

  auto pp = strata->AddSource("pp." + id,
                              PrintingParameterCollector(machine, pacing));
  auto ot = strata->AddSource("ot." + id, OtImageCollector(machine, pacing));
  auto fused = strata->Fuse("fuse." + id, ot, pp);
  auto specimens = strata->Partition("spec." + id, fused, IsolateSpecimen());
  auto events = strata->DetectEvent("col." + id, specimens,
                                    DetectStreakColumns(params.column_drop));
  auto reports = strata->CorrelateEvents("cluster." + id, events,
                                         params.correlate_layers,
                                         StreakCorrelator(params));
  return strata->Deliver("expert." + id, reports,
                         [deliver = std::move(deliver)](const spe::Tuple& t) {
                           if (!deliver) return;
                           deliver(t.payload.Get("report")
                                       .AsOpaque<ClusterReportValue>()
                                       ->report());
                         });
}

}  // namespace strata::core
