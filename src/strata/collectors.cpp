#include "strata/collectors.hpp"

namespace strata::core {

namespace {

/// Shared pacing state: releases layer k at start + k * gap (live mode) or
/// at a fixed offered rate (replay mode).
class Pacer {
 public:
  Pacer(CollectorPacing pacing, Timestamp layer_period)
      : pacing_(pacing), layer_period_(layer_period) {}

  void WaitForLayer(int layer) {
    const Clock* clock = pacing_.clock;
    Timestamp gap = 0;
    if (pacing_.mode == CollectorPacing::Mode::kLive) {
      gap = static_cast<Timestamp>(static_cast<double>(layer_period_) *
                                   pacing_.time_scale);
    } else if (pacing_.replay_rate > 0) {
      gap = static_cast<Timestamp>(1e6 / pacing_.replay_rate);
    } else {
      return;  // unthrottled replay
    }
    if (start_ == 0) start_ = clock->Now();
    clock->SleepUntil(start_ + static_cast<Timestamp>(layer) * gap);
  }

 private:
  CollectorPacing pacing_;
  Timestamp layer_period_;
  Timestamp start_ = 0;
};

}  // namespace

spe::SourceFn OtImageCollector(std::shared_ptr<am::MachineSimulator> machine,
                               CollectorPacing pacing) {
  auto pacer =
      std::make_shared<Pacer>(pacing, machine->LayerPeriodMicros());
  return [machine, pacer]() -> std::optional<spe::Tuple> {
    auto layer = machine->NextLayer();
    if (!layer.has_value()) return std::nullopt;
    pacer->WaitForLayer(layer->layer);

    spe::Tuple tuple;
    tuple.event_time = layer->event_time;
    tuple.job = layer->job;
    tuple.layer = layer->layer;
    tuple.payload.Set(kOtImageKey,
                      am::MakeImageValue(std::move(layer->ot_image)));
    return tuple;
  };
}

spe::SourceFn PrintingParameterCollector(
    std::shared_ptr<am::MachineSimulator> machine, CollectorPacing pacing) {
  auto pacer =
      std::make_shared<Pacer>(pacing, machine->LayerPeriodMicros());
  auto next_layer = std::make_shared<int>(0);
  const int total = machine->total_layers();
  const Timestamp period = machine->LayerPeriodMicros();

  return [machine, pacer, next_layer, total,
          period]() -> std::optional<spe::Tuple> {
    if (*next_layer >= total) return std::nullopt;
    const int layer = (*next_layer)++;
    pacer->WaitForLayer(layer);

    spe::Tuple tuple;
    tuple.event_time = static_cast<Timestamp>(layer + 1) * period;
    tuple.job = machine->job().job_id;
    tuple.layer = layer;
    tuple.payload = machine->PrintingParams(layer);
    return tuple;
  };
}

}  // namespace strata::core
