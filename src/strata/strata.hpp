// The STRATA framework facade (paper §4, Figure 2, Table 1).
//
// STRATA layers an AM-specific API on three substrates: a stream processing
// engine (strata::spe) for analysis, a pub/sub broker (strata::ps) for the
// Raw Data / Event Connectors, and a key-value store (strata::kv) shared by
// all modules for data at rest.
//
// Module mapping:
//   Raw Data Collector  = SPE Source per addSource()
//   Raw Data Connector  = one broker topic per source (publisher sink +
//                         subscriber source around the broker)
//   Event Monitor       = fuse() (Join), partition() (Map), detectEvent()
//                         (Map) compositions of native operators
//   Event Connector     = broker topic carrying detected events
//   Event Aggregator    = correlateEvents() grouping events per
//                         (job, specimen) across the last L layers
//
// API methods return SPE stream handles, so pipelines from different experts
// can share intermediate streams (via Split) and deploy multiple detection
// methods over the same source.
#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/fs.hpp"
#include "kvstore/db.hpp"
#include "net/admin.hpp"
#include "net/remote.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "pubsub/broker.hpp"
#include "pubsub/client.hpp"
#include "spe/query.hpp"
#include "strata/api.hpp"
#include "strata/checkpoint_store.hpp"
#include "strata/connector.hpp"

namespace strata::core {

struct StrataOptions {
  /// Root directory for the key-value store (and broker persistence when
  /// persistent_connectors is set). Empty = a scoped temp directory.
  std::filesystem::path data_dir;
  /// Persist connector topics to disk (replayable raw-data history).
  bool persistent_connectors = false;
  int connector_partitions = 1;
  /// When set, connectors speak to a net::BrokerServer at this address
  /// instead of the in-process broker — the same pipeline code runs
  /// embedded or networked (deployment topologies, DESIGN.md). The local
  /// broker still exists but carries no connector traffic.
  std::optional<net::RemoteOptions> remote_broker;
  /// "host:port" seeds of a replicated broker cluster. Folded into
  /// remote_broker's bootstrap list (creating a default remote_broker when
  /// unset), so connector producers/consumers discover the leader and fail
  /// over automatically. See DESIGN.md "Replication & failover".
  std::vector<std::string> remote_bootstrap;
  /// "host:port" for the embedded HTTP admin endpoint (/metrics, /healthz,
  /// /varz, /tracez). Empty = disabled; the STRATA_ADMIN_ADDR environment
  /// variable overrides (and enables) it. Port 0 binds an ephemeral port —
  /// the resolved address is available via admin_addr().
  std::string admin_addr;
  /// Pipeline tracing: start a sampled trace every N source batches per
  /// source thread; 0 = disabled. STRATA_TRACE_SAMPLE overrides. Spans land
  /// in the process-wide obs::Tracer and are served at /tracez.
  std::uint32_t trace_sample_every = 0;
  /// Data-plane shards of the in-process broker (ps::BrokerOptions::shards):
  /// appends to partitions on different shards take different locks and wake
  /// different long-poll waiter lists. Raise for many-partition pipelines
  /// serving many networked consumers; 0 keeps the broker default.
  std::size_t broker_shards = 0;
  /// Epoch-barrier checkpoint cadence for the deployed query, in
  /// milliseconds; 0 disables checkpointing. When enabled, Deploy() first
  /// recovers operator state and broker replay cursors from the latest
  /// completed checkpoint, and connector publishers tag records with
  /// (epoch, seq) so subscribers drop replayed duplicates — effectively-once
  /// across a crash (see DESIGN.md "Checkpoint & recovery"). Pair with
  /// persistent_connectors and a fixed data_dir so the replayed topics and
  /// the checkpoints survive the process.
  std::int64_t checkpoint_interval_ms = 0;
  /// Directory of a dedicated checkpoint kvstore. Empty = checkpoint
  /// manifests live in the main kv store under "ckpt/".
  std::filesystem::path checkpoint_path;
  kv::DbOptions kv;
  spe::QueryOptions query;
};

class Strata {
 public:
  explicit Strata(StrataOptions options = {});
  ~Strata();
  Strata(const Strata&) = delete;
  Strata& operator=(const Strata&) = delete;

  // --- Key-Value Store module: store(k,v) / get(k) --------------------------

  [[nodiscard]] Status Store(std::string_view key, std::string_view value);
  [[nodiscard]] Result<std::string> Get(std::string_view key);
  /// All at-rest entries whose key starts with `prefix`, in key order
  /// (e.g. "thresholds/" lists every machine's calibration).
  [[nodiscard]] Result<std::vector<std::pair<std::string, std::string>>>
  GetByPrefix(std::string_view prefix);

  // --- Table 1 API -----------------------------------------------------------

  /// addSource(src, s_out): deploys `collector` as an SPE Source whose
  /// tuples travel through the Raw Data Connector (a dedicated topic) before
  /// entering the Event Monitor. Returns the monitor-side stream.
  [[nodiscard]] spe::StreamPtr AddSource(const std::string& name,
                                         spe::SourceFn collector);

  /// Publisher half of addSource for process-split deployments: deploys
  /// `collector` and publishes its tuples to the Raw Data Connector topic
  /// without subscribing. A different process (typically with the same
  /// remote_broker config) picks the stream up via ImportSource(name).
  spe::SinkOperator* ExportSource(const std::string& name,
                                  spe::SourceFn collector);

  /// Subscriber half of addSource: joins the Raw Data Connector topic that
  /// an ExportSource(name) elsewhere publishes and returns the monitor-side
  /// stream. The topic is created if it does not exist yet, so start order
  /// between the exporting and importing processes does not matter.
  [[nodiscard]] spe::StreamPtr ImportSource(const std::string& name);

  /// fuse(s1, s2, s_out, [WS, WA], [GB]): joins tuples sharing job and layer
  /// (plus the payload sub-attributes named in `group_by`). Without a window
  /// only τ-equal tuples fuse; with one, tuples within WS of each other fuse
  /// (windowed join). Output payloads concatenate the inputs' payloads; the
  /// method assumes keys are unique across fused tuples (violations drop).
  /// shards > 1 makes the join keyed-data-parallel: both sides hash-route
  /// on the fuse key across `shards` join instances (per-key order
  /// preserved; see Query::AddJoin).
  [[nodiscard]] spe::StreamPtr Fuse(
      const std::string& name, spe::StreamPtr s1, spe::StreamPtr s2,
      std::optional<spe::WindowSpec> window = std::nullopt,
      std::vector<std::string> group_by = {}, int shards = 1);

  /// partition(s_in, s_out, F): splits tuples into independently-processable
  /// units (specimens, cells); F sets specimen/portion. Null F = identity
  /// with default specimen/portion, as Table 1 specifies. parallelism > 1
  /// shards by (job, specimen) after F-application... shard key: the
  /// *input* tuple's (job, layer, specimen) — see shard_by_specimen.
  [[nodiscard]] spe::StreamPtr Partition(const std::string& name,
                                         spe::StreamPtr in, PartitionFn fn,
                                         int parallelism = 1);

  /// detectEvent(s_in, s_out, F): classifies units and emits event tuples.
  /// F runs on possibly several threads when parallelism > 1 (sharded by
  /// job|specimen so markers stay ordered with their events).
  [[nodiscard]] spe::StreamPtr DetectEvent(const std::string& name,
                                           spe::StreamPtr in, DetectFn fn,
                                           int parallelism = 1);

  /// correlateEvents(s_in, s_out, L, F): routes events through the Event
  /// Connector, groups them per (job, specimen), and invokes F on each layer
  /// completion with the events of the last L layers (see EventWindow).
  [[nodiscard]] spe::StreamPtr CorrelateEvents(const std::string& name,
                                               spe::StreamPtr in,
                                               std::int64_t history_layers,
                                               CorrelateFn fn);

  /// Deliver a result stream to the expert. Returns the sink operator whose
  /// latency histogram implements the paper's latency metric.
  spe::SinkOperator* Deliver(const std::string& name, spe::StreamPtr in,
                             spe::SinkFn fn);

  /// Deliver with effectively-once semantics: each tuple is written to the
  /// kv store at `key_prefix + key_fn(tuple)` (transport-encoded) only when
  /// that key is absent, so checkpoint replay after a crash cannot
  /// double-deliver a report. `key_fn` must be deterministic in the tuple
  /// and unique per logical result. Skipped duplicates are counted under
  /// the strata.deliver_durable.duplicates metric.
  spe::SinkOperator* DeliverDurable(
      const std::string& name, spe::StreamPtr in, std::string key_prefix,
      std::function<std::string(const spe::Tuple&)> key_fn);

  /// Duplicate a stream so several pipelines (possibly from different
  /// experts) can consume it.
  [[nodiscard]] std::vector<spe::StreamPtr> Split(const std::string& name,
                                                  spe::StreamPtr in, int n);

  // --- lifecycle -------------------------------------------------------------

  /// Start all deployed pipelines.
  void Deploy();
  /// Block until all pipelines finish naturally (finite collectors).
  void WaitForCompletion();
  /// Stop sources, drain pipelines, join all operator threads.
  void Shutdown();

  [[nodiscard]] kv::DB& kv() noexcept { return *kv_; }
  [[nodiscard]] ps::Broker& broker() noexcept { return *broker_; }
  /// Transport the connectors actually use (embedded or remote).
  [[nodiscard]] ps::BrokerClient& broker_client() noexcept { return *client_; }
  [[nodiscard]] spe::Query& query() noexcept { return *query_; }

  // --- health ----------------------------------------------------------------

  /// Point-in-time durability health across the substrates. Both flags are
  /// sticky once tripped (a kvstore background error or a broker partition
  /// log that degraded / fail-stopped after disk failures) and only clear by
  /// recreating the instance.
  struct HealthReport {
    bool kv_ok = true;
    bool broker_storage_ok = true;
    /// Empty when healthy; otherwise a human-readable reason per failure.
    std::string detail;
    [[nodiscard]] bool ok() const noexcept {
      return kv_ok && broker_storage_ok;
    }
  };
  [[nodiscard]] HealthReport Health() const;

  /// Contribute an extra JSON fragment to /healthz under the "replication"
  /// key (e.g. a repl::ReplicationManager's HealthJson). The callback runs
  /// on the admin thread; it must be thread-safe and return a complete JSON
  /// value. nullptr removes the augmenter.
  void SetHealthzAugmenter(std::function<std::string()> augmenter);

  // --- observability ---------------------------------------------------------

  /// Process registry wired to all three substrates plus the SPE query.
  /// Components register pull callbacks, so snapshots always reflect live
  /// state — no sampling lag for gauges.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return registry_; }

  /// One consistent snapshot across SPE, broker, and kvstore.
  [[nodiscard]] obs::MetricsSnapshot MetricsSnapshot() const {
    return registry_.Snapshot();
  }

  /// Human-readable dump of MetricsSnapshot() (obs::MetricsSnapshot::ToText).
  [[nodiscard]] std::string DumpMetrics() const {
    return MetricsSnapshot().ToText();
  }

  /// Start a background thread delivering a snapshot to `consumer` every
  /// `period` (plus one final snapshot on stop). Replaces any running
  /// sampler; Shutdown() stops it before tearing down the pipelines.
  void StartSampler(std::chrono::milliseconds period,
                    obs::PeriodicSampler::Consumer consumer);
  void StopSampler();

  /// "host:port" the admin endpoint actually bound (resolving an ephemeral
  /// port), or empty when the endpoint is disabled or failed to start.
  [[nodiscard]] std::string admin_addr() const;

 private:
  void StartAdminServer(const std::string& addr);
  [[nodiscard]] spe::StreamPtr ThroughConnector(const std::string& topic,
                                                spe::StreamPtr in,
                                                PartitionKeyFn key_fn);
  /// Create `topic` on the connector transport (idempotent) and attach a
  /// publishing sink for `in`, returning that sink.
  spe::SinkOperator* PublishTo(const std::string& topic, spe::StreamPtr in,
                               PartitionKeyFn key_fn);
  /// Subscribe to `topic` (created if missing) and return its source stream.
  [[nodiscard]] spe::StreamPtr SubscribeTo(const std::string& topic);

  StrataOptions options_;
  /// Declared before the substrates so it is destroyed last — they
  /// unregister their metric callbacks in their destructors.
  obs::MetricsRegistry registry_;
  std::unique_ptr<strata::fs::ScopedTempDir> temp_dir_;  // when data_dir empty
  std::unique_ptr<kv::DB> kv_;
  std::unique_ptr<ps::Broker> broker_;
  /// Dedicated checkpoint DB when options_.checkpoint_path is set; the
  /// store otherwise shares kv_.
  std::unique_ptr<kv::DB> checkpoint_db_;
  std::unique_ptr<KvCheckpointStore> checkpoint_store_;
  /// Connector transport: EmbeddedBrokerClient over broker_, or a
  /// net::RemoteBroker when options_.remote_broker is set.
  std::unique_ptr<ps::BrokerClient> client_;
  std::unique_ptr<spe::Query> query_;
  std::vector<std::unique_ptr<ConnectorPublisher>> publishers_;
  std::vector<std::shared_ptr<ConnectorSubscriber>> subscribers_;
  std::unique_ptr<obs::PeriodicSampler> sampler_;
  std::unique_ptr<net::AdminServer> admin_;
  /// Extra /healthz JSON (replication state); guarded by augmenter_mu_
  /// because the admin thread reads it while callers may swap it.
  mutable std::mutex augmenter_mu_;
  std::function<std::string()> healthz_augmenter_;
  bool deployed_ = false;
  bool shut_down_ = false;
};

}  // namespace strata::core
