#include "strata/connector.hpp"

#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "strata/api.hpp"

namespace strata::core {

namespace {
constexpr auto kPollTimeout = std::chrono::microseconds(2000);
}

spe::SinkFn ConnectorPublisher::AsSinkFn() {
  return [this](const spe::Tuple& tuple) {
    std::string encoded;
    if (Status s = EncodeTuple(tuple, &encoded); !s.ok()) {
      LOG_ERROR << "connector publish encode failed on topic " << topic_
                << ": " << s.ToString();
      return;
    }
    // Produce-hop span for sampled tuples; while live it also sets the
    // thread's trace slot, so a remote producer tags the wire frame with the
    // same trace. Parent under the enclosing sink span when there is one.
    obs::SpanScope span;
    if (tuple.trace.sampled() && obs::TracingEnabled()) {
      TraceContext parent = tuple.trace;
      if (const TraceContext& current = ThreadTraceSlot();
          current.trace_id == parent.trace_id) {
        parent.parent_span = current.parent_span;
      }
      span = obs::SpanScope(topic_.c_str(), "pubsub.produce", parent, 1);
    }
    auto result = producer_->Send(topic_, key_fn_ ? key_fn_(tuple) : "",
                                  std::move(encoded), tuple.event_time);
    if (!result.ok() && !result.status().IsClosed()) {
      LOG_ERROR << "connector publish failed on topic " << topic_ << ": "
                << result.status().ToString();
    }
  };
}

std::function<void()> ConnectorPublisher::AsFinishHook() {
  return [this] {
    spe::Tuple eos;
    eos.payload.Set(kEosKey, true);
    std::string encoded;
    if (Status s = EncodeTuple(eos, &encoded); !s.ok()) return;
    (void)producer_->Send(topic_, "", std::move(encoded), 0);
  };
}

Result<std::shared_ptr<ConnectorSubscriber>> ConnectorSubscriber::Create(
    ps::BrokerClient* client, const std::string& topic,
    const std::string& group) {
  ps::ConsumerOptions options;
  options.group = group;
  options.reset = ps::ConsumerOptions::AutoOffsetReset::kEarliest;
  auto consumer = client->NewConsumer(topic, std::move(options));
  if (!consumer.ok()) return consumer.status();
  return std::shared_ptr<ConnectorSubscriber>(
      new ConnectorSubscriber(std::move(consumer).value(), topic));
}

Result<std::shared_ptr<ConnectorSubscriber>> ConnectorSubscriber::Create(
    ps::Broker* broker, const std::string& topic, const std::string& group) {
  ps::EmbeddedBrokerClient client(broker);
  return Create(&client, topic, group);
}

spe::SourceFn ConnectorSubscriber::AsSourceFn() {
  // The returned SourceFn shares `this` via the shared_ptr the caller holds;
  // Strata keeps subscribers alive for the query's lifetime.
  return [this]() { return Next(); };
}

spe::BatchSourceFn ConnectorSubscriber::AsBatchSourceFn() {
  return [this]() { return NextBatch(); };
}

bool ConnectorSubscriber::FillBuffer() {
  while (buffered_.empty()) {
    if (stopped_.load(std::memory_order_acquire)) return false;

    const std::int64_t poll_t0 =
        obs::TracingEnabled() ? obs::TraceNowUs() : 0;
    auto batch = consumer_->Poll(kPollTimeout);
    if (!batch.ok()) {
      if (batch.status().IsTimeout()) {
        // Nothing arrived inside the poll window. If EOS was seen, an empty
        // window means all partitions are drained (the EOS record is
        // globally last): end of stream.
        if (eos_seen_) return false;
        continue;
      }
      if (!batch.status().IsClosed()) {
        LOG_ERROR << "connector poll failed: " << batch.status().ToString();
      }
      return false;
    }
    if (batch->empty()) {
      if (eos_seen_) return false;
      continue;
    }
    TraceContext sampled;  // first sampled tuple this poll delivered
    for (const ps::ConsumedRecord& record : *batch) {
      auto tuple = DecodeTuple(record.value);
      if (!tuple.ok()) {
        LOG_ERROR << "connector decode failed: " << tuple.status().ToString();
        continue;
      }
      if (tuple->payload.Has(kEosKey)) {
        eos_seen_ = true;
        continue;  // sentinel is not delivered downstream
      }
      if (!sampled.sampled() && tuple->trace.sampled()) {
        sampled = tuple->trace;
      }
      buffered_.push_back(std::move(tuple).value());
    }
    if (poll_t0 != 0 && sampled.sampled()) {
      // Fetch-hop span: dur covers the poll. Broker + wire transit time is
      // derived at collection from the gap to the producer-side parent span
      // (zero when the producer ran in another process).
      obs::Tracer& tracer = obs::Tracer::Instance();
      obs::Span span;
      span.trace_id = sampled.trace_id;
      span.span_id = tracer.NewSpanId();
      span.parent_span = sampled.parent_span;
      span.start_us = poll_t0;
      span.dur_us = obs::TraceNowUs() - poll_t0;
      span.batch = batch->size();
      span.SetName(topic_.c_str());
      span.SetCategory("pubsub.fetch");
      tracer.Record(span);
    }
  }
  return true;
}

std::optional<spe::Tuple> ConnectorSubscriber::Next() {
  if (!FillBuffer()) return std::nullopt;
  spe::Tuple tuple = std::move(buffered_.front());
  buffered_.pop_front();
  return tuple;
}

std::optional<spe::TupleBatch> ConnectorSubscriber::NextBatch() {
  if (!FillBuffer()) return std::nullopt;
  spe::TupleBatch out(std::make_move_iterator(buffered_.begin()),
                      std::make_move_iterator(buffered_.end()));
  buffered_.clear();
  return out;
}

}  // namespace strata::core
