#include "strata/connector.hpp"

#include <algorithm>

#include "common/codec.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "strata/api.hpp"

namespace strata::core {

namespace {
constexpr auto kPollTimeout = std::chrono::microseconds(2000);
}

spe::SinkFn ConnectorPublisher::AsSinkFn() {
  return [this](const spe::Tuple& tuple) {
    std::string encoded;
    Status encoded_status =
        tagging_
            ? EncodeTaggedTuple(TransportTag{epoch_, seq_ + 1}, tuple,
                                &encoded)
            : EncodeTuple(tuple, &encoded);
    if (Status s = encoded_status; !s.ok()) {
      LOG_ERROR << "connector publish encode failed on topic " << topic_
                << ": " << s.ToString();
      return;
    }
    if (tagging_) ++seq_;
    // Produce-hop span for sampled tuples; while live it also sets the
    // thread's trace slot, so a remote producer tags the wire frame with the
    // same trace. Parent under the enclosing sink span when there is one.
    obs::SpanScope span;
    if (tuple.trace.sampled() && obs::TracingEnabled()) {
      TraceContext parent = tuple.trace;
      if (const TraceContext& current = ThreadTraceSlot();
          current.trace_id == parent.trace_id) {
        parent.parent_span = current.parent_span;
      }
      span = obs::SpanScope(topic_.c_str(), "pubsub.produce", parent, 1);
    }
    auto result = producer_->Send(topic_, key_fn_ ? key_fn_(tuple) : "",
                                  std::move(encoded), tuple.event_time);
    if (!result.ok() && !result.status().IsClosed()) {
      LOG_ERROR << "connector publish failed on topic " << topic_ << ": "
                << result.status().ToString();
    }
  };
}

std::function<void()> ConnectorPublisher::AsFinishHook() {
  return [this] {
    spe::Tuple eos;
    eos.payload.Set(kEosKey, true);
    std::string encoded;
    if (Status s = EncodeTuple(eos, &encoded); !s.ok()) return;
    (void)producer_->Send(topic_, "", std::move(encoded), 0);
  };
}

spe::SnapshotFn ConnectorPublisher::AsSnapshotFn() {
  return [this](std::uint64_t epoch, std::string* out) {
    epoch_ = epoch;  // records published after this barrier carry `epoch`
    codec::PutVarint64(out, epoch_);
    codec::PutVarint64(out, seq_);
    return Status::Ok();
  };
}

spe::RestoreFn ConnectorPublisher::AsRestoreFn() {
  return [this](std::string_view blob) {
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
    if (!codec::GetVarint64(&blob, &epoch) ||
        !codec::GetVarint64(&blob, &seq) || !blob.empty()) {
      return Status::Corruption("publisher snapshot unparsable for topic " +
                                topic_);
    }
    // Replayed tuples are re-tagged with the sequence numbers they carried
    // before the crash, which is what lets subscribers drop them.
    epoch_ = epoch;
    seq_ = seq;
    return Status::Ok();
  };
}

Result<std::shared_ptr<ConnectorSubscriber>> ConnectorSubscriber::Create(
    ps::BrokerClient* client, const std::string& topic,
    const std::string& group) {
  ps::ConsumerOptions options;
  options.group = group;
  options.reset = ps::ConsumerOptions::AutoOffsetReset::kEarliest;
  auto consumer = client->NewConsumer(topic, std::move(options));
  if (!consumer.ok()) return consumer.status();
  return std::shared_ptr<ConnectorSubscriber>(
      new ConnectorSubscriber(std::move(consumer).value(), topic));
}

Result<std::shared_ptr<ConnectorSubscriber>> ConnectorSubscriber::Create(
    ps::Broker* broker, const std::string& topic, const std::string& group) {
  ps::EmbeddedBrokerClient client(broker);
  return Create(&client, topic, group);
}

spe::SourceFn ConnectorSubscriber::AsSourceFn() {
  // The returned SourceFn shares `this` via the shared_ptr the caller holds;
  // Strata keeps subscribers alive for the query's lifetime.
  return [this]() { return Next(); };
}

spe::BatchSourceFn ConnectorSubscriber::AsBatchSourceFn() {
  return [this]() { return NextBatch(); };
}

bool ConnectorSubscriber::FillBuffer() {
  while (buffered_.empty()) {
    if (stopped_.load(std::memory_order_acquire)) return false;

    const std::int64_t poll_t0 =
        obs::TracingEnabled() ? obs::TraceNowUs() : 0;
    auto batch = consumer_->Poll(kPollTimeout);
    if (!batch.ok()) {
      if (batch.status().IsTimeout()) {
        // Nothing arrived inside the poll window. If EOS was seen, an empty
        // window means all partitions are drained (the EOS record is
        // globally last): end of stream.
        if (eos_seen_) return false;
        continue;
      }
      if (!batch.status().IsClosed()) {
        LOG_ERROR << "connector poll failed: " << batch.status().ToString();
      }
      return false;
    }
    if (batch->empty()) {
      if (eos_seen_) return false;
      continue;
    }
    TraceContext sampled;  // first sampled tuple this poll delivered
    for (const ps::ConsumedRecord& record : *batch) {
      TransportTag tag;
      auto tuple = DecodeMaybeTagged(record.value, &tag);
      if (!tuple.ok()) {
        LOG_ERROR << "connector decode failed: " << tuple.status().ToString();
        continue;
      }
      poll_next_[record.partition] = record.offset + 1;
      if (tuple->payload.Has(kEosKey)) {
        eos_seen_ = true;
        continue;  // sentinel is not delivered downstream
      }
      if (tag.seq != 0) {
        // Tagged record: sequence numbers are monotonic within a partition
        // (per-key ordering), so anything at or below the floor is a replay
        // of a record already seen before the publisher recovered.
        std::uint64_t& floor = seen_floor_[record.partition];
        if (tag.seq <= floor) {
          duplicates_dropped_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        floor = tag.seq;
      }
      if (!sampled.sampled() && tuple->trace.sampled()) {
        sampled = tuple->trace;
      }
      Buffered entry;
      entry.tuple = std::move(tuple).value();
      entry.partition = record.partition;
      entry.offset = record.offset;
      entry.seq = tag.seq;
      buffered_.push_back(std::move(entry));
    }
    if (poll_t0 != 0 && sampled.sampled()) {
      // Fetch-hop span: dur covers the poll. Broker + wire transit time is
      // derived at collection from the gap to the producer-side parent span
      // (zero when the producer ran in another process).
      obs::Tracer& tracer = obs::Tracer::Instance();
      obs::Span span;
      span.trace_id = sampled.trace_id;
      span.span_id = tracer.NewSpanId();
      span.parent_span = sampled.parent_span;
      span.start_us = poll_t0;
      span.dur_us = obs::TraceNowUs() - poll_t0;
      span.batch = batch->size();
      span.SetName(topic_.c_str());
      span.SetCategory("pubsub.fetch");
      tracer.Record(span);
    }
  }
  return true;
}

void ConnectorSubscriber::NoteDelivered(const Buffered& entry) {
  if (entry.seq == 0) return;
  std::uint64_t& floor = deliv_floor_[entry.partition];
  floor = std::max(floor, entry.seq);
}

std::optional<spe::Tuple> ConnectorSubscriber::Next() {
  if (!FillBuffer()) return std::nullopt;
  Buffered entry = std::move(buffered_.front());
  buffered_.pop_front();
  NoteDelivered(entry);
  return std::move(entry.tuple);
}

std::optional<spe::TupleBatch> ConnectorSubscriber::NextBatch() {
  if (!FillBuffer()) return std::nullopt;
  spe::TupleBatch out;
  out.reserve(buffered_.size());
  for (Buffered& entry : buffered_) {
    NoteDelivered(entry);
    out.push_back(std::move(entry.tuple));
  }
  buffered_.clear();
  return out;
}

spe::SnapshotFn ConnectorSubscriber::AsSnapshotFn() {
  return [this](std::uint64_t, std::string* out) {
    // Replay cursor per partition: the first buffered-but-undelivered
    // offset, else the next un-polled one. Tuples already delivered into the
    // SPE are covered by downstream snapshots of the same epoch; everything
    // at or after the cursor is re-polled on recovery.
    std::map<int, std::int64_t> resume = poll_next_;
    for (const Buffered& entry : buffered_) {
      std::int64_t& offset = resume[entry.partition];
      offset = std::min(offset, entry.offset);
    }
    codec::PutVarint64(out, resume.size());
    for (const auto& [partition, offset] : resume) {
      codec::PutVarint64(out, static_cast<std::uint64_t>(partition));
      codec::PutVarint64Signed(out, offset);
      const auto floor = deliv_floor_.find(partition);
      codec::PutVarint64(out,
                         floor == deliv_floor_.end() ? 0 : floor->second);
    }
    return Status::Ok();
  };
}

spe::RestoreFn ConnectorSubscriber::AsRestoreFn() {
  return [this](std::string_view blob) {
    std::uint64_t count = 0;
    if (!codec::GetVarint64(&blob, &count)) {
      return Status::Corruption("subscriber snapshot unparsable for topic " +
                                topic_);
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t partition = 0;
      std::int64_t offset = 0;
      std::uint64_t floor = 0;
      if (!codec::GetVarint64(&blob, &partition) ||
          !codec::GetVarint64Signed(&blob, &offset) ||
          !codec::GetVarint64(&blob, &floor)) {
        return Status::Corruption(
            "subscriber snapshot truncated for topic " + topic_);
      }
      // Strict seek: a cursor that fell below the retention horizon (or past
      // the end after a broker tail loss) is surfaced, never healed —
      // silently skipping data would break the recovery guarantee.
      STRATA_RETURN_IF_ERROR(
          consumer_->Seek(topic_, static_cast<int>(partition), offset));
      poll_next_[static_cast<int>(partition)] = offset;
      seen_floor_[static_cast<int>(partition)] = floor;
      deliv_floor_[static_cast<int>(partition)] = floor;
    }
    if (!blob.empty()) {
      return Status::Corruption("subscriber snapshot trailing bytes for " +
                                topic_);
    }
    buffered_.clear();
    eos_seen_ = false;
    return Status::Ok();
  };
}

}  // namespace strata::core
