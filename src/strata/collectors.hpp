// Raw Data Collectors (paper §4/§5): data-specific sources gathering the OT
// sensor frames and the printing parameters of jobs submitted to a PBF-LB
// machine. Backed by the machine simulator; pacing selects between live
// operation (one layer per melt+recoat period, optionally time-compressed)
// and replay (a fixed offered rate of images/s, or as fast as possible) for
// the throughput experiments.
#pragma once

#include <memory>

#include "am/machine.hpp"
#include "spe/functions.hpp"

namespace strata::core {

struct CollectorPacing {
  enum class Mode {
    kLive,    ///< follow the machine's layer period (scaled).
    kReplay,  ///< fixed offered rate, or unlimited when rate <= 0.
  };
  Mode mode = Mode::kLive;
  /// Live: wall seconds per simulated layer period (1.0 = real time;
  /// 0.01 = 100x compression).
  double time_scale = 1.0;
  /// Replay: offered load in layers (images) per second; <= 0 = unthrottled.
  double replay_rate = 0.0;
  const Clock* clock = &Clock::System();
};

/// Payload key under which the OT frame travels.
inline constexpr const char* kOtImageKey = "ot_image";

/// Emits one tuple per completed layer carrying the OT image:
///   <τ, job, layer, [ot_image: GrayImage]>
[[nodiscard]] spe::SourceFn OtImageCollector(
    std::shared_ptr<am::MachineSimulator> machine, CollectorPacing pacing);

/// Emits one tuple per layer carrying the printing parameters (including
/// the specimen layout that isolateSpecimen consumes):
///   <τ, job, layer, [scan_angle_deg: .., specimen_count: .., ...]>
/// Does not render images, so it can share the job spec with the OT
/// collector without duplicating generation cost.
[[nodiscard]] spe::SourceFn PrintingParameterCollector(
    std::shared_ptr<am::MachineSimulator> machine, CollectorPacing pacing);

}  // namespace strata::core
