// Feedback-loop controller (paper §1/§3, Figure 1B): the automated "expert
// script" deciding, from live ClusterReports, whether to continue, adjust,
// or terminate the printing process. Wire it as (or inside) the deliver
// callback of a thermal pipeline; it actuates through the machine's
// ControlState.
//
// Policy (conservative defaults):
//  - A specimen whose reported defect clusters reach `adjust_cluster_points`
//    accumulated points gets its laser re-parameterized (AdjustSpecimen).
//  - If `terminate_specimen_fraction` of the job's specimens needed
//    adjustment and defects keep appearing, the job is terminated: the build
//    is systematically bad (wrong powder batch / machine fault), continuing
//    wastes material and energy.
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "strata/usecase.hpp"

namespace strata::core {

struct ControllerPolicy {
  /// Accumulated cluster points within a specimen that trigger adjustment.
  std::size_t adjust_cluster_points = 20;
  /// Fraction of specimens adjusted (and still defective) that triggers
  /// termination. > 1.0 disables termination.
  double terminate_specimen_fraction = 0.5;
  /// Points reported for an already-adjusted specimen (i.e. mitigation did
  /// not help) that mark it "still defective".
  std::size_t post_adjust_points = 10;
  /// Hard ceiling: a single specimen accumulating this many defect points
  /// terminates the job immediately (unrecoverable build — e.g. a bad
  /// powder batch). 0 = disabled.
  std::size_t hard_terminate_points = 0;
};

struct ControllerStats {
  std::size_t reports_seen = 0;
  std::size_t adjustments_issued = 0;
  bool terminated = false;
  std::int64_t terminate_layer = -1;
};

class FeedbackController {
 public:
  FeedbackController(std::shared_ptr<am::MachineSimulator> machine,
                     ControllerPolicy policy = {})
      : machine_(std::move(machine)), policy_(policy) {}

  /// The deliver callback to hand to BuildThermalPipeline.
  [[nodiscard]] std::function<void(const ClusterReport&)> AsDeliverFn();

  /// Process one report (also callable directly from tests).
  void OnReport(const ClusterReport& report);

  [[nodiscard]] ControllerStats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

 private:
  struct SpecimenState {
    std::size_t lifetime_points = 0;
    std::size_t accumulated_points = 0;
    bool adjusted = false;
    std::size_t points_after_adjust = 0;
    bool still_defective = false;
  };

  std::shared_ptr<am::MachineSimulator> machine_;
  ControllerPolicy policy_;
  mutable std::mutex mu_;
  std::map<std::int64_t, SpecimenState> specimens_;
  ControllerStats stats_;
};

}  // namespace strata::core
