#include "strata/strata.hpp"

#include <map>
#include <mutex>

#include "common/fs.hpp"
#include "common/logging.hpp"
#include "fault/failpoint.hpp"

namespace strata::core {

Strata::Strata(StrataOptions options) : options_(std::move(options)) {
  if (options_.data_dir.empty()) {
    temp_dir_ = std::make_unique<strata::fs::ScopedTempDir>("strata");
    options_.data_dir = temp_dir_->path();
  }
  auto db = kv::DB::Open(options_.data_dir / "kv", options_.kv);
  db.status().OrDie();
  kv_ = std::move(db).value();

  ps::BrokerOptions broker_options;
  if (options_.persistent_connectors) {
    broker_options.data_dir = options_.data_dir / "broker";
  }
  broker_ = std::make_unique<ps::Broker>(broker_options);
  if (options_.remote_broker.has_value()) {
    net::RemoteOptions remote = *options_.remote_broker;
    if (remote.metrics == nullptr) remote.metrics = &registry_;
    client_ = std::make_unique<net::RemoteBroker>(std::move(remote));
  } else {
    client_ = std::make_unique<ps::EmbeddedBrokerClient>(broker_.get());
  }
  query_ = std::make_unique<spe::Query>(options_.query);

  kv_->BindMetrics(&registry_);
  broker_->BindMetrics(&registry_);
  query_->BindMetrics(&registry_);
  fault::BindMetrics(&registry_);
}

Strata::~Strata() {
  Shutdown();
  // The fault registry is process-global; detach it before registry_ dies.
  fault::BindMetrics(nullptr);
}

Strata::HealthReport Strata::Health() const {
  HealthReport report;
  if (Status kv_error = kv_->BackgroundError(); !kv_error.ok()) {
    report.kv_ok = false;
    report.detail += "kv: " + kv_error.ToString();
  }
  const ps::Broker::BrokerStats broker_stats = broker_->Stats();
  if (broker_stats.fail_stopped || broker_stats.storage_degraded) {
    report.broker_storage_ok = false;
    if (!report.detail.empty()) report.detail += "; ";
    report.detail += broker_stats.fail_stopped
                         ? "broker: partition log fail-stopped"
                         : "broker: storage degraded to memory-only";
    report.detail += " (" + std::to_string(broker_stats.disk_append_errors) +
                     " disk errors)";
  }
  return report;
}

void Strata::StartSampler(std::chrono::milliseconds period,
                          obs::PeriodicSampler::Consumer consumer) {
  sampler_.reset();  // stop (and final-flush) any previous sampler first
  sampler_ = std::make_unique<obs::PeriodicSampler>(&registry_, period,
                                                    std::move(consumer));
}

void Strata::StopSampler() { sampler_.reset(); }

Status Strata::Store(std::string_view key, std::string_view value) {
  return kv_->Put(key, value);
}

Result<std::string> Strata::Get(std::string_view key) { return kv_->Get(key); }

Result<std::vector<std::pair<std::string, std::string>>> Strata::GetByPrefix(
    std::string_view prefix) {
  std::vector<std::pair<std::string, std::string>> entries;
  auto it = kv_->NewIterator();
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    const std::string_view key = it->key();
    if (key.substr(0, prefix.size()) != prefix) break;
    entries.emplace_back(std::string(key), std::string(it->value()));
  }
  STRATA_RETURN_IF_ERROR(it->status());
  return entries;
}

spe::SinkOperator* Strata::PublishTo(const std::string& topic,
                                     spe::StreamPtr in, PartitionKeyFn key_fn) {
  ps::TopicConfig config;
  config.partitions = options_.connector_partitions;
  client_->CreateTopic(topic, config).OrDie();

  auto producer = client_->NewProducer();
  producer.status().OrDie();
  auto publisher = std::make_unique<ConnectorPublisher>(
      std::move(*producer), topic, std::move(key_fn));
  spe::SinkOperator* sink =
      query_->AddSink(topic + ".pub", std::move(in), publisher->AsSinkFn());
  sink->SetFinishHook(publisher->AsFinishHook());
  publishers_.push_back(std::move(publisher));
  return sink;
}

spe::StreamPtr Strata::SubscribeTo(const std::string& topic) {
  ps::TopicConfig config;
  config.partitions = options_.connector_partitions;
  client_->CreateTopic(topic, config).OrDie();  // idempotent

  auto subscriber =
      ConnectorSubscriber::Create(client_.get(), topic, topic + ".monitor");
  subscriber.status().OrDie();
  subscribers_.push_back(*subscriber);
  // Batch source: each broker poll enters the SPE as one data-plane batch.
  return query_->AddBatchSource(topic + ".sub",
                                (*subscriber)->AsBatchSourceFn());
}

spe::StreamPtr Strata::ThroughConnector(const std::string& topic,
                                        spe::StreamPtr in,
                                        PartitionKeyFn key_fn) {
  PublishTo(topic, std::move(in), std::move(key_fn));
  return SubscribeTo(topic);
}

spe::StreamPtr Strata::AddSource(const std::string& name,
                                 spe::SourceFn collector) {
  // Raw Data Collector: the source itself...
  spe::StreamPtr collected = query_->AddSource(name, std::move(collector));
  // ...then through the Raw Data Connector (keyed by job so each job's data
  // stays ordered; distinct jobs/machines ride separate partitions).
  return ThroughConnector("raw." + name, std::move(collected),
                          [](const spe::Tuple& t) {
                            return std::to_string(t.job);
                          });
}

spe::SinkOperator* Strata::ExportSource(const std::string& name,
                                        spe::SourceFn collector) {
  spe::StreamPtr collected = query_->AddSource(name, std::move(collector));
  return PublishTo("raw." + name, std::move(collected),
                   [](const spe::Tuple& t) { return std::to_string(t.job); });
}

spe::StreamPtr Strata::ImportSource(const std::string& name) {
  return SubscribeTo("raw." + name);
}

spe::StreamPtr Strata::Fuse(const std::string& name, spe::StreamPtr s1,
                            spe::StreamPtr s2,
                            std::optional<spe::WindowSpec> window,
                            std::vector<std::string> group_by) {
  spe::JoinSpec spec;
  spec.window = window.has_value() ? window->size : 0;
  auto key_fn = [group_by](const spe::Tuple& t) {
    std::string key = std::to_string(t.job) + "|" + std::to_string(t.layer);
    for (const std::string& attr : group_by) {
      const Value* v = t.payload.Find(attr);
      key += "|" + (v ? v->ToString() : std::string("<none>"));
    }
    return key;
  };
  spec.key_left = key_fn;
  spec.key_right = key_fn;
  return query_->AddJoin(name, std::move(s1), std::move(s2), std::move(spec));
}

namespace {

/// Shard key keeping all data of one specimen (and its markers) on the same
/// parallel instance: job|specimen, falling back to job|layer before
/// partition() has assigned specimens.
std::string SpecimenShardKey(const spe::Tuple& t) {
  if (t.specimen != spe::kUnsetId) {
    return std::to_string(t.job) + "|" + std::to_string(t.specimen);
  }
  return std::to_string(t.job) + "|" + std::to_string(t.layer);
}

}  // namespace

spe::StreamPtr Strata::Partition(const std::string& name, spe::StreamPtr in,
                                 PartitionFn fn, int parallelism) {
  spe::FlatMapFn map_fn;
  if (fn) {
    map_fn = [fn](const spe::Tuple& t) {
      std::vector<spe::Tuple> out = fn(t);
      for (spe::Tuple& o : out) {
        // Metadata is copied from the input; F provides specimen/portion.
        o.event_time = t.event_time;
        o.job = t.job;
        o.layer = t.layer;
        o.stimulus = t.stimulus;
      }
      return out;
    };
  } else {
    // Table 1: with no partition function the tuple is processed as a whole
    // under default specimen/portion values.
    map_fn = [](const spe::Tuple& t) {
      spe::Tuple out = t;
      if (out.specimen == spe::kUnsetId) out.specimen = 0;
      if (out.portion == spe::kUnsetId) out.portion = 0;
      return std::vector<spe::Tuple>{out};
    };
  }
  return query_->AddFlatMap(name, std::move(in), std::move(map_fn),
                            parallelism, SpecimenShardKey);
}

spe::StreamPtr Strata::DetectEvent(const std::string& name, spe::StreamPtr in,
                                   DetectFn fn, int parallelism) {
  if (!fn) throw std::invalid_argument("DetectEvent: null function");
  spe::FlatMapFn map_fn = [fn](const spe::Tuple& t) {
    std::vector<spe::Tuple> out = fn(t);
    for (spe::Tuple& o : out) {
      // Table 1: event tuples carry the input's τ/job/layer metadata;
      // specimen/portion default to the input's when F leaves them unset.
      o.event_time = t.event_time;
      o.job = t.job;
      o.layer = t.layer;
      o.stimulus = t.stimulus;
      if (o.specimen == spe::kUnsetId) o.specimen = t.specimen;
      if (o.portion == spe::kUnsetId) o.portion = t.portion;
    }
    return out;
  };
  return query_->AddFlatMap(name, std::move(in), std::move(map_fn),
                            parallelism, SpecimenShardKey);
}

spe::StreamPtr Strata::CorrelateEvents(const std::string& name,
                                       spe::StreamPtr in,
                                       std::int64_t history_layers,
                                       CorrelateFn fn) {
  if (!fn) throw std::invalid_argument("CorrelateEvents: null function");
  if (history_layers < 0) {
    throw std::invalid_argument("CorrelateEvents: negative layer history");
  }

  // Event Connector: events cross the broker keyed by job|specimen.
  spe::StreamPtr connected =
      ThroughConnector("events." + name, std::move(in), EventKey);

  // Event Aggregator: per (job, specimen) state holding the last
  // `history_layers` + 1 layers of events; a layer marker triggers F.
  struct State {
    std::mutex mu;
    // (job, specimen) -> ordered (layer -> events).
    std::map<std::pair<std::int64_t, std::int64_t>,
             std::map<std::int64_t, std::vector<spe::Tuple>>>
        groups;
  };
  auto state = std::make_shared<State>();
  const std::int64_t window = history_layers;

  spe::FlatMapFn aggregate_fn = [state, window,
                                 fn](const spe::Tuple& t) -> std::vector<spe::Tuple> {
    std::lock_guard lock(state->mu);
    auto& layers = state->groups[{t.job, t.specimen}];

    if (!IsLayerMarker(t)) {
      layers[t.layer].push_back(t);
      return {};
    }

    // Layer complete: build the window [layer - L, layer].
    EventWindow event_window;
    event_window.job = t.job;
    event_window.specimen = t.specimen;
    event_window.layer = t.layer;
    Timestamp stimulus = t.stimulus;
    for (const auto& [layer, events] : layers) {
      if (layer < t.layer - window || layer > t.layer) continue;
      for (const spe::Tuple& event : events) {
        stimulus = spe::CombineStimulus(stimulus, event.stimulus);
        event_window.events.push_back(event);
      }
    }

    std::vector<spe::Tuple> out = fn(event_window);
    for (spe::Tuple& o : out) {
      o.event_time = t.event_time;
      o.job = t.job;
      o.layer = t.layer;
      o.specimen = t.specimen;
      o.stimulus = spe::CombineStimulus(o.stimulus, stimulus);
    }

    // Evict layers that can no longer appear in a future window.
    std::erase_if(layers, [&](const auto& entry) {
      return entry.first < t.layer + 1 - window;
    });
    return out;
  };

  return query_->AddFlatMap(name, std::move(connected),
                            std::move(aggregate_fn));
}

spe::SinkOperator* Strata::Deliver(const std::string& name, spe::StreamPtr in,
                                   spe::SinkFn fn) {
  return query_->AddSink(name, std::move(in), std::move(fn));
}

std::vector<spe::StreamPtr> Strata::Split(const std::string& name,
                                          spe::StreamPtr in, int n) {
  return query_->AddSplit(name, std::move(in), n);
}

void Strata::Deploy() {
  if (deployed_) throw std::logic_error("Strata: already deployed");
  deployed_ = true;
  query_->Start();
}

void Strata::WaitForCompletion() {
  if (deployed_) query_->Join();
}

void Strata::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // The sampler snapshots through component callbacks; stop it before the
  // components it observes start tearing down.
  StopSampler();
  if (deployed_) {
    query_->Stop();
    // Collectors end -> publishers send EOS -> subscribers drain -> the
    // whole DAG cascades to completion.
    query_->Join();
  }
  for (auto& subscriber : subscribers_) subscriber->Stop();
  broker_->Close();
}

}  // namespace strata::core
