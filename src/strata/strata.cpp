#include "strata/strata.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/fs.hpp"
#include "common/logging.hpp"
#include "common/trace_context.hpp"
#include "fault/failpoint.hpp"
#include "obs/trace.hpp"

namespace strata::core {

Strata::Strata(StrataOptions options) : options_(std::move(options)) {
  if (options_.data_dir.empty()) {
    temp_dir_ = std::make_unique<strata::fs::ScopedTempDir>("strata");
    options_.data_dir = temp_dir_->path();
  }
  auto db = kv::DB::Open(options_.data_dir / "kv", options_.kv);
  db.status().OrDie();
  kv_ = std::move(db).value();

  ps::BrokerOptions broker_options;
  if (options_.persistent_connectors) {
    broker_options.data_dir = options_.data_dir / "broker";
  }
  if (options_.broker_shards > 0) {
    broker_options.shards = options_.broker_shards;
  }
  broker_ = std::make_unique<ps::Broker>(broker_options);
  if (!options_.remote_bootstrap.empty() && !options_.remote_broker) {
    options_.remote_broker.emplace();
  }
  if (options_.remote_broker.has_value()) {
    net::RemoteOptions remote = *options_.remote_broker;
    if (remote.metrics == nullptr) remote.metrics = &registry_;
    for (const std::string& seed : options_.remote_bootstrap) {
      const std::size_t colon = seed.rfind(':');
      if (colon == std::string::npos) {
        LOG_ERROR << "strata: remote_bootstrap seed '" << seed
                  << "' is not host:port; skipped";
        continue;
      }
      remote.bootstrap.emplace_back(
          seed.substr(0, colon),
          static_cast<std::uint16_t>(
              std::strtol(seed.c_str() + colon + 1, nullptr, 10)));
    }
    if (remote.port == 0 && !remote.bootstrap.empty()) {
      remote.host = remote.bootstrap.front().first;
      remote.port = remote.bootstrap.front().second;
    }
    client_ = std::make_unique<net::RemoteBroker>(std::move(remote));
  } else {
    client_ = std::make_unique<ps::EmbeddedBrokerClient>(broker_.get());
  }
  query_ = std::make_unique<spe::Query>(options_.query);

  if (options_.checkpoint_interval_ms > 0) {
    kv::DB* checkpoint_db = kv_.get();
    if (!options_.checkpoint_path.empty()) {
      auto ckpt = kv::DB::Open(options_.checkpoint_path, {});
      ckpt.status().OrDie();
      checkpoint_db_ = std::move(ckpt).value();
      checkpoint_db = checkpoint_db_.get();
    }
    checkpoint_store_ = std::make_unique<KvCheckpointStore>(checkpoint_db);
    spe::CheckpointerOptions checkpoint_options;
    checkpoint_options.interval_ms = options_.checkpoint_interval_ms;
    query_->EnableCheckpointing(checkpoint_store_.get(), checkpoint_options);
  }

  kv_->BindMetrics(&registry_);
  broker_->BindMetrics(&registry_);
  query_->BindMetrics(&registry_);
  fault::BindMetrics(&registry_);
  obs::Tracer::Instance().BindMetrics(&registry_);
  registry_.RegisterCallback([](obs::MetricsSnapshot* snapshot) {
    snapshot->AddCounter("obs.log.warnings", {}, LogWarningCount());
    snapshot->AddCounter("obs.log.errors", {}, LogErrorCount());
  });

  if (options_.trace_sample_every != 0) {
    obs::Tracer::Instance().Configure(options_.trace_sample_every);
  }
  obs::Tracer::Instance().ConfigureFromEnv();  // the env knob wins

  std::string admin_addr = options_.admin_addr;
  if (const char* env = std::getenv("STRATA_ADMIN_ADDR");
      env != nullptr && *env != '\0') {
    admin_addr = env;
  }
  if (!admin_addr.empty()) StartAdminServer(admin_addr);
}

Strata::~Strata() {
  Shutdown();
  // The fault registry and the tracer are process-global; detach them before
  // registry_ dies.
  fault::BindMetrics(nullptr);
  obs::Tracer::Instance().BindMetrics(nullptr);
}

Strata::HealthReport Strata::Health() const {
  HealthReport report;
  if (Status kv_error = kv_->BackgroundError(); !kv_error.ok()) {
    report.kv_ok = false;
    report.detail += "kv: " + kv_error.ToString();
  }
  const ps::Broker::BrokerStats broker_stats = broker_->Stats();
  if (broker_stats.fail_stopped || broker_stats.storage_degraded) {
    report.broker_storage_ok = false;
    if (!report.detail.empty()) report.detail += "; ";
    report.detail += broker_stats.fail_stopped
                         ? "broker: partition log fail-stopped"
                         : "broker: storage degraded to memory-only";
    report.detail += " (" + std::to_string(broker_stats.disk_append_errors) +
                     " disk errors)";
  }
  return report;
}

void Strata::SetHealthzAugmenter(std::function<std::string()> augmenter) {
  std::lock_guard lock(augmenter_mu_);
  healthz_augmenter_ = std::move(augmenter);
}

void Strata::StartSampler(std::chrono::milliseconds period,
                          obs::PeriodicSampler::Consumer consumer) {
  sampler_.reset();  // stop (and final-flush) any previous sampler first
  sampler_ = std::make_unique<obs::PeriodicSampler>(&registry_, period,
                                                    std::move(consumer));
}

void Strata::StopSampler() { sampler_.reset(); }

namespace {

void JsonEscapeTo(std::string_view in, std::string* out) {
  for (const char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void Strata::StartAdminServer(const std::string& addr) {
  net::AdminOptions options;
  options.metrics = &registry_;
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    LOG_ERROR << "strata: admin_addr '" << addr
              << "' is not host:port; admin endpoint disabled";
    return;
  }
  options.host = addr.substr(0, colon);
  const long port = std::strtol(addr.c_str() + colon + 1, nullptr, 10);
  options.port = static_cast<std::uint16_t>(port);

  admin_ = std::make_unique<net::AdminServer>(options);
  admin_->Route("/metrics", [this](std::string_view) {
    net::AdminServer::Response response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = registry_.Snapshot().ToPrometheus();
    return response;
  });
  admin_->Route("/healthz", [this](std::string_view) {
    const HealthReport health = Health();
    net::AdminServer::Response response;
    response.status = health.ok() ? 200 : 503;
    response.content_type = "application/json";
    response.body = std::string("{\"status\":\"") +
                    (health.ok() ? "ok" : "degraded") + "\",\"kv_ok\":" +
                    (health.kv_ok ? "true" : "false") +
                    ",\"broker_storage_ok\":" +
                    (health.broker_storage_ok ? "true" : "false") +
                    ",\"detail\":\"";
    JsonEscapeTo(health.detail, &response.body);
    response.body += "\",\"shards\":[";
    const ps::Broker::BrokerStats stats = broker_->Stats();
    for (std::size_t i = 0; i < stats.shards.size(); ++i) {
      const auto& shard = stats.shards[i];
      if (i != 0) response.body += ',';
      response.body += "{\"shard\":" + std::to_string(i) +
                       ",\"partitions\":" + std::to_string(shard.partitions) +
                       ",\"degraded\":" + (shard.degraded ? "true" : "false") +
                       ",\"fail_stopped\":" +
                       (shard.fail_stopped ? "true" : "false") +
                       ",\"disk_errors\":" + std::to_string(shard.disk_errors) +
                       "}";
    }
    response.body += ']';
    {
      std::lock_guard lock(augmenter_mu_);
      if (healthz_augmenter_) {
        response.body += ",\"replication\":" + healthz_augmenter_();
      }
    }
    response.body += "}\n";
    return response;
  });
  admin_->Route("/varz", [this](std::string_view) {
    net::AdminServer::Response response;
    response.content_type = "application/json";
    response.body = registry_.Snapshot().ToJsonLines();
    return response;
  });
  admin_->Route("/tracez", [](std::string_view query) {
    const std::vector<obs::Span> spans = obs::Tracer::Instance().CollectSpans();
    net::AdminServer::Response response;
    if (query.find("chrome=1") != std::string_view::npos) {
      // Save-as trace.json, load in Perfetto / chrome://tracing.
      response.content_type = "application/json";
      response.body = obs::Tracer::ToChromeTrace(spans);
    } else {
      response.body = obs::Tracer::ToTracezText(spans);
    }
    return response;
  });

  if (Status started = admin_->Start(); !started.ok()) {
    // The admin plane is an observer: failing to bind it must never take
    // the pipeline down.
    LOG_ERROR << "strata: admin endpoint failed to start on " << addr << ": "
              << started.ToString();
    admin_.reset();
  }
}

std::string Strata::admin_addr() const {
  if (admin_ == nullptr) return {};
  return admin_->host() + ":" + std::to_string(admin_->port());
}

Status Strata::Store(std::string_view key, std::string_view value) {
  // Attach the write to the caller's active span (a sink storing detection
  // results, a correlation callback persisting reports, ...) so traces show
  // where pipeline time goes once tuples leave the SPE.
  obs::SpanScope span;
  if (obs::TracingEnabled()) {
    if (const TraceContext& slot = ThreadTraceSlot(); slot.sampled()) {
      span = obs::SpanScope("kv.store", "kv", slot);
    }
  }
  return kv_->Put(key, value);
}

Result<std::string> Strata::Get(std::string_view key) { return kv_->Get(key); }

Result<std::vector<std::pair<std::string, std::string>>> Strata::GetByPrefix(
    std::string_view prefix) {
  std::vector<std::pair<std::string, std::string>> entries;
  auto it = kv_->NewIterator();
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    const std::string_view key = it->key();
    if (key.substr(0, prefix.size()) != prefix) break;
    entries.emplace_back(std::string(key), std::string(it->value()));
  }
  STRATA_RETURN_IF_ERROR(it->status());
  return entries;
}

spe::SinkOperator* Strata::PublishTo(const std::string& topic,
                                     spe::StreamPtr in, PartitionKeyFn key_fn) {
  ps::TopicConfig config;
  config.partitions = options_.connector_partitions;
  client_->CreateTopic(topic, config).OrDie();

  auto producer = client_->NewProducer();
  producer.status().OrDie();
  auto publisher = std::make_unique<ConnectorPublisher>(
      std::move(*producer), topic, std::move(key_fn));
  spe::SinkOperator* sink =
      query_->AddSink(topic + ".pub", std::move(in), publisher->AsSinkFn());
  sink->SetFinishHook(publisher->AsFinishHook());
  if (options_.checkpoint_interval_ms > 0) {
    publisher->EnableTagging();
    sink->SetStateHooks(publisher->AsSnapshotFn(), publisher->AsRestoreFn());
  }
  publishers_.push_back(std::move(publisher));
  return sink;
}

spe::StreamPtr Strata::SubscribeTo(const std::string& topic) {
  ps::TopicConfig config;
  config.partitions = options_.connector_partitions;
  client_->CreateTopic(topic, config).OrDie();  // idempotent

  auto subscriber =
      ConnectorSubscriber::Create(client_.get(), topic, topic + ".monitor");
  subscriber.status().OrDie();
  subscribers_.push_back(*subscriber);
  // Batch source: each broker poll enters the SPE as one data-plane batch.
  spe::StreamPtr out = query_->AddBatchSource(topic + ".sub",
                                              (*subscriber)->AsBatchSourceFn());
  if (options_.checkpoint_interval_ms > 0) {
    spe::Operator* source = query_->FindOperator(topic + ".sub");
    source->SetStateHooks((*subscriber)->AsSnapshotFn(),
                          (*subscriber)->AsRestoreFn());
  }
  return out;
}

spe::StreamPtr Strata::ThroughConnector(const std::string& topic,
                                        spe::StreamPtr in,
                                        PartitionKeyFn key_fn) {
  PublishTo(topic, std::move(in), std::move(key_fn));
  return SubscribeTo(topic);
}

spe::StreamPtr Strata::AddSource(const std::string& name,
                                 spe::SourceFn collector) {
  // Raw Data Collector: the source itself...
  spe::StreamPtr collected = query_->AddSource(name, std::move(collector));
  // ...then through the Raw Data Connector (keyed by job so each job's data
  // stays ordered; distinct jobs/machines ride separate partitions).
  return ThroughConnector("raw." + name, std::move(collected),
                          [](const spe::Tuple& t) {
                            return std::to_string(t.job);
                          });
}

spe::SinkOperator* Strata::ExportSource(const std::string& name,
                                        spe::SourceFn collector) {
  spe::StreamPtr collected = query_->AddSource(name, std::move(collector));
  return PublishTo("raw." + name, std::move(collected),
                   [](const spe::Tuple& t) { return std::to_string(t.job); });
}

spe::StreamPtr Strata::ImportSource(const std::string& name) {
  return SubscribeTo("raw." + name);
}

spe::StreamPtr Strata::Fuse(const std::string& name, spe::StreamPtr s1,
                            spe::StreamPtr s2,
                            std::optional<spe::WindowSpec> window,
                            std::vector<std::string> group_by, int shards) {
  spe::JoinSpec spec;
  spec.window = window.has_value() ? window->size : 0;
  auto key_fn = [group_by](const spe::Tuple& t) {
    std::string key = std::to_string(t.job) + "|" + std::to_string(t.layer);
    for (const std::string& attr : group_by) {
      const Value* v = t.payload.Find(attr);
      key += "|" + (v ? v->ToString() : std::string("<none>"));
    }
    return key;
  };
  spec.key_left = key_fn;
  spec.key_right = key_fn;
  return query_->AddJoin(name, std::move(s1), std::move(s2), std::move(spec),
                         shards);
}

namespace {

/// Shard key keeping all data of one specimen (and its markers) on the same
/// parallel instance: job|specimen, falling back to job|layer before
/// partition() has assigned specimens.
std::string SpecimenShardKey(const spe::Tuple& t) {
  if (t.specimen != spe::kUnsetId) {
    return std::to_string(t.job) + "|" + std::to_string(t.specimen);
  }
  return std::to_string(t.job) + "|" + std::to_string(t.layer);
}

}  // namespace

spe::StreamPtr Strata::Partition(const std::string& name, spe::StreamPtr in,
                                 PartitionFn fn, int parallelism) {
  spe::FlatMapFn map_fn;
  if (fn) {
    map_fn = [fn](const spe::Tuple& t) {
      std::vector<spe::Tuple> out = fn(t);
      for (spe::Tuple& o : out) {
        // Metadata is copied from the input; F provides specimen/portion.
        o.event_time = t.event_time;
        o.job = t.job;
        o.layer = t.layer;
        o.stimulus = t.stimulus;
      }
      return out;
    };
  } else {
    // Table 1: with no partition function the tuple is processed as a whole
    // under default specimen/portion values.
    map_fn = [](const spe::Tuple& t) {
      spe::Tuple out = t;
      if (out.specimen == spe::kUnsetId) out.specimen = 0;
      if (out.portion == spe::kUnsetId) out.portion = 0;
      return std::vector<spe::Tuple>{out};
    };
  }
  return query_->AddFlatMap(name, std::move(in), std::move(map_fn),
                            parallelism, SpecimenShardKey);
}

spe::StreamPtr Strata::DetectEvent(const std::string& name, spe::StreamPtr in,
                                   DetectFn fn, int parallelism) {
  if (!fn) throw std::invalid_argument("DetectEvent: null function");
  spe::FlatMapFn map_fn = [fn](const spe::Tuple& t) {
    std::vector<spe::Tuple> out = fn(t);
    for (spe::Tuple& o : out) {
      // Table 1: event tuples carry the input's τ/job/layer metadata;
      // specimen/portion default to the input's when F leaves them unset.
      o.event_time = t.event_time;
      o.job = t.job;
      o.layer = t.layer;
      o.stimulus = t.stimulus;
      if (o.specimen == spe::kUnsetId) o.specimen = t.specimen;
      if (o.portion == spe::kUnsetId) o.portion = t.portion;
    }
    return out;
  };
  return query_->AddFlatMap(name, std::move(in), std::move(map_fn),
                            parallelism, SpecimenShardKey);
}

spe::StreamPtr Strata::CorrelateEvents(const std::string& name,
                                       spe::StreamPtr in,
                                       std::int64_t history_layers,
                                       CorrelateFn fn) {
  if (!fn) throw std::invalid_argument("CorrelateEvents: null function");
  if (history_layers < 0) {
    throw std::invalid_argument("CorrelateEvents: negative layer history");
  }

  // Event Connector: events cross the broker keyed by job|specimen.
  spe::StreamPtr connected =
      ThroughConnector("events." + name, std::move(in), EventKey);

  // Event Aggregator: per (job, specimen) state holding the last
  // `history_layers` + 1 layers of events; a layer marker triggers F.
  struct State {
    std::mutex mu;
    // (job, specimen) -> ordered (layer -> events).
    std::map<std::pair<std::int64_t, std::int64_t>,
             std::map<std::int64_t, std::vector<spe::Tuple>>>
        groups;
  };
  auto state = std::make_shared<State>();
  const std::int64_t window = history_layers;

  spe::FlatMapFn aggregate_fn = [state, window,
                                 fn](const spe::Tuple& t) -> std::vector<spe::Tuple> {
    std::lock_guard lock(state->mu);
    auto& layers = state->groups[{t.job, t.specimen}];

    if (!IsLayerMarker(t)) {
      layers[t.layer].push_back(t);
      return {};
    }

    // Layer complete: build the window [layer - L, layer].
    EventWindow event_window;
    event_window.job = t.job;
    event_window.specimen = t.specimen;
    event_window.layer = t.layer;
    Timestamp stimulus = t.stimulus;
    for (const auto& [layer, events] : layers) {
      if (layer < t.layer - window || layer > t.layer) continue;
      for (const spe::Tuple& event : events) {
        stimulus = spe::CombineStimulus(stimulus, event.stimulus);
        event_window.events.push_back(event);
      }
    }

    std::vector<spe::Tuple> out = fn(event_window);
    for (spe::Tuple& o : out) {
      o.event_time = t.event_time;
      o.job = t.job;
      o.layer = t.layer;
      o.specimen = t.specimen;
      o.stimulus = spe::CombineStimulus(o.stimulus, stimulus);
    }

    // Evict layers that can no longer appear in a future window.
    std::erase_if(layers, [&](const auto& entry) {
      return entry.first < t.layer + 1 - window;
    });
    return out;
  };

  return query_->AddFlatMap(name, std::move(connected),
                            std::move(aggregate_fn));
}

spe::SinkOperator* Strata::Deliver(const std::string& name, spe::StreamPtr in,
                                   spe::SinkFn fn) {
  return query_->AddSink(name, std::move(in), std::move(fn));
}

spe::SinkOperator* Strata::DeliverDurable(
    const std::string& name, spe::StreamPtr in, std::string key_prefix,
    std::function<std::string(const spe::Tuple&)> key_fn) {
  if (!key_fn) throw std::invalid_argument("DeliverDurable: null key_fn");
  auto duplicates = std::make_shared<std::atomic<std::uint64_t>>(0);
  registry_.RegisterCallback([name, duplicates](obs::MetricsSnapshot* s) {
    s->AddCounter("strata.deliver_durable.duplicates", {{"sink", name}},
                  duplicates->load(std::memory_order_relaxed));
  });
  kv::DB* db = kv_.get();
  spe::SinkFn fn = [db, prefix = std::move(key_prefix),
                    key_fn = std::move(key_fn),
                    duplicates](const spe::Tuple& tuple) {
    const std::string key = prefix + key_fn(tuple);
    // Existence check before write: a replayed tuple maps to the same key,
    // so the first delivery wins and the replay is a counted no-op.
    if (db->Get(key).ok()) {
      duplicates->fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::string encoded;
    if (Status s = EncodeTuple(tuple, &encoded); !s.ok()) {
      LOG_ERROR << "DeliverDurable encode failed for " << key << ": "
                << s.ToString();
      return;
    }
    if (Status s = db->Put(key, encoded); !s.ok()) {
      LOG_ERROR << "DeliverDurable write failed for " << key << ": "
                << s.ToString();
    }
  };
  return query_->AddSink(name, std::move(in), std::move(fn));
}

std::vector<spe::StreamPtr> Strata::Split(const std::string& name,
                                          spe::StreamPtr in, int n) {
  return query_->AddSplit(name, std::move(in), n);
}

void Strata::Deploy() {
  if (deployed_) throw std::logic_error("Strata: already deployed");
  deployed_ = true;
  // Recovery before start: restore operator state and seek the connector
  // subscribers back to their replay cursors while the DAG is still quiet.
  // A fresh store is a clean no-op; an unrecoverable checkpoint (manifest
  // corrupt, replay offsets truncated away) dies loudly rather than silently
  // dropping the build's history.
  if (options_.checkpoint_interval_ms > 0) query_->Recover().OrDie();
  query_->Start();
}

void Strata::WaitForCompletion() {
  if (deployed_) query_->Join();
}

void Strata::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // The admin endpoint and sampler observe the components through callbacks;
  // stop both before the components they observe start tearing down.
  if (admin_ != nullptr) admin_->Stop();
  StopSampler();
  if (deployed_) {
    query_->Stop();
    // Collectors end -> publishers send EOS -> subscribers drain -> the
    // whole DAG cascades to completion.
    query_->Join();
  }
  for (auto& subscriber : subscribers_) subscriber->Stop();
  broker_->Close();
}

}  // namespace strata::core
